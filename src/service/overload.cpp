#include "service/overload.hpp"

#include <algorithm>
#include <cstdint>

#include "util/error.hpp"

namespace fadesched::service {

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kNone:
      return "none";
    case ShedPolicy::kCold:
      return "cold";
    case ShedPolicy::kAll:
      return "all";
  }
  return "?";
}

ShedPolicy ParseShedPolicy(const std::string& name) {
  if (name == "none") return ShedPolicy::kNone;
  if (name == "cold") return ShedPolicy::kCold;
  if (name == "all") return ShedPolicy::kAll;
  throw util::FatalError("unknown shed policy '" + name +
                         "' (expected none|cold|all)");
}

void OverloadOptions::Validate() const {
  if (queue_delay_target_ms < 0.0) {
    throw util::FatalError("queue_delay_target_ms must be >= 0");
  }
  if (interval_ms <= 0.0) {
    throw util::FatalError("overload interval_ms must be positive");
  }
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    throw util::FatalError("overload ewma_alpha must be in (0, 1]");
  }
  if (brownout_exit_factor > brownout_enter_factor) {
    throw util::FatalError(
        "brownout_exit_factor must not exceed brownout_enter_factor "
        "(hysteresis would invert)");
  }
  if (retry_after_min_ms < 0.0 || retry_after_max_ms < retry_after_min_ms) {
    throw util::FatalError("retry_after bounds must satisfy 0 <= min <= max");
  }
}

OverloadController::OverloadController(OverloadOptions options,
                                       ServiceMetrics* metrics)
    : options_(options), metrics_(metrics) {
  options_.Validate();
}

void OverloadController::ObserveQueueDelay(double seconds,
                                           Clock::time_point now) {
  if (options_.queue_delay_target_ms <= 0.0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (have_ewma_) {
    ewma_seconds_ += options_.ewma_alpha * (seconds - ewma_seconds_);
  } else {
    ewma_seconds_ = seconds;
    have_ewma_ = true;
  }
  if (metrics_ != nullptr) {
    metrics_->queue_delay_ewma_us.store(
        static_cast<std::uint64_t>(std::max(0.0, ewma_seconds_ * 1e6)),
        std::memory_order_relaxed);
  }

  const double target_s = options_.queue_delay_target_ms * 1e-3;
  // CoDel admission state: the service is overloaded only once the
  // observed delay has stayed above target for a full interval. A single
  // above-target sample arms the interval timer; any below-target sample
  // disarms it and clears the overload verdict.
  if (seconds > target_s) {
    if (!above_target_) {
      above_target_ = true;
      first_above_ = now;
    } else if (!overloaded_ &&
               std::chrono::duration<double, std::milli>(now - first_above_)
                       .count() >= options_.interval_ms) {
      overloaded_ = true;
    }
  } else {
    above_target_ = false;
    overloaded_ = false;
  }

  // Brownout rides the smoothed estimate, with hysteresis so the backend
  // choice does not flap at the threshold.
  if (options_.brownout_enabled) {
    if (!brownout_ &&
        ewma_seconds_ > options_.brownout_enter_factor * target_s) {
      SetBrownoutLocked(true);
    } else if (brownout_ &&
               ewma_seconds_ < options_.brownout_exit_factor * target_s) {
      SetBrownoutLocked(false);
    }
  }
}

AdmitDecision OverloadController::Admit(RequestClass cls,
                                        std::size_t queue_depth,
                                        Clock::time_point /*now*/) {
  if (options_.queue_delay_target_ms <= 0.0 ||
      options_.shed_policy == ShedPolicy::kNone) {
    return {};
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_depth == 0) {
    // An empty queue cannot be overloaded, whatever the history says —
    // without this reset a stale verdict would shed the first request
    // after an idle period.
    ResetLocked();
    return {};
  }
  if (!overloaded_) return {};
  if (options_.shed_policy == ShedPolicy::kCold && cls == RequestClass::kWarm) {
    return {};
  }
  return {false, RetryAfterMsLocked()};
}

double OverloadController::RetryAfterMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return RetryAfterMsLocked();
}

double OverloadController::RetryAfterMsLocked() const {
  return std::clamp(2.0 * ewma_seconds_ * 1e3, options_.retry_after_min_ms,
                    options_.retry_after_max_ms);
}

bool OverloadController::Overloaded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overloaded_;
}

bool OverloadController::Brownout() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return brownout_;
}

double OverloadController::QueueDelayEwmaSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ewma_seconds_;
}

void OverloadController::SetBrownoutLocked(bool on) {
  if (brownout_ == on) return;
  brownout_ = on;
  if (metrics_ != nullptr) {
    metrics_->brownout_active.store(on ? 1 : 0, std::memory_order_relaxed);
    if (on) {
      metrics_->brownout_entries.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void OverloadController::ResetLocked() {
  ewma_seconds_ = 0.0;
  have_ewma_ = false;
  overloaded_ = false;
  above_target_ = false;
  SetBrownoutLocked(false);
  if (metrics_ != nullptr) {
    metrics_->queue_delay_ewma_us.store(0, std::memory_order_relaxed);
  }
}

}  // namespace fadesched::service
