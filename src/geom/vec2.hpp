// 2D point/vector type used throughout the geometric algorithms.
#pragma once

#include <cmath>

namespace fadesched::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  [[nodiscard]] constexpr double Dot(Vec2 other) const {
    return x * other.x + y * other.y;
  }
  [[nodiscard]] constexpr double SquaredNorm() const { return x * x + y * y; }
  [[nodiscard]] double Norm() const { return std::hypot(x, y); }
};

/// Euclidean distance between two points.
inline double Distance(Vec2 a, Vec2 b) { return (a - b).Norm(); }

/// Squared distance (cheaper; used in radius queries).
constexpr double SquaredDistance(Vec2 a, Vec2 b) {
  return (a - b).SquaredNorm();
}

/// Axis-aligned bounding box.
struct Aabb {
  Vec2 lo;
  Vec2 hi;

  [[nodiscard]] constexpr bool Contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  [[nodiscard]] constexpr double Width() const { return hi.x - lo.x; }
  [[nodiscard]] constexpr double Height() const { return hi.y - lo.y; }

  /// Grow to include `p`.
  void Extend(Vec2 p) {
    lo.x = p.x < lo.x ? p.x : lo.x;
    lo.y = p.y < lo.y ? p.y : lo.y;
    hi.x = p.x > hi.x ? p.x : hi.x;
    hi.y = p.y > hi.y ? p.y : hi.y;
  }
};

}  // namespace fadesched::geom
