// Spatial hash index for radius queries over a static point set.
//
// RLE removes all senders within radius c1·d_ii of the picked receiver —
// with N up to thousands, a bucketed index turns that from O(N) per pick
// into (expected) output-sensitive time.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/grid.hpp"
#include "geom/vec2.hpp"

namespace fadesched::geom {

class SpatialHash {
 public:
  /// Builds an index over `points` with the given bucket size. Indices
  /// into the original span are what queries return.
  SpatialHash(std::span<const Vec2> points, double bucket_size);

  [[nodiscard]] std::size_t NumPoints() const { return points_.size(); }

  /// All point indices within `radius` of `center` (inclusive).
  [[nodiscard]] std::vector<std::size_t> QueryRadius(Vec2 center,
                                                     double radius) const;

  /// Visit point indices within `radius` of `center` without allocating.
  void ForEachInRadius(Vec2 center, double radius,
                       const std::function<void(std::size_t)>& visit) const;

 private:
  std::vector<Vec2> points_;
  SquareGrid grid_;
  std::unordered_map<CellIndex, std::vector<std::size_t>, CellIndexHash> buckets_;
};

}  // namespace fadesched::geom
