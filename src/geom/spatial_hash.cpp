#include "geom/spatial_hash.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fadesched::geom {

SpatialHash::SpatialHash(std::span<const Vec2> points, double bucket_size)
    : points_(points.begin(), points.end()),
      grid_(Vec2{0.0, 0.0}, bucket_size) {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    buckets_[grid_.CellOf(points_[i])].push_back(i);
  }
}

std::vector<std::size_t> SpatialHash::QueryRadius(Vec2 center,
                                                  double radius) const {
  std::vector<std::size_t> out;
  ForEachInRadius(center, radius, [&out](std::size_t i) { out.push_back(i); });
  return out;
}

void SpatialHash::ForEachInRadius(
    Vec2 center, double radius,
    const std::function<void(std::size_t)>& visit) const {
  FS_CHECK_MSG(radius >= 0.0, "negative query radius");
  const double r2 = radius * radius;
  const CellIndex lo = grid_.CellOf(Vec2{center.x - radius, center.y - radius});
  const CellIndex hi = grid_.CellOf(Vec2{center.x + radius, center.y + radius});
  for (std::int64_t a = lo.a; a <= hi.a; ++a) {
    for (std::int64_t b = lo.b; b <= hi.b; ++b) {
      auto it = buckets_.find(CellIndex{a, b});
      if (it == buckets_.end()) continue;
      for (std::size_t i : it->second) {
        if (SquaredDistance(points_[i], center) <= r2) visit(i);
      }
    }
  }
}

}  // namespace fadesched::geom
