// Uniform square grid over a bounding region with the paper's 2×2
// 4-colouring (Fig. 2(a)): colour(a, b) = (a mod 2) + 2·(b mod 2).
//
// LDP partitions the plane into squares of side β_k and concurrently
// schedules at most one link per same-colour square; two squares sharing a
// colour are at least 2 grid steps apart in each axis, which is what the
// interference bound in Theorem 4.1 relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace fadesched::geom {

/// Integer cell coordinate in the grid.
struct CellIndex {
  std::int64_t a = 0;
  std::int64_t b = 0;
  friend constexpr bool operator==(CellIndex lhs, CellIndex rhs) {
    return lhs.a == rhs.a && lhs.b == rhs.b;
  }
};

class SquareGrid {
 public:
  /// Grid anchored at `origin` with square side `cell_size` (> 0).
  SquareGrid(Vec2 origin, double cell_size);

  [[nodiscard]] double CellSize() const { return cell_size_; }
  [[nodiscard]] Vec2 Origin() const { return origin_; }

  /// Cell containing point `p` (points exactly on a boundary go to the
  /// higher-index cell, consistently).
  [[nodiscard]] CellIndex CellOf(Vec2 p) const;

  /// 2×2 colouring in {0, 1, 2, 3}; same colour ⇒ cell indices differ by a
  /// multiple of 2 in each axis.
  [[nodiscard]] static int ColorOf(CellIndex cell);

  /// Lower corner of a cell.
  [[nodiscard]] Vec2 CellLow(CellIndex cell) const;

  /// Chebyshev distance between cells in grid units.
  [[nodiscard]] static std::int64_t ChebyshevDistance(CellIndex x, CellIndex y);

 private:
  Vec2 origin_;
  double cell_size_;
};

/// Hash for CellIndex, for unordered_map-based bucketing.
struct CellIndexHash {
  std::size_t operator()(CellIndex c) const noexcept {
    // 2D -> 1D mix (64-bit splitmix-style finalizer over packed halves).
    std::uint64_t h = static_cast<std::uint64_t>(c.a) * 0x9e3779b97f4a7c15ULL ^
                      static_cast<std::uint64_t>(c.b) * 0xc2b2ae3d27d4eb4fULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace fadesched::geom
