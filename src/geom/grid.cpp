#include "geom/grid.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fadesched::geom {

SquareGrid::SquareGrid(Vec2 origin, double cell_size)
    : origin_(origin), cell_size_(cell_size) {
  FS_CHECK_MSG(cell_size > 0.0, "grid cell size must be positive");
  FS_CHECK_MSG(std::isfinite(cell_size), "grid cell size must be finite");
}

CellIndex SquareGrid::CellOf(Vec2 p) const {
  return CellIndex{
      static_cast<std::int64_t>(std::floor((p.x - origin_.x) / cell_size_)),
      static_cast<std::int64_t>(std::floor((p.y - origin_.y) / cell_size_))};
}

int SquareGrid::ColorOf(CellIndex cell) {
  // Euclidean (non-negative) mod 2 for possibly negative indices.
  const int pa = static_cast<int>(((cell.a % 2) + 2) % 2);
  const int pb = static_cast<int>(((cell.b % 2) + 2) % 2);
  return pa + 2 * pb;
}

Vec2 SquareGrid::CellLow(CellIndex cell) const {
  return Vec2{origin_.x + cell_size_ * static_cast<double>(cell.a),
              origin_.y + cell_size_ * static_cast<double>(cell.b)};
}

std::int64_t SquareGrid::ChebyshevDistance(CellIndex x, CellIndex y) {
  const std::int64_t da = x.a > y.a ? x.a - y.a : y.a - x.a;
  const std::int64_t db = x.b > y.b ? x.b - y.b : y.b - x.b;
  return da > db ? da : db;
}

}  // namespace fadesched::geom
