#include "channel/feasibility.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fadesched::channel {

double SuccessProbability(const InterferenceCalculator& calc,
                          std::span<const net::LinkId> schedule,
                          net::LinkId victim) {
  FS_DCHECK(std::find(schedule.begin(), schedule.end(), victim) !=
            schedule.end());
  return std::exp(-(calc.NoiseFactor(victim) +
                    calc.SumFactor(schedule, victim)));
}

bool LinkIsInformed(const InterferenceCalculator& calc,
                    std::span<const net::LinkId> schedule,
                    net::LinkId victim) {
  return calc.NoiseFactor(victim) + calc.SumFactor(schedule, victim) <=
         calc.Params().FeasibilityBudget();
}

bool ScheduleIsFeasible(const InterferenceCalculator& calc,
                        std::span<const net::LinkId> schedule) {
  return std::all_of(schedule.begin(), schedule.end(),
                     [&](net::LinkId j) {
                       return LinkIsInformed(calc, schedule, j);
                     });
}

std::vector<LinkFeasibility> AnalyzeSchedule(
    const InterferenceCalculator& calc,
    std::span<const net::LinkId> schedule) {
  const double budget = calc.Params().FeasibilityBudget();
  std::vector<LinkFeasibility> out;
  out.reserve(schedule.size());
  for (net::LinkId j : schedule) {
    LinkFeasibility entry;
    entry.link = j;
    entry.noise_factor = calc.NoiseFactor(j);
    entry.sum_factor = calc.SumFactor(schedule, j);
    entry.success_probability =
        std::exp(-(entry.noise_factor + entry.sum_factor));
    entry.informed = entry.noise_factor + entry.sum_factor <= budget;
    out.push_back(entry);
  }
  return out;
}

double InformedRate(const InterferenceCalculator& calc,
                    std::span<const net::LinkId> schedule) {
  double total = 0.0;
  for (const auto& entry : AnalyzeSchedule(calc, schedule)) {
    if (entry.informed) total += calc.Links().Rate(entry.link);
  }
  return total;
}

}  // namespace fadesched::channel
