#include "channel/graph_model.hpp"

#include "util/check.hpp"

namespace fadesched::channel {

GraphInterference::GraphInterference(const net::LinkSet& links,
                                     GraphModelParams params)
    : links_(&links), params_(params) {
  FS_CHECK_MSG(params_.range_factor >= 1.0,
               "interference range must cover at least the link itself");
}

bool GraphInterference::Conflict(net::LinkId a, net::LinkId b) const {
  FS_DCHECK(a < links_->Size() && b < links_->Size());
  if (a == b) return false;
  const double range_a = params_.range_factor * links_->Length(a);
  const double range_b = params_.range_factor * links_->Length(b);
  return geom::Distance(links_->Sender(b), links_->Receiver(a)) < range_a ||
         geom::Distance(links_->Sender(a), links_->Receiver(b)) < range_b;
}

bool GraphInterference::ScheduleIsIndependent(
    std::span<const net::LinkId> schedule) const {
  for (std::size_t x = 0; x < schedule.size(); ++x) {
    for (std::size_t y = x + 1; y < schedule.size(); ++y) {
      if (Conflict(schedule[x], schedule[y])) return false;
    }
  }
  return true;
}

std::size_t GraphInterference::Degree(net::LinkId link) const {
  std::size_t degree = 0;
  for (net::LinkId other = 0; other < links_->Size(); ++other) {
    if (Conflict(link, other)) ++degree;
  }
  return degree;
}

}  // namespace fadesched::channel
