#include "channel/params.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fadesched::channel {

double ChannelParams::GammaEpsilon() const {
  // ln(1/(1-ε)) = -log1p(-ε), computed stably for small ε.
  return -std::log1p(-epsilon);
}

double ChannelParams::FeasibilityBudget() const {
  return GammaEpsilon() * (1.0 + kFeasibilitySlack);
}

double ChannelParams::MeanPower(double distance) const {
  FS_DCHECK(distance > 0.0);
  return tx_power * std::pow(distance, -alpha);
}

void ChannelParams::Validate() const {
  FS_CHECK_MSG(alpha > 2.0, "path-loss exponent must satisfy alpha > 2");
  FS_CHECK_MSG(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
  FS_CHECK_MSG(gamma_th > 0.0, "gamma_th must be positive");
  FS_CHECK_MSG(tx_power > 0.0, "tx_power must be positive");
  FS_CHECK_MSG(noise_power >= 0.0, "noise_power must be non-negative");
}

}  // namespace fadesched::channel
