// Runtime SIMD dispatch for the vectorized interference kernel.
//
// The repository builds without -march flags so one binary runs on any
// x86-64 (and non-x86) host; the vector kernels are compiled per-function
// with `__attribute__((target(...)))` and selected here at runtime:
//
//   kAvx512 — AVX-512 F/DQ/VL. Uses reciprocal/rsqrt seed iterations, so
//             results differ from the scalar expression by a few ULP
//             (the precision ladder bounds and repairs the difference).
//   kAvx2   — AVX2+FMA with real vdivpd/vsqrtpd. Bit-identical to
//             kScalar by construction: the same correctly-rounded
//             operations in the same order, four lanes at a time.
//   kScalar — portable fallback; also what `FADESCHED_NO_SIMD=1` forces.
//
// Dispatch is observable and overridable in two ways:
//   * process-wide, via the environment (CI's forced-scalar runs):
//       FADESCHED_NO_SIMD=1          force kScalar
//       FADESCHED_SIMD_LEVEL=LEVEL   cap at scalar|avx2|avx512
//   * per-engine, via PrecisionLadderOptions::force_level (tests pin
//     both dispatch modes inside one process).
#pragma once

namespace fadesched::channel {

/// Ordered capability tiers; larger = wider. kAuto is a request value
/// only ("resolve at runtime") and never a resolved level.
enum class SimdLevel {
  kAuto = 0,
  kScalar = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

[[nodiscard]] const char* SimdLevelName(SimdLevel level);

/// Best tier this CPU supports (cpuid probe, cached; kScalar off x86-64).
[[nodiscard]] SimdLevel DetectSimdLevel();

/// DetectSimdLevel() capped by the FADESCHED_NO_SIMD /
/// FADESCHED_SIMD_LEVEL environment overrides. Read once per process.
[[nodiscard]] SimdLevel ActiveSimdLevel();

/// Pure core of ActiveSimdLevel, exposed for tests: applies the two
/// environment strings (either may be null) to `hardware`. Unknown level
/// strings are ignored — the variables can only cap, never raise.
[[nodiscard]] SimdLevel ApplySimdEnv(SimdLevel hardware, const char* no_simd,
                                     const char* level_cap);

/// Maps a requested level to the one that will actually run: kAuto →
/// ActiveSimdLevel(); an explicit request bypasses the environment caps
/// (so tests can pin a tier regardless of CI settings) but is clamped to
/// what the hardware supports.
[[nodiscard]] SimdLevel ResolveSimdLevel(SimdLevel requested);

}  // namespace fadesched::channel
