// Vectorized fast row kernel of the precision-ladder matrix build.
//
// One victim row of the dense interference matrix is
//
//   out[i] = ln(1 + a_i),   a_i = coeff · pw[i] / d((sx[i],sy[i]),(rx,ry))^α
//
// (or a_i itself for affectance matrices), evaluated over the engine's
// contiguous SoA sender tables. Three dispatch tiers share one algebraic
// definition — the "fast expression":
//
//   d² = fma(dy, dy, dx·dx)
//   d^α via the HalfPowerKernel quarter-integer chain (RowKernelSpec)
//   a  = cp / d^α
//   ln(1+a): an 8-term alternating series for a < 2⁻⁶, otherwise an
//   fdlibm-style log over u = 1+a with a low-order correction term
//   alow·(2−u) recovering the rounding of 1+a; non-finite a passes
//   through unchanged (the caller promotes those entries to the exact
//   scalar path — that is how domain errors like coincident positions
//   keep raising the same FS_CHECK as the exact build).
//
// kScalar and kAvx2 execute the fast expression with correctly-rounded
// IEEE operations in the same order and are bit-identical to each other.
// kAvx512 replaces divide/sqrt with rsqrt14/rcp14 seeds plus Newton
// iterations (and one reciprocal refinement of d^-α against the chain's
// d^α), which is a few ULP away from the other tiers; the precision
// ladder in batch_interference verifies and bounds that gap.
//
// Determinism: lane grids are anchored at sender index 0 and the tail is
// always evaluated with the scalar fast expression, so a row's bits
// depend only on (spec, tables, victim, level) — never on tiling or
// thread count.
#pragma once

#include <cstddef>

#include "channel/simd_dispatch.hpp"

namespace fadesched::channel::simd {

/// HalfPowerKernel decomposition replicated lane-wise:
/// d^α = (d²)^whole · (√d²)^use_sqrt · ((d²)^¼)^use_quarter.
struct RowKernelSpec {
  int whole = 0;
  bool use_sqrt = false;
  bool use_quarter = false;
  bool affectance = false;  ///< emit a_i instead of ln(1 + a_i)
};

/// Fills out[0..n) with the fast expression for one victim. `level` is
/// resolved via ResolveSimdLevel (pass a concrete tier to skip that).
/// AVX-512 uses non-temporal stores when `out` is 64-byte aligned; call
/// StoreFence() after the last row of a tile before publishing it.
///
/// Returns true iff some written entry is non-finite (a domain-promotion
/// candidate). The flag is accumulated in-register during the fill, so
/// the caller only pays a read-back scan of the O(N) row — which the
/// streaming stores pushed out to DRAM — when there is something to
/// promote; flag-false rows need no scan at all. The flag is a property
/// of the written values alone, so it is identical across tiers.
[[nodiscard]] bool FillFastRow(SimdLevel level, const RowKernelSpec& spec,
                               const double* sx, const double* sy,
                               const double* pw, double rx, double ry,
                               double coeff, std::size_t n, double* out0);

/// Two victim rows sharing one pass over the sender tables (the AVX-512
/// tier's register blocking). Values are identical to two FillFastRow
/// calls — pairing shares loads, never arithmetic. The returned flag
/// covers both rows.
[[nodiscard]] bool FillFastRowPair(SimdLevel level, const RowKernelSpec& spec,
                                   const double* sx, const double* sy,
                                   const double* pw, const double rx[2],
                                   const double ry[2], const double coeff[2],
                                   std::size_t n, double* out0, double* out1);

/// The scalar fast expression for a single entry (cp = coeff·pw). This is
/// the kScalar tier, every vector tier's tail, and the value the kAvx2
/// tier reproduces bit-for-bit.
[[nodiscard]] double ScalarFastEntry(const RowKernelSpec& spec, double dx,
                                     double dy, double cp);

/// Drains any pending non-temporal stores issued by FillFastRow[Pair]
/// (no-op on tiers and platforms that never stream).
void StoreFence();

}  // namespace fadesched::channel::simd
