#include "channel/batch_interference.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <future>
#include <limits>
#include <optional>

#include "channel/simd_kernel.hpp"
#include "geom/spatial_hash.hpp"
#include "mathx/summation.hpp"
#include "mathx/ulp.hpp"
#include "rng/splitmix64.hpp"
#include "util/thread_pool.hpp"

namespace fadesched::channel {

HalfPowerKernel::HalfPowerKernel(double alpha) : half_alpha_(alpha / 2.0) {
  // Exponent on d² in quarter units: d²^(q/4) = d^(q/2) = d^α ⇒ q = 2α.
  const double q_real = 2.0 * alpha;
  const double q_round = std::round(q_real);
  if (std::abs(q_real - q_round) < 1e-9 && q_round >= 1.0 && q_round <= 64.0) {
    const int q = static_cast<int>(q_round);
    whole_ = q / 4;
    use_sqrt_ = ((q >> 1) & 1) != 0;
    use_quarter_ = (q & 1) != 0;
  } else {
    generic_ = true;
  }
}

InterferenceEngine::InterferenceEngine(const net::LinkSet& links,
                                       const ChannelParams& params,
                                       EngineOptions options)
    : links_(&links),
      options_(options),
      calc_(links, params),  // validates params
      det_(links, params),
      kernel_(params.alpha),
      n_(links.Size()) {
  const ChannelParams& p = calc_.Params();
  sender_x_.resize(n_);
  sender_y_.resize(n_);
  receiver_x_.resize(n_);
  receiver_y_.resize(n_);
  power_.resize(n_);
  victim_coeff_.resize(n_);
  noise_factor_.resize(n_);
  for (net::LinkId j = 0; j < n_; ++j) {
    const geom::Vec2 s = links.Sender(j);
    const geom::Vec2 r = links.Receiver(j);
    sender_x_[j] = s.x;
    sender_y_[j] = s.y;
    receiver_x_[j] = r.x;
    receiver_y_[j] = r.y;
    power_[j] = links.EffectiveTxPower(j, p.tx_power);
    victim_coeff_[j] =
        p.gamma_th * std::pow(links.Length(j), p.alpha) / power_[j];
    noise_factor_[j] = calc_.NoiseFactor(j);
  }
  max_power_ =
      n_ == 0 ? 0.0 : *std::max_element(power_.begin(), power_.end());

  if (options_.backend == FactorBackend::kMatrix && n_ > 0) {
    double slack = 0.0;
    LadderStats stats;
    if (options_.affectance_matrix) {
      affectance_data_ = BuildMatrixData(/*affectance=*/true, slack, stats);
    } else {
      factor_matrix_ = std::make_unique<InterferenceMatrix>(
          n_, BuildMatrixData(/*affectance=*/false, slack, stats),
          options_.cutoff_radius, slack);
    }
    certified_slack_ = slack;
    ladder_stats_ = stats;
  }
}

InterferenceEngine::InterferenceEngine(
    std::shared_ptr<const InterferenceEngine> parent,
    const net::LinkSet& subset_links, std::span<const net::LinkId> ids)
    : links_(&subset_links),
      options_(parent->options_),
      calc_(subset_links, parent->Params()),
      det_(subset_links, parent->Params()),
      kernel_(parent->kernel_),
      n_(ids.size()) {
  FS_CHECK_MSG(subset_links.Size() == ids.size(),
               "subset view: LinkSet size does not match id count");
  // A view must never pin a third engine alive, and has nothing left to
  // build in parallel.
  options_.shared.reset();
  options_.pool = nullptr;

  sender_x_.resize(n_);
  sender_y_.resize(n_);
  receiver_x_.resize(n_);
  receiver_y_.resize(n_);
  power_.resize(n_);
  victim_coeff_.resize(n_);
  noise_factor_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const net::LinkId id = ids[k];
    FS_CHECK_MSG(id < parent->n_, "subset view: link id out of parent range");
    // `subset_links` must be parent->Links().Subset(ids): Subset() copies
    // coordinates bitwise, so exact equality is the correct test.
    const geom::Vec2 s = subset_links.Sender(k);
    const geom::Vec2 r = subset_links.Receiver(k);
    FS_CHECK_MSG(s.x == parent->sender_x_[id] && s.y == parent->sender_y_[id] &&
                     r.x == parent->receiver_x_[id] &&
                     r.y == parent->receiver_y_[id],
                 "subset view: link geometry does not match parent");
    FS_CHECK_MSG(subset_links.EffectiveTxPower(k, parent->Params().tx_power) ==
                     parent->power_[id],
                 "subset view: link power does not match parent");
    sender_x_[k] = parent->sender_x_[id];
    sender_y_[k] = parent->sender_y_[id];
    receiver_x_[k] = parent->receiver_x_[id];
    receiver_y_[k] = parent->receiver_y_[id];
    power_[k] = parent->power_[id];
    victim_coeff_[k] = parent->victim_coeff_[id];
    noise_factor_[k] = parent->noise_factor_[id];
  }
  max_power_ =
      n_ == 0 ? 0.0 : *std::max_element(power_.begin(), power_.end());

  // The certified cutoff slack bounds per-victim neglected mass over the
  // FULL interferer set, so it stays a sound (if looser) bound for any
  // subset; the ladder stats describe the parent's build the view reads.
  certified_slack_ = parent->certified_slack_;
  ladder_stats_ = parent->ladder_stats_;

  // Views of views collapse to one indirection: remap through the
  // intermediate view and adopt its parent, so a chain of per-slot
  // subsets never degrades query cost.
  if (parent->IsSubsetView()) {
    remap_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) remap_[k] = parent->remap_[ids[k]];
    parent_ = parent->parent_;
  } else {
    remap_.assign(ids.begin(), ids.end());
    parent_ = std::move(parent);
  }
}

double InterferenceEngine::Factor(net::LinkId interferer,
                                  net::LinkId victim) const {
  if (interferer == victim) return 0.0;
  switch (options_.backend) {
    case FactorBackend::kCalculator:
      return calc_.Factor(interferer, victim);
    case FactorBackend::kMatrix:
      if (parent_ != nullptr) {
        // Subset view: remap into the parent's materialized data.
        const net::LinkId pi = remap_[interferer];
        const net::LinkId pj = remap_[victim];
        if (parent_->factor_matrix_) {
          return parent_->factor_matrix_->Factor(pi, pj);
        }
        if (!parent_->affectance_data_.empty()) {
          return std::log1p(
              parent_->affectance_data_[pj * parent_->n_ + pi]);
        }
        break;  // parent matrix elided (empty set) — fall through to tables
      }
      if (factor_matrix_) return factor_matrix_->Factor(interferer, victim);
      if (!affectance_data_.empty()) {
        return std::log1p(affectance_data_[victim * n_ + interferer]);
      }
      break;  // matrix elided (empty set) — fall through to tables
    case FactorBackend::kTables:
      break;
  }
  return std::log1p(FastAffectance(interferer, victim));
}

double InterferenceEngine::Affectance(net::LinkId interferer,
                                      net::LinkId victim) const {
  if (interferer == victim) return 0.0;
  switch (options_.backend) {
    case FactorBackend::kCalculator:
      return det_.Affectance(interferer, victim);
    case FactorBackend::kMatrix:
      if (parent_ != nullptr) {
        if (!parent_->affectance_data_.empty()) {
          return parent_->affectance_data_[remap_[victim] * parent_->n_ +
                                           remap_[interferer]];
        }
        break;  // factor matrix materialized — recompute from tables
      }
      if (!affectance_data_.empty()) {
        return affectance_data_[victim * n_ + interferer];
      }
      break;  // factor matrix materialized — recompute from tables
    case FactorBackend::kTables:
      break;
  }
  return FastAffectance(interferer, victim);
}

double InterferenceEngine::SumFactor(std::span<const net::LinkId> schedule,
                                     net::LinkId victim) const {
  mathx::NeumaierSum sum;
  for (net::LinkId i : schedule) {
    if (i == victim) continue;
    sum.Add(Factor(i, victim));
  }
  return sum.Total();
}

double InterferenceEngine::FillTile(bool affectance,
                                    const geom::SpatialHash* sender_index,
                                    std::size_t row_begin, std::size_t row_end,
                                    double* data) const {
  double worst_slack = 0.0;
  const double cutoff = options_.cutoff_radius;
  for (std::size_t j = row_begin; j < row_end; ++j) {
    double* row = data + j * n_;
    const double coeff = victim_coeff_[j];
    const double rx = receiver_x_[j];
    const double ry = receiver_y_[j];
    if (cutoff > 0.0) {
      std::size_t in_range = 0;
      sender_index->ForEachInRadius({rx, ry}, cutoff, [&](std::size_t i) {
        if (i == j) return;
        const double d2 = SquaredSenderReceiverDistance(i, j);
        FS_CHECK_MSG(d2 > 0.0,
                     "interfering sender coincides with victim receiver");
        const double a = coeff * power_[i] / kernel_.DistPowAlpha(d2);
        row[i] = affectance ? a : std::log1p(a);
        ++in_range;
      });
      // Every skipped sender sits strictly beyond `cutoff` (the index's
      // radius is inclusive), so its term is below the boundary value.
      const std::size_t skipped = n_ - 1 - in_range;
      if (skipped > 0) {
        const double boundary =
            coeff * max_power_ / kernel_.DistPowAlpha(cutoff * cutoff);
        const double term = affectance ? boundary : std::log1p(boundary);
        worst_slack =
            std::max(worst_slack, static_cast<double>(skipped) * term);
      }
    } else {
      for (std::size_t i = 0; i < n_; ++i) {
        if (i == j) continue;
        const double dx = sender_x_[i] - rx;
        const double dy = sender_y_[i] - ry;
        const double d2 = dx * dx + dy * dy;
        FS_CHECK_MSG(d2 > 0.0,
                     "interfering sender coincides with victim receiver");
        const double a = coeff * power_[i] / kernel_.DistPowAlpha(d2);
        row[i] = affectance ? a : std::log1p(a);
      }
    }
  }
  return worst_slack;
}

std::size_t InterferenceEngine::FillFastTile(bool affectance, SimdLevel level,
                                             std::size_t row_begin,
                                             std::size_t row_end,
                                             double* data) const {
  const simd::RowKernelSpec spec{kernel_.WholeSteps(), kernel_.UsesSqrt(),
                                 kernel_.UsesQuarter(), affectance};
  const double* sx = sender_x_.data();
  const double* sy = sender_y_.data();
  const double* pw = power_.data();
  // The kernel accumulates a per-row "wrote a non-finite value" flag
  // in-register, so the rung-1 scan below touches only flagged rows —
  // on clean geometry the O(N²) output, freshly streamed past the cache
  // to DRAM, is never read back during the build.
  std::vector<std::size_t> flagged;
  std::size_t j = row_begin;
  for (; j + 2 <= row_end; j += 2) {
    const double rx[2] = {receiver_x_[j], receiver_x_[j + 1]};
    const double ry[2] = {receiver_y_[j], receiver_y_[j + 1]};
    const double coeff[2] = {victim_coeff_[j], victim_coeff_[j + 1]};
    if (simd::FillFastRowPair(level, spec, sx, sy, pw, rx, ry, coeff, n_,
                              data + j * n_, data + (j + 1) * n_)) {
      flagged.push_back(j);
      flagged.push_back(j + 1);
    }
  }
  for (; j < row_end; ++j) {
    if (simd::FillFastRow(level, spec, sx, sy, pw, receiver_x_[j],
                          receiver_y_[j], victim_coeff_[j], n_,
                          data + j * n_)) {
      flagged.push_back(j);
    }
  }
  // Drain the streaming stores before this core reads flagged rows back
  // (and before the tile is published to other threads via the pool's
  // future synchronization).
  simd::StoreFence();

  for (j = row_begin; j < row_end; ++j) data[j * n_ + j] = 0.0;

  // Ladder rung 1 (domain): the fast kernel passes non-finite lanes
  // through untouched — coincident positions and d^α overflow at extreme
  // geometry surface as inf/NaN and flag their row. Recompute every
  // non-finite entry exactly; FastAffectance re-raises the exact build's
  // FS_CHECK on coincident positions. (The diagonal is finite in the fast
  // expression — d_jj is the link length — and zeroed above, so it never
  // flags a row by itself.)
  std::size_t promoted = 0;
  for (const std::size_t row_j : flagged) {
    double* row = data + row_j * n_;
    for (std::size_t i = 0; i < n_; ++i) {
      if (i == row_j || std::isfinite(row[i])) continue;
      const double a = FastAffectance(i, row_j);
      row[i] = affectance ? a : std::log1p(a);
      ++promoted;
    }
  }
  return promoted;
}

void InterferenceEngine::VerifyLadder(bool affectance, double* data,
                                      LadderStats& stats) const {
  const PrecisionLadderOptions& ladder = options_.ladder;
  if (n_ < 2) return;
  const std::size_t off_diag = n_ * (n_ - 1);

  // Rung 2 (entry): recompute a seeded sample — or everything — through
  // the exact expression; promote whatever sits outside the ULP band.
  // Bit equality is checked before UlpDistance so entries the domain rung
  // already promoted (possibly to ±inf, where UlpDistance saturates)
  // count as distance zero.
  const auto check_entry = [&](std::size_t i, std::size_t j) {
    double* slot = data + j * n_ + i;
    const double a = FastAffectance(i, j);
    const double want = affectance ? a : std::log1p(a);
    ++stats.verified_entries;
    if (std::bit_cast<std::uint64_t>(*slot) ==
        std::bit_cast<std::uint64_t>(want)) {
      return;
    }
    const std::uint64_t ulp = mathx::UlpDistance(*slot, want);
    stats.max_verify_ulp = std::max(stats.max_verify_ulp, ulp);
    if (ulp > ladder.ulp_band) {
      *slot = want;
      ++stats.promoted_verify;
    }
  };
  switch (ladder.verify) {
    case PrecisionLadderOptions::Verify::kOff:
      break;
    case PrecisionLadderOptions::Verify::kSampled: {
      rng::SplitMix64 rng(ladder.verify_seed);
      const std::size_t samples = std::min(ladder.verify_samples, off_diag);
      for (std::size_t k = 0; k < samples; ++k) {
        const std::size_t j = rng.Next() % n_;
        std::size_t i = rng.Next() % (n_ - 1);
        if (i >= j) ++i;
        check_entry(i, j);
      }
      break;
    }
    case PrecisionLadderOptions::Verify::kFull:
      for (std::size_t j = 0; j < n_; ++j) {
        for (std::size_t i = 0; i < n_; ++i) {
          if (i != j) check_entry(i, j);
        }
      }
      break;
  }

  // Rung 3 (row): seeded rows are re-summed with Neumaier compensation
  // in the exact expression. The tolerance scales the band by the
  // compensated-summation error model — per-entry disagreements of up to
  // `ulp_band` ULP displace the row sum by at most ~band·ε·Σ|e_i| — with
  // an n·ε·|Σ| envelope plus a denormal floor so an all-tiny row cannot
  // trip on absolute noise. A drifting row is rewritten exactly.
  const std::size_t rows = std::min(ladder.verify_rows, n_);
  if (rows == 0) return;
  rng::SplitMix64 row_rng(ladder.verify_seed ^ 0xda3e39cb94b95bdbull);
  std::vector<double> exact_row(n_, 0.0);
  for (std::size_t k = 0; k < rows; ++k) {
    const std::size_t j = row_rng.Next() % n_;
    ++stats.verified_rows;
    double* row = data + j * n_;
    mathx::NeumaierSum exact_sum;
    mathx::NeumaierSum fast_sum;
    for (std::size_t i = 0; i < n_; ++i) {
      if (i == j) {
        exact_row[i] = 0.0;
        continue;
      }
      const double a = FastAffectance(i, j);
      exact_row[i] = affectance ? a : std::log1p(a);
      exact_sum.Add(exact_row[i]);
      fast_sum.Add(row[i]);
    }
    const double want = exact_sum.Total();
    const double tol =
        static_cast<double>(ladder.ulp_band) *
        (std::numeric_limits<double>::epsilon() * static_cast<double>(n_) *
             std::abs(want) +
         std::numeric_limits<double>::min());
    if (std::abs(fast_sum.Total() - want) > tol) {
      std::copy(exact_row.begin(), exact_row.end(), row);
      ++stats.promoted_rows;
    }
  }
}

FactorBuffer InterferenceEngine::BuildMatrixData(bool affectance,
                                                 double& certified_slack,
                                                 LadderStats& stats) const {
  certified_slack = 0.0;
  stats = LadderStats{};
  FactorBuffer data;
  if (n_ == 0) return data;

  // Ladder eligibility: the fast kernel evaluates every off-diagonal
  // entry of a dense matrix through the quarter-integer chain — a
  // far-field cutoff (sparse rows via the spatial index) or a generic α
  // (libm pow) keeps the exact tile loop.
  bool fast = false;
  if (options_.ladder.enabled) {
    if (options_.cutoff_radius > 0.0) {
      stats.fallback_reason = "far-field cutoff uses the exact indexed build";
    } else if (!kernel_.IsSpecialized()) {
      stats.fallback_reason = "generic (non-quarter-integer) alpha";
    } else {
      fast = true;
    }
  }
  const SimdLevel level = ResolveSimdLevel(options_.ladder.force_level);

  if (fast) {
    // The fast kernel writes every entry (diagonal included), so the
    // buffer stays uninitialized — the allocator's default-init resize()
    // skips a full zero-fill pass over the O(N²) working set.
    data.resize(n_ * n_);
  } else {
    // The exact indexed build relies on the zero background for entries
    // outside the far-field cutoff.
    data.assign(n_ * n_, 0.0);
  }

  std::optional<geom::SpatialHash> sender_index;
  if (options_.cutoff_radius > 0.0) {
    sender_index.emplace(links_->Senders(), options_.cutoff_radius);
  }
  const geom::SpatialHash* index = sender_index ? &*sender_index : nullptr;
  const std::size_t tile = std::max<std::size_t>(1, options_.tile_rows);
  const std::size_t num_tiles = (n_ + tile - 1) / tile;
  std::vector<double> tile_slack(num_tiles, 0.0);
  std::vector<std::size_t> tile_promoted(num_tiles, 0);
  const auto run_tile = [&](std::size_t t) {
    const std::size_t row_begin = t * tile;
    const std::size_t row_end = std::min(n_, row_begin + tile);
    if (fast) {
      tile_promoted[t] =
          FillFastTile(affectance, level, row_begin, row_end, data.data());
    } else {
      tile_slack[t] =
          FillTile(affectance, index, row_begin, row_end, data.data());
    }
  };
  if (options_.pool == nullptr) {
    for (std::size_t t = 0; t < num_tiles; ++t) run_tile(t);
  } else {
    // Tiles own disjoint row ranges, so workers never write the same
    // element and the result is identical for any thread count.
    std::vector<std::future<void>> futures;
    futures.reserve(num_tiles);
    for (std::size_t t = 0; t < num_tiles; ++t) {
      futures.push_back(options_.pool->Submit([&run_tile, t] { run_tile(t); }));
    }
    util::WaitAll(futures).Rethrow();
  }
  certified_slack =
      *std::max_element(tile_slack.begin(), tile_slack.end());

  if (fast) {
    stats.active = true;
    stats.level = level;
    stats.entries = n_ * (n_ - 1);
    for (const std::size_t p : tile_promoted) stats.promoted_domain += p;
    VerifyLadder(affectance, data.data(), stats);
  }
  return data;
}

InterferenceMatrix BuildInterferenceMatrixTiled(
    const net::LinkSet& links, const ChannelParams& params,
    const TiledBuildOptions& options) {
  EngineOptions engine_options;
  engine_options.backend = FactorBackend::kTables;
  engine_options.pool = options.pool;
  engine_options.tile_rows = options.tile_rows;
  engine_options.cutoff_radius = options.cutoff_radius;
  const InterferenceEngine engine(links, params, engine_options);
  double slack = 0.0;
  LadderStats stats;  // ladder never enabled here — the exact tile loop
  FactorBuffer data =
      engine.BuildMatrixData(/*affectance=*/false, slack, stats);
  return InterferenceMatrix(links.Size(), std::move(data),
                            options.cutoff_radius, slack);
}

IncrementalFeasibility::IncrementalFeasibility(const InterferenceEngine& engine,
                                               Quantity quantity)
    : engine_(&engine),
      quantity_(quantity),
      noise_(engine.noise_factor_),
      sum_(engine.Size(), 0.0),
      comp_(engine.Size(), 0.0) {}

double IncrementalFeasibility::Term(net::LinkId i, net::LinkId j) const {
  return quantity_ == Quantity::kFactor ? engine_->Factor(i, j)
                                        : engine_->Affectance(i, j);
}

void IncrementalFeasibility::AddTerm(net::LinkId j, double value) {
  const double t = sum_[j] + value;
  if (std::abs(sum_[j]) >= std::abs(value)) {
    comp_[j] += (sum_[j] - t) + value;
  } else {
    comp_[j] += (value - t) + sum_[j];
  }
  sum_[j] = t;
}

void IncrementalFeasibility::Add(net::LinkId interferer) {
  for (net::LinkId j = 0; j < sum_.size(); ++j) {
    if (j == interferer) continue;
    AddTerm(j, Term(interferer, j));
  }
  active_.push_back(interferer);
}

void IncrementalFeasibility::Add(net::LinkId interferer,
                                 std::span<const char> alive) {
  for (net::LinkId j = 0; j < sum_.size(); ++j) {
    if (j == interferer || !alive[j]) continue;
    AddTerm(j, Term(interferer, j));
  }
  active_.push_back(interferer);
}

void IncrementalFeasibility::Remove(net::LinkId interferer) {
  const auto it = std::find(active_.begin(), active_.end(), interferer);
  FS_CHECK_MSG(it != active_.end(),
               "Remove() of a link that was never Add()ed");
  active_.erase(it);
  for (net::LinkId j = 0; j < sum_.size(); ++j) {
    if (j == interferer) continue;
    AddTerm(j, -Term(interferer, j));
  }
}

double IncrementalFeasibility::SumWith(net::LinkId extra,
                                       net::LinkId victim) const {
  return Sum(victim) + (extra == victim ? 0.0 : Term(extra, victim));
}

std::shared_ptr<const InterferenceEngine> MakeSubsetEngineView(
    std::shared_ptr<const InterferenceEngine> parent,
    const net::LinkSet& subset_links, std::span<const net::LinkId> ids) {
  FS_CHECK_MSG(parent != nullptr, "subset view requires a parent engine");
  return std::make_shared<const InterferenceEngine>(std::move(parent),
                                                    subset_links, ids);
}

const InterferenceEngine& ObtainEngine(
    const net::LinkSet& links, const ChannelParams& params,
    const EngineOptions& options, std::optional<InterferenceEngine>& local) {
  const InterferenceEngine* shared = options.shared.get();
  if (shared != nullptr && &shared->Links() == &links &&
      shared->Params() == params) {
    // The build-only knobs (pool, tile_rows) never change results, so only
    // the result-bearing configuration must match for reuse to be exact.
    // Cutoff and affectance shape only a materialized matrix; the other
    // backends derive both quantities on the fly.
    const EngineOptions& built = shared->Options();
    // Ladder settings shape a materialized matrix too; two disabled
    // ladders are interchangeable regardless of their other knobs.
    const bool ladder_match =
        (!built.ladder.enabled && !options.ladder.enabled) ||
        built.ladder == options.ladder;
    if (built.backend == options.backend &&
        (options.backend != FactorBackend::kMatrix ||
         (built.cutoff_radius == options.cutoff_radius &&
          built.affectance_matrix == options.affectance_matrix &&
          ladder_match))) {
      return *shared;
    }
  }
  // Drop the rejected shared engine before building locally, so the local
  // engine's stored options don't pin someone else's tables alive.
  EngineOptions fresh = options;
  fresh.shared.reset();
  local.emplace(links, params, std::move(fresh));
  return *local;
}

}  // namespace fadesched::channel
