#include "channel/simd_kernel.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#if defined(__x86_64__) || defined(_M_X64)
#define FADESCHED_SIMD_X86 1
#include <immintrin.h>
#define FS_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define FS_TARGET_AVX512 __attribute__((target("avx512f,avx512dq,avx512vl")))
#if defined(__GNUC__) && !defined(__clang__)
// gcc's getmant/getexp/rcp14/rsqrt14 wrappers pass _mm512_undefined_pd()
// as the masked-merge source; inlined here that don't-care operand trips
// -Wmaybe-uninitialized even though no lane of it is ever selected.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
#endif

namespace fadesched::channel::simd {
namespace {

// ln(1+a) switches from the alternating series to the full log at 2⁻⁶:
// below it the truncated a⁸/9 tail is < 2⁻⁵¹ relative, and in the
// engine's geometry the vast majority of affectances are far smaller.
constexpr double kSeriesMax = 0x1p-6;

// Series coefficients (−1)ᵏ/(k+1) for ln(1+a)/a, Horner top-down.
constexpr double kS7 = -1.0 / 8.0;
constexpr double kS6 = 1.0 / 7.0;
constexpr double kS5 = -1.0 / 6.0;
constexpr double kS4 = 1.0 / 5.0;
constexpr double kS3 = -1.0 / 4.0;
constexpr double kS2 = 1.0 / 3.0;
constexpr double kS1 = -1.0 / 2.0;

// fdlibm log(): atanh-series split polynomial over s = (m−1)/(m+1) with
// m folded into [√2/2, √2), plus the exact-sum split of ln 2.
constexpr double kLg1 = 6.666666666666735130e-01;
constexpr double kLg2 = 3.999999999940941908e-01;
constexpr double kLg3 = 2.857142874366239149e-01;
constexpr double kLg4 = 2.222219843214978396e-01;
constexpr double kLg5 = 1.818357216161805012e-01;
constexpr double kLg6 = 1.531383769920937332e-01;
constexpr double kLg7 = 1.479819860511658591e-01;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kSqrt2 = 1.4142135623730951;

constexpr std::uint64_t kMantissaMask = 0x000FFFFFFFFFFFFFull;
constexpr std::uint64_t kOneBits = 0x3FF0000000000000ull;

// ---------------------------------------------------------------------------
// Scalar tier — the fast expression the AVX2 tier matches bit-for-bit.
// ---------------------------------------------------------------------------

double ScalarDistPow(const RowKernelSpec& spec, double d2) {
  double p = d2;
  for (int k = 1; k < spec.whole; ++k) p *= d2;
  if (spec.whole == 0) p = 1.0;
  if (spec.use_sqrt) p *= std::sqrt(d2);
  if (spec.use_quarter) p *= std::sqrt(std::sqrt(d2));
  return p;
}

double ScalarFastLog1p(double a) {
  // Non-finite a passes through so the caller can promote the entry to
  // the exact path (mirrors the vector tiers' bad-lane blend).
  if (!(a < std::numeric_limits<double>::infinity())) return a;
  if (a < kSeriesMax) {
    double t = kS7;
    t = std::fma(a, t, kS6);
    t = std::fma(a, t, kS5);
    t = std::fma(a, t, kS4);
    t = std::fma(a, t, kS3);
    t = std::fma(a, t, kS2);
    t = std::fma(a, t, kS1);
    t = std::fma(a, t, 1.0);
    return a * t;
  }
  const double u = 1.0 + a;
  const double du = u - 1.0;
  const double alow = a - du;  // rounding error of 1+a
  // First-order correction ln(u + alow) ≈ ln(u) + alow/u with 1/u
  // linearized as (2−u); only valid (and only significant) for u < 2.
  const double c = u < 2.0 ? alow * (2.0 - u) : 0.0;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(u);
  const double eraw = static_cast<double>(bits >> 52);
  double e = eraw - 1023.0;
  double m = std::bit_cast<double>((bits & kMantissaMask) | kOneBits);
  if (m > kSqrt2) {
    m *= 0.5;
    e += 1.0;
  }
  const double f1 = m - 1.0;
  const double f2 = m + 1.0;
  const double s = f1 / f2;
  const double z = s * s;
  const double w = z * z;
  double t1 = std::fma(w, kLg6, kLg4);
  t1 = std::fma(w, t1, kLg2);
  t1 = w * t1;
  double t2 = std::fma(w, kLg7, kLg5);
  t2 = std::fma(w, t2, kLg3);
  t2 = std::fma(w, t2, kLg1);
  t2 = z * t2;
  const double rr = t1 + t2;
  const double srr = s * rr;
  double acc = std::fma(e, kLn2Lo, c);
  acc = acc + srr;
  acc = std::fma(s, 2.0, acc);
  return std::fma(e, kLn2Hi, acc);
}

bool ScalarFill(const RowKernelSpec& spec, const double* sx, const double* sy,
                const double* pw, std::size_t n, double rx, double ry,
                double coeff, double* out) {
  bool bad = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double f =
        ScalarFastEntry(spec, sx[i] - rx, sy[i] - ry, coeff * pw[i]);
    out[i] = f;
    bad |= !std::isfinite(f);
  }
  return bad;
}

#ifdef FADESCHED_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 tier — four lanes of the scalar expression, bit-identical to it
// (sub/mul/fma/div/sqrt are all correctly rounded, same order).
// ---------------------------------------------------------------------------

FS_TARGET_AVX2 inline __m256d DistPow256(const RowKernelSpec& spec,
                                         __m256d d2) {
  __m256d p = d2;
  for (int k = 1; k < spec.whole; ++k) p = _mm256_mul_pd(p, d2);
  if (spec.whole == 0) p = _mm256_set1_pd(1.0);
  if (spec.use_sqrt) p = _mm256_mul_pd(p, _mm256_sqrt_pd(d2));
  if (spec.use_quarter) {
    p = _mm256_mul_pd(p, _mm256_sqrt_pd(_mm256_sqrt_pd(d2)));
  }
  return p;
}

FS_TARGET_AVX2 inline __m256d Log1pLanes256(__m256d a) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d t = _mm256_set1_pd(kS7);
  t = _mm256_fmadd_pd(a, t, _mm256_set1_pd(kS6));
  t = _mm256_fmadd_pd(a, t, _mm256_set1_pd(kS5));
  t = _mm256_fmadd_pd(a, t, _mm256_set1_pd(kS4));
  t = _mm256_fmadd_pd(a, t, _mm256_set1_pd(kS3));
  t = _mm256_fmadd_pd(a, t, _mm256_set1_pd(kS2));
  t = _mm256_fmadd_pd(a, t, _mm256_set1_pd(kS1));
  t = _mm256_fmadd_pd(a, t, one);
  __m256d f = _mm256_mul_pd(a, t);

  const __m256d big =
      _mm256_cmp_pd(a, _mm256_set1_pd(kSeriesMax), _CMP_NLT_UQ);
  if (_mm256_movemask_pd(big) != 0) {
    const __m256d two = _mm256_set1_pd(2.0);
    const __m256d u = _mm256_add_pd(one, a);
    const __m256d du = _mm256_sub_pd(u, one);
    const __m256d alow = _mm256_sub_pd(a, du);
    const __m256d lowu = _mm256_cmp_pd(u, two, _CMP_LT_OQ);
    const __m256d c = _mm256_and_pd(
        lowu, _mm256_mul_pd(alow, _mm256_sub_pd(two, u)));
    const __m256i bits = _mm256_castpd_si256(u);
    const __m256i ebits = _mm256_srli_epi64(bits, 52);
    const __m256d eraw = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(
            ebits, _mm256_set1_epi64x(0x4330000000000000LL))),
        _mm256_set1_pd(4503599627370496.0));  // 2^52
    __m256d e = _mm256_sub_pd(eraw, _mm256_set1_pd(1023.0));
    __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits,
                         _mm256_set1_epi64x(static_cast<long long>(
                             kMantissaMask))),
        _mm256_set1_epi64x(static_cast<long long>(kOneBits))));
    const __m256d fold = _mm256_cmp_pd(m, _mm256_set1_pd(kSqrt2), _CMP_GT_OQ);
    m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), fold);
    e = _mm256_blendv_pd(e, _mm256_add_pd(e, one), fold);
    const __m256d f1 = _mm256_sub_pd(m, one);
    const __m256d f2 = _mm256_add_pd(m, one);
    const __m256d s = _mm256_div_pd(f1, f2);
    const __m256d z = _mm256_mul_pd(s, s);
    const __m256d w = _mm256_mul_pd(z, z);
    __m256d t1 = _mm256_fmadd_pd(w, _mm256_set1_pd(kLg6), _mm256_set1_pd(kLg4));
    t1 = _mm256_fmadd_pd(w, t1, _mm256_set1_pd(kLg2));
    t1 = _mm256_mul_pd(w, t1);
    __m256d t2 = _mm256_fmadd_pd(w, _mm256_set1_pd(kLg7), _mm256_set1_pd(kLg5));
    t2 = _mm256_fmadd_pd(w, t2, _mm256_set1_pd(kLg3));
    t2 = _mm256_fmadd_pd(w, t2, _mm256_set1_pd(kLg1));
    t2 = _mm256_mul_pd(z, t2);
    const __m256d rr = _mm256_add_pd(t1, t2);
    const __m256d srr = _mm256_mul_pd(s, rr);
    __m256d acc = _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2Lo), c);
    acc = _mm256_add_pd(acc, srr);
    acc = _mm256_fmadd_pd(s, two, acc);
    const __m256d flog = _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2Hi), acc);
    f = _mm256_blendv_pd(f, flog, big);
    const __m256d bad = _mm256_cmp_pd(
        a, _mm256_set1_pd(std::numeric_limits<double>::infinity()),
        _CMP_NLT_UQ);
    f = _mm256_blendv_pd(f, a, bad);
  }
  return f;
}

FS_TARGET_AVX2 inline __m256d FactorLanes256(const RowKernelSpec& spec,
                                             __m256d vsx, __m256d vsy,
                                             __m256d vpw, __m256d vrx,
                                             __m256d vry, __m256d vcoeff) {
  const __m256d dx = _mm256_sub_pd(vsx, vrx);
  const __m256d dy = _mm256_sub_pd(vsy, vry);
  __m256d d2 = _mm256_mul_pd(dx, dx);
  d2 = _mm256_fmadd_pd(dy, dy, d2);
  const __m256d p = DistPow256(spec, d2);
  const __m256d cp = _mm256_mul_pd(vcoeff, vpw);
  const __m256d a = _mm256_div_pd(cp, p);
  if (spec.affectance) return a;
  return Log1pLanes256(a);
}

FS_TARGET_AVX2 bool Avx2Fill(const RowKernelSpec& spec, const double* sx,
                             const double* sy, const double* pw, std::size_t n,
                             double rx0, double ry0, double c0, double* out0,
                             bool pair, double rx1, double ry1, double c1,
                             double* out1) {
  const __m256d vrx0 = _mm256_set1_pd(rx0);
  const __m256d vry0 = _mm256_set1_pd(ry0);
  const __m256d vc0 = _mm256_set1_pd(c0);
  const __m256d vrx1 = _mm256_set1_pd(rx1);
  const __m256d vry1 = _mm256_set1_pd(ry1);
  const __m256d vc1 = _mm256_set1_pd(c1);
  // Non-finiteness of the written values, accumulated in-register:
  // !(|f| < inf) is true exactly for ±inf and NaN.
  const __m256d absmask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  const __m256d vinf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d badacc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vsx = _mm256_loadu_pd(sx + i);
    const __m256d vsy = _mm256_loadu_pd(sy + i);
    const __m256d vpw = _mm256_loadu_pd(pw + i);
    const __m256d f0 = FactorLanes256(spec, vsx, vsy, vpw, vrx0, vry0, vc0);
    _mm256_storeu_pd(out0 + i, f0);
    badacc = _mm256_or_pd(
        badacc, _mm256_cmp_pd(_mm256_and_pd(f0, absmask), vinf, _CMP_NLT_UQ));
    if (pair) {
      const __m256d f1 = FactorLanes256(spec, vsx, vsy, vpw, vrx1, vry1, vc1);
      _mm256_storeu_pd(out1 + i, f1);
      badacc = _mm256_or_pd(
          badacc,
          _mm256_cmp_pd(_mm256_and_pd(f1, absmask), vinf, _CMP_NLT_UQ));
    }
  }
  bool bad = _mm256_movemask_pd(badacc) != 0;
  for (; i < n; ++i) {
    const double f0 =
        ScalarFastEntry(spec, sx[i] - rx0, sy[i] - ry0, c0 * pw[i]);
    out0[i] = f0;
    bad |= !std::isfinite(f0);
    if (pair) {
      const double f1 =
          ScalarFastEntry(spec, sx[i] - rx1, sy[i] - ry1, c1 * pw[i]);
      out1[i] = f1;
      bad |= !std::isfinite(f1);
    }
  }
  return bad;
}

// ---------------------------------------------------------------------------
// AVX-512 tier — rsqrt14/rcp14 seeds + Newton iterations replace every
// divide and square root on the hot path; a few ULP from the scalar
// expression (bounded by the precision ladder), ~2.5× its throughput.
// ---------------------------------------------------------------------------

FS_TARGET_AVX512 inline __m512d Log1pLanes512(__m512d a) {
  const __m512d one = _mm512_set1_pd(1.0);
  __m512d t = _mm512_set1_pd(kS7);
  t = _mm512_fmadd_pd(a, t, _mm512_set1_pd(kS6));
  t = _mm512_fmadd_pd(a, t, _mm512_set1_pd(kS5));
  t = _mm512_fmadd_pd(a, t, _mm512_set1_pd(kS4));
  t = _mm512_fmadd_pd(a, t, _mm512_set1_pd(kS3));
  t = _mm512_fmadd_pd(a, t, _mm512_set1_pd(kS2));
  t = _mm512_fmadd_pd(a, t, _mm512_set1_pd(kS1));
  t = _mm512_fmadd_pd(a, t, one);
  __m512d f = _mm512_mul_pd(a, t);

  const __mmask8 big =
      _mm512_cmp_pd_mask(a, _mm512_set1_pd(kSeriesMax), _CMP_NLT_UQ);
  if (big != 0) {
    const __m512d two = _mm512_set1_pd(2.0);
    const __m512d half = _mm512_set1_pd(0.5);
    const __m512d u = _mm512_add_pd(one, a);
    const __m512d du = _mm512_sub_pd(u, one);
    const __m512d alow = _mm512_sub_pd(a, du);
    const __mmask8 lowu = _mm512_cmp_pd_mask(u, two, _CMP_LT_OQ);
    const __m512d c =
        _mm512_maskz_mul_pd(lowu, alow, _mm512_sub_pd(two, u));
    __m512d m = _mm512_getmant_pd(u, _MM_MANT_NORM_1_2, _MM_MANT_SIGN_zero);
    __m512d e = _mm512_getexp_pd(u);
    const __mmask8 fold =
        _mm512_cmp_pd_mask(m, _mm512_set1_pd(kSqrt2), _CMP_GT_OQ);
    m = _mm512_mask_mul_pd(m, fold, m, half);
    e = _mm512_mask_add_pd(e, fold, e, one);
    const __m512d f1 = _mm512_sub_pd(m, one);
    const __m512d f2 = _mm512_add_pd(m, one);
    __m512d q = _mm512_rcp14_pd(f2);
    for (int it = 0; it < 2; ++it) {
      const __m512d eq = _mm512_fnmadd_pd(f2, q, one);
      q = _mm512_fmadd_pd(q, eq, q);
    }
    const __m512d s = _mm512_mul_pd(f1, q);
    const __m512d z = _mm512_mul_pd(s, s);
    const __m512d w = _mm512_mul_pd(z, z);
    __m512d t1 = _mm512_fmadd_pd(w, _mm512_set1_pd(kLg6), _mm512_set1_pd(kLg4));
    t1 = _mm512_fmadd_pd(w, t1, _mm512_set1_pd(kLg2));
    t1 = _mm512_mul_pd(w, t1);
    __m512d t2 = _mm512_fmadd_pd(w, _mm512_set1_pd(kLg7), _mm512_set1_pd(kLg5));
    t2 = _mm512_fmadd_pd(w, t2, _mm512_set1_pd(kLg3));
    t2 = _mm512_fmadd_pd(w, t2, _mm512_set1_pd(kLg1));
    t2 = _mm512_mul_pd(z, t2);
    const __m512d rr = _mm512_add_pd(t1, t2);
    const __m512d srr = _mm512_mul_pd(s, rr);
    __m512d acc = _mm512_fmadd_pd(e, _mm512_set1_pd(kLn2Lo), c);
    acc = _mm512_add_pd(acc, srr);
    acc = _mm512_fmadd_pd(s, two, acc);
    const __m512d flog = _mm512_fmadd_pd(e, _mm512_set1_pd(kLn2Hi), acc);
    f = _mm512_mask_mov_pd(f, big, flog);
    const __mmask8 bad = _mm512_cmp_pd_mask(
        a, _mm512_set1_pd(std::numeric_limits<double>::infinity()),
        _CMP_NLT_UQ);
    f = _mm512_mask_mov_pd(f, bad, a);
  }
  return f;
}

FS_TARGET_AVX512 inline __m512d FactorLanes512(const RowKernelSpec& spec,
                                               __m512d vsx, __m512d vsy,
                                               __m512d vpw, __m512d vrx,
                                               __m512d vry, __m512d vcoeff) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d dx = _mm512_sub_pd(vsx, vrx);
  const __m512d dy = _mm512_sub_pd(vsy, vry);
  __m512d d2 = _mm512_mul_pd(dx, dx);
  d2 = _mm512_fmadd_pd(dy, dy, d2);
  // r ≈ d2^(-1/2): rsqrt14 seed, two Newton steps. Zero/denormal d2
  // degenerates to NaN here, which the bad-lane handling downstream
  // turns into an exact-path promotion — identical FS_CHECK behavior to
  // the exact build.
  __m512d r = _mm512_rsqrt14_pd(d2);
  for (int it = 0; it < 2; ++it) {
    const __m512d t = _mm512_mul_pd(d2, r);
    const __m512d e = _mm512_fnmadd_pd(t, r, one);
    const __m512d hr = _mm512_mul_pd(half, r);
    r = _mm512_fmadd_pd(hr, e, r);
  }
  // inv0 ≈ d^-α and p ≈ d^α through the same quarter-integer chain as
  // the scalar kernel, then one reciprocal-Newton refinement of inv0
  // against p. The refinement pins the large-α error to the chain's own
  // rounding (~2-3 ULP even at α=10), and overflow/underflow of p turns
  // the lane NaN — again promoting extreme geometry to the exact path.
  const __m512d ir2 = _mm512_mul_pd(r, r);
  __m512d inv0 = spec.whole > 0 ? ir2 : one;
  for (int k = 1; k < spec.whole; ++k) inv0 = _mm512_mul_pd(inv0, ir2);
  __m512d p = spec.whole > 0 ? d2 : one;
  for (int k = 1; k < spec.whole; ++k) p = _mm512_mul_pd(p, d2);
  if (spec.use_sqrt || spec.use_quarter) {
    const __m512d dd = _mm512_mul_pd(d2, r);  // ≈ √d2
    if (spec.use_sqrt) {
      inv0 = _mm512_mul_pd(inv0, r);
      p = _mm512_mul_pd(p, dd);
    }
    if (spec.use_quarter) {
      inv0 = _mm512_mul_pd(inv0, _mm512_sqrt_pd(r));
      p = _mm512_mul_pd(p, _mm512_sqrt_pd(dd));
    }
  }
  const __m512d ep = _mm512_fnmadd_pd(p, inv0, one);
  const __m512d inv_p = _mm512_fmadd_pd(inv0, ep, inv0);
  const __m512d cp = _mm512_mul_pd(vcoeff, vpw);
  const __m512d a = _mm512_mul_pd(cp, inv_p);
  if (spec.affectance) return a;
  return Log1pLanes512(a);
}

FS_TARGET_AVX512 bool Avx512Fill(const RowKernelSpec& spec, const double* sx,
                                 const double* sy, const double* pw,
                                 std::size_t n, double rx0, double ry0,
                                 double c0, double* out0, bool pair,
                                 double rx1, double ry1, double c1,
                                 double* out1) {
  const __m512d vrx0 = _mm512_set1_pd(rx0);
  const __m512d vry0 = _mm512_set1_pd(ry0);
  const __m512d vc0 = _mm512_set1_pd(c0);
  const __m512d vrx1 = _mm512_set1_pd(rx1);
  const __m512d vry1 = _mm512_set1_pd(ry1);
  const __m512d vc1 = _mm512_set1_pd(c1);
  // Non-temporal stores skip the read-for-ownership on the O(N²) output
  // (it will not be re-read until long after the build); they demand
  // 64-byte-aligned addresses, which holds for every iteration when the
  // row base is aligned (each step advances exactly one cache line).
  const bool stream0 =
      (reinterpret_cast<std::uintptr_t>(out0) & 63u) == 0;
  const bool stream1 =
      pair && (reinterpret_cast<std::uintptr_t>(out1) & 63u) == 0;
  const __m512d vinf =
      _mm512_set1_pd(std::numeric_limits<double>::infinity());
  __mmask8 badm = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d vsx = _mm512_loadu_pd(sx + i);
    const __m512d vsy = _mm512_loadu_pd(sy + i);
    const __m512d vpw = _mm512_loadu_pd(pw + i);
    const __m512d f0 = FactorLanes512(spec, vsx, vsy, vpw, vrx0, vry0, vc0);
    badm = static_cast<__mmask8>(
        badm | _mm512_cmp_pd_mask(_mm512_abs_pd(f0), vinf, _CMP_NLT_UQ));
    if (stream0) {
      _mm512_stream_pd(out0 + i, f0);
    } else {
      _mm512_storeu_pd(out0 + i, f0);
    }
    if (pair) {
      const __m512d f1 = FactorLanes512(spec, vsx, vsy, vpw, vrx1, vry1, vc1);
      badm = static_cast<__mmask8>(
          badm | _mm512_cmp_pd_mask(_mm512_abs_pd(f1), vinf, _CMP_NLT_UQ));
      if (stream1) {
        _mm512_stream_pd(out1 + i, f1);
      } else {
        _mm512_storeu_pd(out1 + i, f1);
      }
    }
  }
  bool bad = badm != 0;
  for (; i < n; ++i) {
    const double f0 =
        ScalarFastEntry(spec, sx[i] - rx0, sy[i] - ry0, c0 * pw[i]);
    out0[i] = f0;
    bad |= !std::isfinite(f0);
    if (pair) {
      const double f1 =
          ScalarFastEntry(spec, sx[i] - rx1, sy[i] - ry1, c1 * pw[i]);
      out1[i] = f1;
      bad |= !std::isfinite(f1);
    }
  }
  return bad;
}

#endif  // FADESCHED_SIMD_X86

}  // namespace

double ScalarFastEntry(const RowKernelSpec& spec, double dx, double dy,
                       double cp) {
  const double d2 = std::fma(dy, dy, dx * dx);
  const double a = cp / ScalarDistPow(spec, d2);
  if (spec.affectance) return a;
  return ScalarFastLog1p(a);
}

bool FillFastRow(SimdLevel level, const RowKernelSpec& spec, const double* sx,
                 const double* sy, const double* pw, double rx, double ry,
                 double coeff, std::size_t n, double* out0) {
  switch (ResolveSimdLevel(level)) {
#ifdef FADESCHED_SIMD_X86
    case SimdLevel::kAvx512:
      return Avx512Fill(spec, sx, sy, pw, n, rx, ry, coeff, out0,
                        /*pair=*/false, 0.0, 0.0, 0.0, nullptr);
    case SimdLevel::kAvx2:
      return Avx2Fill(spec, sx, sy, pw, n, rx, ry, coeff, out0,
                      /*pair=*/false, 0.0, 0.0, 0.0, nullptr);
#endif
    default:
      return ScalarFill(spec, sx, sy, pw, n, rx, ry, coeff, out0);
  }
}

bool FillFastRowPair(SimdLevel level, const RowKernelSpec& spec,
                     const double* sx, const double* sy, const double* pw,
                     const double rx[2], const double ry[2],
                     const double coeff[2], std::size_t n, double* out0,
                     double* out1) {
  switch (ResolveSimdLevel(level)) {
#ifdef FADESCHED_SIMD_X86
    case SimdLevel::kAvx512:
      return Avx512Fill(spec, sx, sy, pw, n, rx[0], ry[0], coeff[0], out0,
                        /*pair=*/true, rx[1], ry[1], coeff[1], out1);
    case SimdLevel::kAvx2:
      return Avx2Fill(spec, sx, sy, pw, n, rx[0], ry[0], coeff[0], out0,
                      /*pair=*/true, rx[1], ry[1], coeff[1], out1);
#endif
    default: {
      const bool bad0 =
          ScalarFill(spec, sx, sy, pw, n, rx[0], ry[0], coeff[0], out0);
      const bool bad1 =
          ScalarFill(spec, sx, sy, pw, n, rx[1], ry[1], coeff[1], out1);
      return bad0 || bad1;
    }
  }
}

void StoreFence() {
#ifdef FADESCHED_SIMD_X86
  _mm_sfence();
#endif
}

}  // namespace fadesched::channel::simd
