#include "channel/interference.hpp"

#include <cmath>

#include "mathx/summation.hpp"
#include "util/check.hpp"

namespace fadesched::channel {

InterferenceCalculator::InterferenceCalculator(const net::LinkSet& links,
                                               const ChannelParams& params)
    : links_(&links), params_(params) {
  params_.Validate();
}

double InterferenceCalculator::Factor(net::LinkId interferer,
                                      net::LinkId victim) const {
  if (interferer == victim) return 0.0;
  const double d_ij =
      geom::Distance(links_->Sender(interferer), links_->Receiver(victim));
  FS_CHECK_MSG(d_ij > 0.0, "interfering sender coincides with victim receiver");
  const double d_jj = links_->Length(victim);
  // Heterogeneous transmit powers scale the interference-to-signal mean
  // ratio by P_i/P_j (both default to the channel-wide P).
  const double power_ratio =
      links_->EffectiveTxPower(interferer, params_.tx_power) /
      links_->EffectiveTxPower(victim, params_.tx_power);
  return std::log1p(params_.gamma_th * power_ratio *
                    std::pow(d_jj / d_ij, params_.alpha));
}

double InterferenceCalculator::FactorFromPoint(geom::Vec2 sender_pos,
                                               net::LinkId victim) const {
  // The hypothetical sender transmits at the channel default P; used by
  // the Knapsack reduction, which lives in the uniform-power model.
  const double d_ij = geom::Distance(sender_pos, links_->Receiver(victim));
  FS_CHECK_MSG(d_ij > 0.0, "interfering sender coincides with victim receiver");
  const double d_jj = links_->Length(victim);
  const double power_ratio =
      params_.tx_power / links_->EffectiveTxPower(victim, params_.tx_power);
  // ln(1 + γ_th (d_jj/d_ij)^α) via log1p for far interferers where the
  // argument underflows toward zero.
  return std::log1p(params_.gamma_th * power_ratio *
                    std::pow(d_jj / d_ij, params_.alpha));
}

double InterferenceCalculator::NoiseFactor(net::LinkId victim) const {
  if (params_.noise_power == 0.0) return 0.0;
  const double signal_mean =
      links_->EffectiveTxPower(victim, params_.tx_power) *
      std::pow(links_->Length(victim), -params_.alpha);
  return params_.gamma_th * params_.noise_power / signal_mean;
}

double InterferenceCalculator::SumFactor(std::span<const net::LinkId> schedule,
                                         net::LinkId victim) const {
  mathx::NeumaierSum sum;
  for (net::LinkId i : schedule) {
    if (i == victim) continue;
    sum.Add(Factor(i, victim));
  }
  return sum.Total();
}

InterferenceMatrix::InterferenceMatrix(const net::LinkSet& links,
                                       const ChannelParams& params)
    : n_(links.Size()), data_(n_ * n_, 0.0) {
  const InterferenceCalculator calc(links, params);  // validates params
  const ChannelParams& p = calc.Params();
  // Per-victim quantities (receiver position, own length, own power) are
  // hoisted out of the inner loop; the per-entry expression is otherwise
  // exactly InterferenceCalculator::Factor, so entries stay bit-identical
  // to the on-demand path.
  for (net::LinkId j = 0; j < n_; ++j) {
    const geom::Vec2 receiver = links.Receiver(j);
    const double d_jj = links.Length(j);
    const double victim_power = links.EffectiveTxPower(j, p.tx_power);
    double* row = &data_[j * n_];
    for (net::LinkId i = 0; i < n_; ++i) {
      if (i == j) continue;
      const double d_ij = geom::Distance(links.Sender(i), receiver);
      FS_CHECK_MSG(d_ij > 0.0,
                   "interfering sender coincides with victim receiver");
      const double power_ratio =
          links.EffectiveTxPower(i, p.tx_power) / victim_power;
      row[i] = std::log1p(p.gamma_th * power_ratio *
                          std::pow(d_jj / d_ij, p.alpha));
    }
  }
}

InterferenceMatrix::InterferenceMatrix(std::size_t n, FactorBuffer data,
                                       double cutoff_radius,
                                       double certified_slack)
    : n_(n),
      data_(std::move(data)),
      cutoff_radius_(cutoff_radius),
      certified_slack_(certified_slack) {
  FS_CHECK_MSG(data_.size() == n_ * n_,
               "matrix data size does not match n*n");
}

double InterferenceMatrix::SumFactor(std::span<const net::LinkId> schedule,
                                     net::LinkId victim) const {
  mathx::NeumaierSum sum;
  for (net::LinkId i : schedule) {
    if (i == victim) continue;
    FS_DCHECK(i < n_);
    sum.Add(Factor(i, victim));
  }
  return sum.Total();
}

}  // namespace fadesched::channel
