// Batched interference engine: per-link precomputed tables, a tiled
// (optionally ThreadPool-parallel) InterferenceMatrix builder, and an
// incremental per-receiver feasibility accumulator.
//
// Three exactness tiers, from reference to fastest:
//
//   kCalculator — every factor re-derived through InterferenceCalculator /
//                 DeterministicSinr, bit-identical to the original serial
//                 code path. The differential tests treat this as ground
//                 truth.
//   kTables     — O(N) per-link tables (d_jj^α, effective power, noise
//                 factor) turn each factor into one squared distance, one
//                 specialized power evaluation, one division, and one
//                 log1p — no hypot and no libm pow on the hot path for
//                 quarter-integer α. Values agree with kCalculator to a
//                 few ULP; the differential suite pins schedule-level
//                 equality on all schedulers.
//   kMatrix     — the kTables kernel materialized into a dense N×N matrix
//                 by a row-blocked tiled build, parallel across a
//                 ThreadPool when one is supplied. Queries are loads.
//
// The kMatrix build has an opt-in *precision ladder*
// (EngineOptions::ladder): tiles are filled by the runtime-dispatched
// SIMD kernel in channel/simd_kernel (AVX-512 / AVX2 / scalar), entries
// the fast expression cannot certify (non-finite lanes, verification
// misses outside the configured ULP band, rows whose Neumaier re-sum
// drifts) are *promoted* — recomputed through the exact kTables kernel —
// and the promotion counts are surfaced via InterferenceEngine::Ladder().
// With the ladder off (the default) the build is the exact tile loop,
// bit-identical to prior releases.
//
// The optional far-field cutoff (EngineOptions::cutoff_radius) skips
// matrix entries for senders farther than R from the victim's receiver
// and certifies the neglected mass: every skipped factor is bounded by
// f_cut(j) = ln(1 + γ_th·(P_max/P_j)·d_jj^α/R^α), so the per-victim error
// is at most (#skipped)·f_cut(j). The maximum over victims is surfaced as
// CertifiedSlack(); a feasibility test that accepts only when
// Σ_cutoff f ≤ γ_ε − slack is therefore sound. Off by default — exact
// paths stay bit-identical.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "channel/deterministic.hpp"
#include "channel/interference.hpp"
#include "channel/params.hpp"
#include "channel/simd_dispatch.hpp"
#include "net/link_set.hpp"
#include "util/check.hpp"

namespace fadesched::util {
class ThreadPool;
}
namespace fadesched::geom {
class SpatialHash;
}

namespace fadesched::channel {

/// Evaluates d² ↦ d^α. For quarter-integer α (covers every α the paper
/// and the benches sweep: 2.5, 3, 3.5, 4, …) the power is a multiply/sqrt
/// chain — several times cheaper than libm pow and accurate to ~2 ULP;
/// other exponents fall back to std::pow(d², α/2).
class HalfPowerKernel {
 public:
  explicit HalfPowerKernel(double alpha);

  [[nodiscard]] double DistPowAlpha(double squared_distance) const {
    if (generic_) return std::pow(squared_distance, half_alpha_);
    double result = squared_distance;
    for (int k = 1; k < whole_; ++k) result *= squared_distance;
    if (whole_ == 0) result = 1.0;
    if (use_sqrt_) result *= std::sqrt(squared_distance);
    if (use_quarter_) result *= std::sqrt(std::sqrt(squared_distance));
    return result;
  }

  [[nodiscard]] bool IsSpecialized() const { return !generic_; }

  /// Chain decomposition d^α = (d²)^WholeSteps · √d²^UsesSqrt · (d²)^¼^…,
  /// exposed so the SIMD row kernel can replicate the chain lane-wise.
  /// Meaningful only when IsSpecialized().
  [[nodiscard]] int WholeSteps() const { return whole_; }
  [[nodiscard]] bool UsesSqrt() const { return use_sqrt_; }
  [[nodiscard]] bool UsesQuarter() const { return use_quarter_; }

 private:
  double half_alpha_ = 0.0;  ///< α/2 — the exponent applied to d²
  int whole_ = 0;            ///< ⌊α/2⌋ integer multiplications
  bool use_sqrt_ = false;    ///< × √d²   (half step)
  bool use_quarter_ = false; ///< × d²^¼  (quarter step)
  bool generic_ = false;     ///< fall back to std::pow
};

/// How schedulers obtain interference factors.
enum class FactorBackend {
  kCalculator,  ///< re-derive every factor (reference; original code path)
  kTables,      ///< precomputed per-link tables, factors on the fly (default)
  kMatrix,      ///< materialized N×N matrix built tiled (optionally parallel)
};

class InterferenceEngine;

/// Opt-in fast kMatrix build with verified precision (the "ladder"): the
/// vectorized fast kernel fills the matrix, then ascending verification
/// rungs promote any entry it cannot certify back to the exact kTables
/// expression. Rungs, cheapest first:
///
///   1. domain   — non-finite fast entries (coincident positions, d^α
///                 overflow at extreme geometry) are always recomputed
///                 exactly; coincident positions therefore raise the same
///                 FS_CHECK as the exact build.
///   2. entry    — a seeded sample (or, under kFull, every entry) is
///                 recomputed in the exact expression; entries beyond
///                 `ulp_band` ULP are promoted.
///   3. row      — `verify_rows` whole rows are re-summed with Neumaier
///                 compensation in the exact expression; a row whose sum
///                 drifts beyond the band-scaled tolerance is rewritten
///                 exactly.
///
/// Applies to kMatrix only. Builds with a cutoff radius or a generic
/// (non-quarter-integer) α fall back to the exact tile loop and report
/// why via LadderStats::fallback_reason.
struct PrecisionLadderOptions {
  bool enabled = false;

  /// Post-build verification depth for the entry rung.
  enum class Verify { kOff, kSampled, kFull };
  Verify verify = Verify::kSampled;

  /// Promotion threshold: fast entries farther than this many ULP from
  /// the exact expression are recomputed exactly. 16 matches the repo's
  /// cross-backend accuracy contract.
  std::uint64_t ulp_band = 16;

  std::size_t verify_samples = 4096;  ///< entry rung sample count (kSampled)
  std::size_t verify_rows = 8;        ///< row rung: rows re-summed exactly
  std::uint64_t verify_seed = 0x9e3779b97f4a7c15ull;  ///< sampling stream

  /// Pins the SIMD tier (tests run fast-vs-fast_scalar differentials in
  /// one process); kAuto defers to hardware + environment.
  SimdLevel force_level = SimdLevel::kAuto;

  friend bool operator==(const PrecisionLadderOptions&,
                         const PrecisionLadderOptions&) = default;
};

/// Observed outcome of one ladder build (InterferenceEngine::Ladder()).
struct LadderStats {
  bool active = false;  ///< fast build ran (vs. exact tile loop)
  SimdLevel level = SimdLevel::kScalar;  ///< resolved dispatch tier
  /// Why the fast build did not run (nullptr when it did): ladder
  /// disabled, cutoff enabled, generic alpha, or empty set.
  const char* fallback_reason = nullptr;
  std::size_t entries = 0;          ///< off-diagonal entries built fast
  std::size_t promoted_domain = 0;  ///< rung 1 promotions (non-finite)
  std::size_t promoted_verify = 0;  ///< rung 2 promotions (> ulp_band)
  std::size_t promoted_rows = 0;    ///< rung 3 rewrites
  std::size_t verified_entries = 0; ///< rung 2 entries checked
  std::size_t verified_rows = 0;    ///< rung 3 rows checked
  std::uint64_t max_verify_ulp = 0; ///< worst rung-2 distance observed
};

struct EngineOptions {
  FactorBackend backend = FactorBackend::kTables;

  /// Optional prebuilt engine (the serving cache's memoized state). A
  /// scheduler consults it through ObtainEngine(): when the engine was
  /// built over the *same* LinkSet object, the same channel parameters,
  /// and the same backend/cutoff/affectance configuration, it is reused
  /// and the O(N) table (or O(N²) matrix) build is skipped; any mismatch
  /// falls back to a fresh local build. Engine construction is
  /// deterministic, so reuse is bit-identical to rebuilding.
  std::shared_ptr<const InterferenceEngine> shared;

  /// Workers for the kMatrix tiled build; nullptr = build tiles serially.
  util::ThreadPool* pool = nullptr;

  /// Victim rows per build task (load-balancing grain of the tiled build).
  std::size_t tile_rows = 64;

  /// Far-field cutoff radius for materialized matrices; 0 disables (exact).
  double cutoff_radius = 0.0;

  /// kMatrix only: materialize the deterministic affectance a_ij instead of
  /// the Rayleigh factor f_ij = ln(1 + a_ij) (ApproxDiversity's quantity).
  bool affectance_matrix = false;

  /// kMatrix only: fast SIMD build with verified promotion (off = the
  /// exact tile loop, bit-identical to prior releases).
  PrecisionLadderOptions ladder;
};

/// Options for the standalone tiled InterferenceMatrix builder.
struct TiledBuildOptions {
  util::ThreadPool* pool = nullptr;  ///< nullptr = serial tiles
  std::size_t tile_rows = 64;
  double cutoff_radius = 0.0;        ///< 0 = exact
};

/// Row-blocked tiled build of the dense factor matrix using the kTables
/// kernel; parallel across `options.pool` when given. Agrees with the
/// serial InterferenceMatrix(links, params) to a few ULP per entry and is
/// deterministic for any thread count (tiles own disjoint rows).
InterferenceMatrix BuildInterferenceMatrixTiled(const net::LinkSet& links,
                                                const ChannelParams& params,
                                                const TiledBuildOptions& options = {});

class InterferenceEngine {
 public:
  /// Builds the per-link tables (O(N)) and, for kMatrix, the materialized
  /// matrix (O(N²/threads) wall clock). The LinkSet must outlive the engine.
  InterferenceEngine(const net::LinkSet& links, const ChannelParams& params,
                     EngineOptions options = {});

  /// Warm subset view (see MakeSubsetEngineView): an engine over
  /// `subset_links` — which must equal parent->Links().Subset(ids) — whose
  /// per-link tables are gathered from `parent` in O(|ids|) and whose
  /// kMatrix queries remap into the parent's materialized matrix instead
  /// of rebuilding O(|ids|²) factors. With the parent built by the exact
  /// tile loop (ladder off), every query is bit-identical to a cold
  /// engine built over `subset_links` with the same options; a laddered
  /// parent stays within the ladder's ULP band. `subset_links` must
  /// outlive the view; the parent is kept alive by the shared_ptr.
  InterferenceEngine(std::shared_ptr<const InterferenceEngine> parent,
                     const net::LinkSet& subset_links,
                     std::span<const net::LinkId> ids);

  [[nodiscard]] const net::LinkSet& Links() const { return *links_; }
  [[nodiscard]] const ChannelParams& Params() const { return calc_.Params(); }
  [[nodiscard]] FactorBackend Backend() const { return options_.backend; }
  [[nodiscard]] const EngineOptions& Options() const { return options_; }
  [[nodiscard]] std::size_t Size() const { return n_; }

  /// f_ij = ln(1 + a_ij) through the configured backend; 0 on the diagonal.
  [[nodiscard]] double Factor(net::LinkId interferer, net::LinkId victim) const;

  /// Deterministic affectance a_ij = γ_th·(P_i/P_j)·(d_jj/d_ij)^α through
  /// the configured backend; 0 on the diagonal.
  [[nodiscard]] double Affectance(net::LinkId interferer,
                                  net::LinkId victim) const;

  /// Precomputed noise factor γ_th·N₀/(P_j·d_jj^{-α}) — identical to both
  /// InterferenceCalculator::NoiseFactor and DeterministicSinr::
  /// NoiseAffectance, which share the formula.
  [[nodiscard]] double NoiseFactor(net::LinkId victim) const {
    return noise_factor_[victim];
  }

  /// Mean received power P_i·d(s_i, r_j)^{-α}; unlike Factor/Affectance the
  /// diagonal is meaningful (the victim's own signal mean). Used by the
  /// Monte-Carlo evaluator to batch its per-pair mean table.
  [[nodiscard]] double MeanRxPower(net::LinkId interferer,
                                   net::LinkId victim) const {
    const double d2 = SquaredSenderReceiverDistance(interferer, victim);
    FS_CHECK_MSG(d2 > 0.0, "sender coincides with a scheduled receiver");
    return power_[interferer] / kernel_.DistPowAlpha(d2);
  }

  /// Σ_{i∈schedule, i≠victim} f_i,victim with Neumaier compensation.
  [[nodiscard]] double SumFactor(std::span<const net::LinkId> schedule,
                                 net::LinkId victim) const;

  /// The materialized factor matrix, or nullptr unless backend == kMatrix
  /// with affectance_matrix == false.
  [[nodiscard]] const InterferenceMatrix* FactorMatrix() const {
    return factor_matrix_.get();
  }

  /// Certified bound on the per-victim interference mass neglected by the
  /// far-field cutoff (0 when the cutoff is off or nothing was skipped).
  [[nodiscard]] double CertifiedSlack() const { return certified_slack_; }

  /// What the precision ladder did during this engine's kMatrix build
  /// (all-zero / inactive for other backends or when the ladder is off).
  [[nodiscard]] const LadderStats& Ladder() const { return ladder_stats_; }

  /// True when this engine is a warm subset view over a parent engine.
  [[nodiscard]] bool IsSubsetView() const { return parent_ != nullptr; }

  /// The parent of a subset view (nullptr for a directly built engine).
  [[nodiscard]] const InterferenceEngine* Parent() const {
    return parent_.get();
  }

  /// Parent link id backing subset id `i` (valid only for subset views).
  [[nodiscard]] net::LinkId ParentId(net::LinkId i) const {
    return remap_[i];
  }

 private:
  friend class IncrementalFeasibility;
  friend InterferenceMatrix BuildInterferenceMatrixTiled(
      const net::LinkSet& links, const ChannelParams& params,
      const TiledBuildOptions& options);

  [[nodiscard]] double SquaredSenderReceiverDistance(net::LinkId i,
                                                     net::LinkId j) const {
    const double dx = sender_x_[i] - receiver_x_[j];
    const double dy = sender_y_[i] - receiver_y_[j];
    return dx * dx + dy * dy;
  }

  /// Table-driven affectance — the hot kernel all fast paths share.
  [[nodiscard]] double FastAffectance(net::LinkId i, net::LinkId j) const {
    const double d2 = SquaredSenderReceiverDistance(i, j);
    FS_CHECK_MSG(d2 > 0.0, "interfering sender coincides with victim receiver");
    return victim_coeff_[j] * power_[i] / kernel_.DistPowAlpha(d2);
  }

  /// Fills rows [row_begin, row_end) of the dense matrix for one tile and
  /// returns the tile's worst certified cutoff slack. `sender_index` is
  /// required iff the far-field cutoff is enabled.
  double FillTile(bool affectance, const geom::SpatialHash* sender_index,
                  std::size_t row_begin, std::size_t row_end,
                  double* data) const;

  /// Ladder rung 1: fills a tile with the SIMD fast kernel (rows paired
  /// for the AVX-512 register blocking), zeroes the diagonal, and promotes
  /// every non-finite fast entry through the exact expression. Returns the
  /// tile's promotion count.
  std::size_t FillFastTile(bool affectance, SimdLevel level,
                           std::size_t row_begin, std::size_t row_end,
                           double* data) const;

  /// Ladder rungs 2 and 3 (serial, deterministic): entry sampling and
  /// exact Neumaier row re-sums over the fast-built matrix; promotes in
  /// place and accumulates into `stats`.
  void VerifyLadder(bool affectance, double* data, LadderStats& stats) const;

  /// Runs the tiled build (serial or on options_.pool) and returns the
  /// matrix data plus the certified slack via out-parameter. With the
  /// precision ladder enabled (and eligible) tiles go through
  /// FillFastTile + VerifyLadder; `stats` records what happened.
  FactorBuffer BuildMatrixData(bool affectance, double& certified_slack,
                               LadderStats& stats) const;

  const net::LinkSet* links_;
  EngineOptions options_;
  InterferenceCalculator calc_;
  DeterministicSinr det_;
  HalfPowerKernel kernel_;
  std::size_t n_;

  // Structure-of-arrays tables (index = link id).
  std::vector<double> sender_x_, sender_y_;      // s_i
  std::vector<double> receiver_x_, receiver_y_;  // r_j
  std::vector<double> power_;        // effective transmit power P_i
  std::vector<double> victim_coeff_; // γ_th · d_jj^α / P_j
  std::vector<double> noise_factor_; // γ_th·N₀ / (P_j·d_jj^{-α})
  double max_power_ = 0.0;           // max effective power (cutoff bound)

  std::unique_ptr<InterferenceMatrix> factor_matrix_;
  FactorBuffer affectance_data_;  // kMatrix + affectance_matrix
  double certified_slack_ = 0.0;
  LadderStats ladder_stats_;

  // Subset-view state: the parent engine (kept alive) and the map from
  // this engine's link ids to the parent's. Empty for direct builds.
  std::shared_ptr<const InterferenceEngine> parent_;
  std::vector<net::LinkId> remap_;
};

/// Builds a warm subset view of `parent` over `subset_links` =
/// parent->Links().Subset(ids). O(|ids|) — no matrix rebuild. The view is
/// returned as a shared_ptr so it can ride EngineOptions::shared straight
/// into a scheduler: set `options.shared = view` with the view's own
/// Options() and pass `subset_links` to Scheduler::Schedule, and
/// ObtainEngine reuses the view instead of rebuilding factors per slot.
std::shared_ptr<const InterferenceEngine> MakeSubsetEngineView(
    std::shared_ptr<const InterferenceEngine> parent,
    const net::LinkSet& subset_links, std::span<const net::LinkId> ids);

/// Per-receiver Neumaier running sums of interference (Rayleigh factor or
/// deterministic affectance) from a dynamically maintained transmitter
/// set. Seeded with each receiver's noise factor, so Sum(j) is directly
/// comparable against γ_ε (or the affectance budget). Turns the
/// schedulers' per-pick O(N) factor recomputation into cached additions.
class IncrementalFeasibility {
 public:
  enum class Quantity { kFactor, kAffectance };

  explicit IncrementalFeasibility(const InterferenceEngine& engine,
                                  Quantity quantity = Quantity::kFactor);

  /// Adds link `interferer`'s sender contribution onto every receiver.
  void Add(net::LinkId interferer);

  /// Adds the contribution only onto receivers with alive[j] != 0 — the
  /// RLE contract: sums of eliminated receivers are never read again and
  /// become stale. Remove() after a gated Add only restores maintained
  /// receivers.
  void Add(net::LinkId interferer, std::span<const char> alive);

  /// Removes a previously added transmitter (compensated subtraction).
  void Remove(net::LinkId interferer);

  /// Noise factor + accumulated interference on `victim`.
  [[nodiscard]] double Sum(net::LinkId victim) const {
    return noise_[victim] + sum_[victim] + comp_[victim];
  }

  /// Sum(victim) if `extra` also transmitted — the schedulers' candidate
  /// test, without mutating state.
  [[nodiscard]] double SumWith(net::LinkId extra, net::LinkId victim) const;

  [[nodiscard]] std::span<const net::LinkId> Active() const { return active_; }

 private:
  [[nodiscard]] double Term(net::LinkId i, net::LinkId j) const;
  void AddTerm(net::LinkId j, double value);

  const InterferenceEngine* engine_;
  Quantity quantity_;
  std::span<const double> noise_;
  std::vector<double> sum_, comp_;  // Neumaier state per receiver
  std::vector<net::LinkId> active_;
};

/// The scheduler-side entry point for engine reuse: returns
/// `options.shared.get()` when that engine matches this exact (LinkSet
/// object, channel parameters, backend, cutoff, affectance) configuration;
/// otherwise constructs a fresh engine into `local` and returns that.
/// Identity of the LinkSet is by address — the serving cache hands the
/// scheduler the very LinkSet its memoized engine was built over, so a
/// pointer compare is both cheap and sound.
const InterferenceEngine& ObtainEngine(const net::LinkSet& links,
                                       const ChannelParams& params,
                                       const EngineOptions& options,
                                       std::optional<InterferenceEngine>& local);

}  // namespace fadesched::channel
