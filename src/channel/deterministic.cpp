#include "channel/deterministic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mathx/summation.hpp"
#include "util/check.hpp"

namespace fadesched::channel {

DeterministicSinr::DeterministicSinr(const net::LinkSet& links,
                                     const ChannelParams& params)
    : links_(&links), params_(params) {
  params_.Validate();
}

double DeterministicSinr::Affectance(net::LinkId interferer,
                                     net::LinkId victim) const {
  if (interferer == victim) return 0.0;
  const double d_ij =
      geom::Distance(links_->Sender(interferer), links_->Receiver(victim));
  FS_CHECK_MSG(d_ij > 0.0, "interfering sender coincides with victim receiver");
  const double d_jj = links_->Length(victim);
  const double power_ratio =
      links_->EffectiveTxPower(interferer, params_.tx_power) /
      links_->EffectiveTxPower(victim, params_.tx_power);
  return params_.gamma_th * power_ratio *
         std::pow(d_jj / d_ij, params_.alpha);
}

double DeterministicSinr::NoiseAffectance(net::LinkId victim) const {
  if (params_.noise_power == 0.0) return 0.0;
  const double signal_mean =
      links_->EffectiveTxPower(victim, params_.tx_power) *
      std::pow(links_->Length(victim), -params_.alpha);
  return params_.gamma_th * params_.noise_power / signal_mean;
}

double DeterministicSinr::SumAffectance(std::span<const net::LinkId> schedule,
                                        net::LinkId victim) const {
  mathx::NeumaierSum sum;
  for (net::LinkId i : schedule) {
    if (i == victim) continue;
    sum.Add(Affectance(i, victim));
  }
  return sum.Total();
}

double DeterministicSinr::MeanSinr(std::span<const net::LinkId> schedule,
                                   net::LinkId victim) const {
  const double affectance =
      NoiseAffectance(victim) + SumAffectance(schedule, victim);
  if (affectance == 0.0) return std::numeric_limits<double>::infinity();
  // SINR = P·d_jj^{-α} / (N₀ + Σ P·d_ij^{-α}) = γ_th / (a_noise + Σ a_ij).
  return params_.gamma_th / affectance;
}

bool DeterministicSinr::LinkDecodes(std::span<const net::LinkId> schedule,
                                    net::LinkId victim) const {
  return NoiseAffectance(victim) + SumAffectance(schedule, victim) <=
         1.0 + 1e-12;
}

bool DeterministicSinr::ScheduleIsFeasible(
    std::span<const net::LinkId> schedule) const {
  return std::all_of(schedule.begin(), schedule.end(), [&](net::LinkId j) {
    return LinkDecodes(schedule, j);
  });
}

}  // namespace fadesched::channel
