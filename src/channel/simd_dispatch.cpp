#include "channel/simd_dispatch.hpp"

#include <cstdlib>
#include <string>

namespace fadesched::channel {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
      return "auto";
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdLevel DetectSimdLevel() {
#if defined(__x86_64__) || defined(_M_X64)
  static const SimdLevel detected = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return SimdLevel::kAvx512;
    }
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return SimdLevel::kAvx2;
    }
    return SimdLevel::kScalar;
  }();
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ApplySimdEnv(SimdLevel hardware, const char* no_simd,
                       const char* level_cap) {
  SimdLevel level = hardware;
  if (level_cap != nullptr) {
    const std::string cap(level_cap);
    SimdLevel parsed = hardware;
    if (cap == "scalar") {
      parsed = SimdLevel::kScalar;
    } else if (cap == "avx2") {
      parsed = SimdLevel::kAvx2;
    } else if (cap == "avx512") {
      parsed = SimdLevel::kAvx512;
    }
    if (parsed < level) level = parsed;
  }
  if (no_simd != nullptr && no_simd[0] != '\0' &&
      std::string(no_simd) != "0") {
    level = SimdLevel::kScalar;
  }
  return level;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel active =
      ApplySimdEnv(DetectSimdLevel(), std::getenv("FADESCHED_NO_SIMD"),
                   std::getenv("FADESCHED_SIMD_LEVEL"));
  return active;
}

SimdLevel ResolveSimdLevel(SimdLevel requested) {
  if (requested == SimdLevel::kAuto) return ActiveSimdLevel();
  const SimdLevel hardware = DetectSimdLevel();
  return requested < hardware ? requested : hardware;
}

}  // namespace fadesched::channel
