// Channel model parameters shared by every algorithm and the simulator.
//
// The Rayleigh-fading model (paper §II): the power received at r_j from
// s_i is exponentially distributed with mean P·d_ij^{-α}. A link decodes
// iff SINR ≥ γ_th; it is *informed* iff Pr(SINR < γ_th) ≤ ε. Corollary 3.1
// turns that probabilistic test into the linear constraint
// Σ f_ij ≤ γ_ε = ln(1/(1-ε)).
#pragma once

namespace fadesched::channel {

/// Relative slack applied to feasibility thresholds so that analytically
/// tight constructions (e.g. the Knapsack reduction at Σw == W, whose
/// interference sum equals γ_ε exactly) are not rejected by floating-point
/// round-trip error. Physically meaningless: 1e-9 relative on ε.
inline constexpr double kFeasibilitySlack = 1e-9;

struct ChannelParams {
  double tx_power = 1.0;    ///< P — common transmit power
  double alpha = 3.0;       ///< α — path-loss exponent (> 2)
  double gamma_th = 1.0;    ///< γ_th — SINR decoding threshold
  double epsilon = 0.01;    ///< ε — acceptable outage probability

  /// N₀ — ambient noise power. The paper argues N₀ is negligible and sets
  /// it to 0 (Formula (8)); we support it exactly: with noise the success
  /// probability gains a factor exp(−γ_th·N₀/(P·d_jj^{-α})), i.e. every
  /// receiver pays a fixed "noise factor" out of its γ_ε budget.
  double noise_power = 0.0;

  /// γ_ε = ln(1/(1-ε)) (Corollary 3.1).
  [[nodiscard]] double GammaEpsilon() const;

  /// γ_ε with the numeric slack — the budget every feasibility comparison
  /// in the library tests against, so schedulers and checkers agree on
  /// boundary cases.
  [[nodiscard]] double FeasibilityBudget() const;

  /// Mean received power P·d^{-α} at distance d.
  [[nodiscard]] double MeanPower(double distance) const;

  /// Throws CheckFailure unless α > 2, 0 < ε < 1, γ_th > 0, P > 0.
  void Validate() const;

  /// Exact (bitwise-value) equality — the serving cache uses it to decide
  /// whether a memoized InterferenceEngine may stand in for a rebuild, so
  /// no tolerance is allowed.
  friend bool operator==(const ChannelParams& a, const ChannelParams& b) {
    return a.tx_power == b.tx_power && a.alpha == b.alpha &&
           a.gamma_th == b.gamma_th && a.epsilon == b.epsilon &&
           a.noise_power == b.noise_power;
  }
  friend bool operator!=(const ChannelParams& a, const ChannelParams& b) {
    return !(a == b);
  }
};

}  // namespace fadesched::channel
