// Graph-based (protocol) interference model — the classic abstraction the
// paper's related work (§VI-A) argues against: two links conflict iff
// either sender is within an interference range of the other's receiver,
// and any set of pairwise non-conflicting links is deemed schedulable.
// The model ignores accumulated far-field interference entirely, which is
// exactly why graph-model schedules break down under the (deterministic
// or fading) SINR models.
#pragma once

#include <span>

#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::channel {

struct GraphModelParams {
  /// Interference range as a multiple of the victim link's own length:
  /// sender s_i conflicts with receiver r_j iff
  /// d(s_i, r_j) < range_factor · d_jj. The conventional "protocol model"
  /// choice is a small constant ≥ 1.
  double range_factor = 2.0;
};

class GraphInterference {
 public:
  GraphInterference(const net::LinkSet& links, GraphModelParams params);

  [[nodiscard]] const net::LinkSet& Links() const { return *links_; }
  [[nodiscard]] const GraphModelParams& Params() const { return params_; }

  /// True iff links a and b conflict (either direction's sender is inside
  /// the other receiver's interference range). Symmetric by construction;
  /// a link never conflicts with itself.
  [[nodiscard]] bool Conflict(net::LinkId a, net::LinkId b) const;

  /// True iff the schedule is an independent set of the conflict graph.
  [[nodiscard]] bool ScheduleIsIndependent(
      std::span<const net::LinkId> schedule) const;

  /// Number of conflict-graph neighbours of `link` within the whole set.
  [[nodiscard]] std::size_t Degree(net::LinkId link) const;

 private:
  const net::LinkSet* links_;
  GraphModelParams params_;
};

}  // namespace fadesched::channel
