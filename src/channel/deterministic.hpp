// Deterministic (non-fading) SINR model — the feasibility rule the
// ApproxLogN [14] and ApproxDiversity [15] baselines are built on.
//
// Here the received power is taken to be exactly its mean P·d^{-α}, so a
// link decodes iff
//
//   d_jj^{-α} / Σ_{i∈P\j} d_ij^{-α} ≥ γ_th                 (SINR test)
//
// equivalently  Σ affectance a_ij ≤ 1  with  a_ij = γ_th (d_jj/d_ij)^α.
// Under actual Rayleigh fading such schedules fail with substantial
// probability — the paper's Fig. 5 measures exactly that gap.
#pragma once

#include <span>

#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::channel {

class DeterministicSinr {
 public:
  DeterministicSinr(const net::LinkSet& links, const ChannelParams& params);

  [[nodiscard]] const net::LinkSet& Links() const { return *links_; }
  [[nodiscard]] const ChannelParams& Params() const { return params_; }

  /// Affectance of link i's sender on link j: γ_th·(d_jj/d_ij)^α, 0 for i==j.
  [[nodiscard]] double Affectance(net::LinkId interferer,
                                  net::LinkId victim) const;

  /// Noise affectance γ_th·N₀/(P·d_jj^{-α}); with noise the decode test
  /// becomes NoiseAffectance + Σ affectance ≤ 1.
  [[nodiscard]] double NoiseAffectance(net::LinkId victim) const;

  /// Σ affectance from the schedule on `victim`.
  [[nodiscard]] double SumAffectance(std::span<const net::LinkId> schedule,
                                     net::LinkId victim) const;

  /// Mean-value SINR of `victim` under `schedule` (∞ if no interferer
  /// and no noise).
  [[nodiscard]] double MeanSinr(std::span<const net::LinkId> schedule,
                                net::LinkId victim) const;

  /// Deterministic decode test: SumAffectance ≤ 1 (⇔ mean SINR ≥ γ_th).
  [[nodiscard]] bool LinkDecodes(std::span<const net::LinkId> schedule,
                                 net::LinkId victim) const;

  /// All links decode under the deterministic model.
  [[nodiscard]] bool ScheduleIsFeasible(
      std::span<const net::LinkId> schedule) const;

 private:
  const net::LinkSet* links_;
  ChannelParams params_;
};

}  // namespace fadesched::channel
