// Fading-resistant feasibility (Corollary 3.1) and the exact success
// probability (Theorem 3.1).
//
// Because ln Pr(X_j ≥ γ_th) = −Σ f_ij, the closed-form probability is
// exp(−Σ f_ij): the feasibility threshold and the probability are two
// views of the same sum, which the tests cross-check against Monte-Carlo.
#pragma once

#include <span>
#include <vector>

#include "channel/interference.hpp"
#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::channel {

/// Exact Pr(X_victim ≥ γ_th) when `schedule` transmits (Theorem 3.1).
/// `victim` must be a member of `schedule`.
double SuccessProbability(const InterferenceCalculator& calc,
                          std::span<const net::LinkId> schedule,
                          net::LinkId victim);

/// True iff Σ_{i∈schedule\victim} f_i,victim ≤ γ_ε (Corollary 3.1).
bool LinkIsInformed(const InterferenceCalculator& calc,
                    std::span<const net::LinkId> schedule,
                    net::LinkId victim);

/// True iff *every* link of the schedule is informed — the paper's
/// definition of a feasible schedule.
bool ScheduleIsFeasible(const InterferenceCalculator& calc,
                        std::span<const net::LinkId> schedule);

/// Per-link report for diagnostics and examples.
struct LinkFeasibility {
  net::LinkId link = 0;
  double noise_factor = 0.0;     ///< γ_th·N₀/(P·d_jj^{-α}) (0 when N₀ = 0)
  double sum_factor = 0.0;       ///< Σ f_ij from the rest of the schedule
  double success_probability = 0.0;
  bool informed = false;          ///< noise_factor + sum_factor ≤ γ_ε
};
std::vector<LinkFeasibility> AnalyzeSchedule(
    const InterferenceCalculator& calc,
    std::span<const net::LinkId> schedule);

/// Total rate of informed links (the paper's throughput objective value
/// for a schedule, judged by the fading-resistant criterion).
double InformedRate(const InterferenceCalculator& calc,
                    std::span<const net::LinkId> schedule);

}  // namespace fadesched::channel
