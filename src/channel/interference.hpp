// Interference factors under the Rayleigh-fading model (Formula (17)):
//
//   f_ij = ln(1 + γ_th · (d_jj / d_ij)^α)   for i ≠ j,   f_jj = 0,
//
// where d_ij is the distance from sender s_i to receiver r_j and d_jj the
// victim's own link length. Corollary 3.1 reduces the probabilistic
// success test to Σ_{i∈P\j} f_ij ≤ γ_ε.
#pragma once

#include <span>
#include <vector>

#include "channel/params.hpp"
#include "net/link_set.hpp"
#include "util/page_recycler.hpp"

namespace fadesched::channel {

/// Backing storage for dense factor/affectance matrices. 64-byte aligned
/// so the vectorized builders can use cache-line streaming stores on
/// whole rows (glibc malloc only guarantees 16 bytes for large blocks),
/// recycled through util::PageRecycler so rebuilds of O(N²) matrices skip
/// the page-fault storm of a fresh mapping, and — via the allocator's
/// default-initializing construct() — NOT zero-filled by resize(): use
/// assign(n, 0.0) when a zero background is required.
using FactorBuffer =
    std::vector<double, util::RecyclingAlignedAllocator<double, 64>>;

/// Computes factors on demand from link geometry. Cheap to copy; holds a
/// reference to the LinkSet, which must outlive it.
class InterferenceCalculator {
 public:
  InterferenceCalculator(const net::LinkSet& links, const ChannelParams& params);

  [[nodiscard]] const net::LinkSet& Links() const { return *links_; }
  [[nodiscard]] const ChannelParams& Params() const { return params_; }

  /// f_ij — interference factor of link i's sender on link j's receiver.
  [[nodiscard]] double Factor(net::LinkId interferer, net::LinkId victim) const;

  /// Interference factor of an arbitrary sender position on link `victim`
  /// (used by the Knapsack reduction and tests).
  [[nodiscard]] double FactorFromPoint(geom::Vec2 sender_pos,
                                       net::LinkId victim) const;

  /// Σ_{i∈schedule, i≠victim} f_i,victim with compensated summation.
  [[nodiscard]] double SumFactor(std::span<const net::LinkId> schedule,
                                 net::LinkId victim) const;

  /// Noise factor γ_th·N₀/(P·d_jj^{-α}) — the fixed part of the victim's
  /// γ_ε budget consumed by ambient noise (0 when noise_power is 0, the
  /// paper's setting). A link with NoiseFactor > γ_ε can never be informed,
  /// even transmitting alone.
  [[nodiscard]] double NoiseFactor(net::LinkId victim) const;

 private:
  const net::LinkSet* links_;
  ChannelParams params_;
};

/// Dense N×N factor matrix (row = victim j, col = interferer i). Memory is
/// O(N²); intended for schedulers that query factors repeatedly on
/// moderate N (the exact solvers, DLS rounds, feasibility sweeps).
class InterferenceMatrix {
 public:
  /// Serial build, bit-identical to InterferenceCalculator::Factor (the
  /// scalar baseline the microbenchmarks compare against). For the tiled
  /// ThreadPool-parallel build see BuildInterferenceMatrixTiled in
  /// batch_interference.hpp.
  InterferenceMatrix(const net::LinkSet& links, const ChannelParams& params);

  /// Wraps externally built factor data (row-major, victim-major, n*n
  /// entries) — the constructor the batched builders feed. When built
  /// under a far-field cutoff, entries beyond `cutoff_radius` are 0 and
  /// `certified_slack` bounds the per-victim mass neglected that way.
  InterferenceMatrix(std::size_t n, FactorBuffer data,
                     double cutoff_radius = 0.0, double certified_slack = 0.0);

  [[nodiscard]] std::size_t Size() const { return n_; }
  [[nodiscard]] double Factor(net::LinkId interferer, net::LinkId victim) const {
    return data_[victim * n_ + interferer];
  }
  [[nodiscard]] double SumFactor(std::span<const net::LinkId> schedule,
                                 net::LinkId victim) const;

  /// Far-field cutoff radius this matrix was built with (0 = exact).
  [[nodiscard]] double CutoffRadius() const { return cutoff_radius_; }

  /// Certified upper bound on Σ of the entries zeroed by the cutoff for
  /// any single victim (0 for exact builds).
  [[nodiscard]] double CertifiedSlack() const { return certified_slack_; }

 private:
  std::size_t n_;
  FactorBuffer data_;
  double cutoff_radius_ = 0.0;
  double certified_slack_ = 0.0;
};

}  // namespace fadesched::channel
