// xoshiro256++ 1.0 (Blackman & Vigna) with Jump()/LongJump() for
// constructing statistically independent parallel streams.
//
// We carry our own generator (rather than std::mt19937_64) so that
// simulation results are bit-reproducible across standard libraries and so
// that per-thread streams can be split deterministically.
#pragma once

#include <array>
#include <cstdint>

namespace fadesched::rng {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64 on `seed`.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t Next();

  // UniformRandomBitGenerator interface so std distributions also work.
  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Advances the state by 2^128 draws (for up to 2^128 parallel streams).
  void Jump();

  /// Advances the state by 2^192 draws (for hierarchies of stream groups).
  void LongJump();

  /// Returns a copy jumped `stream_index + 1` times past *this — a cheap
  /// way to derive the i-th independent stream from a master generator.
  [[nodiscard]] Xoshiro256 Split(unsigned stream_index) const;

  [[nodiscard]] std::array<std::uint64_t, 4> State() const { return state_; }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace fadesched::rng
