#include "rng/xoshiro256.hpp"

#include "rng/splitmix64.hpp"

namespace fadesched::rng {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.Next();
}

std::uint64_t Xoshiro256::Next() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

void Xoshiro256::Jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      Next();
    }
  }
  state_ = acc;
}

void Xoshiro256::LongJump() {
  static constexpr std::uint64_t kLongJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kLongJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      Next();
    }
  }
  state_ = acc;
}

Xoshiro256 Xoshiro256::Split(unsigned stream_index) const {
  Xoshiro256 child = *this;
  for (unsigned i = 0; i <= stream_index; ++i) child.Jump();
  return child;
}

}  // namespace fadesched::rng
