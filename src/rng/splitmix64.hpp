// SplitMix64 (Steele, Lea & Flood) — used only to expand user seeds into
// the 256-bit state of xoshiro256++, per the xoshiro authors' guidance.
#pragma once

#include <cstdint>

namespace fadesched::rng {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // UniformRandomBitGenerator interface.
  constexpr std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  std::uint64_t state_;
};

}  // namespace fadesched::rng
