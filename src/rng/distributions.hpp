// Deterministic distribution kernels on top of any 64-bit generator.
//
// All transforms use inverse-CDF sampling so that a fixed draw sequence
// yields identical variates on every platform (std:: distributions are
// implementation-defined).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/check.hpp"

namespace fadesched::rng {

/// Uniform double in [0, 1): top 53 bits of a 64-bit draw.
template <typename Gen>
double UniformUnit(Gen& gen) {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
template <typename Gen>
double UniformRange(Gen& gen, double lo, double hi) {
  FS_DCHECK(lo <= hi);
  return lo + (hi - lo) * UniformUnit(gen);
}

/// Unbiased uniform integer in [0, bound) via modulo rejection.
template <typename Gen>
std::uint64_t UniformIndex(Gen& gen, std::uint64_t bound) {
  FS_DCHECK(bound > 0);
  // Reject draws below 2^64 mod bound so every residue is equally likely.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t draw = gen();
    if (draw >= threshold) return draw % bound;
  }
}

/// Exponential with the given mean (inverse-CDF; avoids log(0)).
template <typename Gen>
double Exponential(Gen& gen, double mean) {
  FS_DCHECK(mean > 0);
  // 1 - U is in (0, 1], so the log argument never hits zero.
  return -mean * std::log1p(-UniformUnit(gen));
}

/// Rayleigh *amplitude* with scale sigma; its square is Exponential(2σ²).
/// The fading channel uses powers (exponential), but the amplitude form is
/// exposed for signal-level traces and tests.
template <typename Gen>
double RayleighAmplitude(Gen& gen, double sigma) {
  FS_DCHECK(sigma > 0);
  return sigma * std::sqrt(-2.0 * std::log1p(-UniformUnit(gen)));
}

/// Standard normal via Box–Muller on two independent uniforms.
template <typename Gen>
double StandardNormal(Gen& gen) {
  const double u1 = 1.0 - UniformUnit(gen);  // (0, 1]
  const double u2 = UniformUnit(gen);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

/// Gamma(shape k, scale θ) via Marsaglia–Tsang squeeze (with the k < 1
/// boost). Mean = k·θ. Used by the Nakagami-m fading model, whose power
/// gain is Gamma(m, mean/m).
template <typename Gen>
double GammaSample(Gen& gen, double shape, double scale) {
  FS_DCHECK(shape > 0 && scale > 0);
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) · U^{1/k}.
    const double boosted = GammaSample(gen, shape + 1.0, 1.0);
    const double u = 1.0 - UniformUnit(gen);  // (0, 1]
    return scale * boosted * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = StandardNormal(gen);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - UniformUnit(gen);  // (0, 1]
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return scale * d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

}  // namespace fadesched::rng
