// fadesched_cli — command-line front end for the library.
//
//   fadesched_cli generate --type uniform --links 300 --seed 1 --out l.csv
//   fadesched_cli info     --in l.csv
//   fadesched_cli solve    --in l.csv --algorithm rle [--alpha 3] [--slots]
//   fadesched_cli simulate --in l.csv --algorithm rle --trials 10000
//   fadesched_cli fault-inject --in l.csv --drop 0.3 --crash-fraction 0.1
//   fadesched_cli ilp      --in l.csv --out problem.lp
//   fadesched_cli sweep    --x links --xs 100,200,300 --algorithms ldp,rle
//                              [--checkpoint sweep.ck --resume] --out sweep.csv
//   fadesched_cli queue-sim --algorithms ldp,rle --rates 0.01,0.02
//                              [--frontier] [--churn] [--checkpoint qs.ck]
//   fadesched_cli fuzz     --seed 1 --iters 2000 [--corpus-dir repros]
//                              [--dynamic]
//   fadesched_cli serve    --unix /tmp/fs.sock --workers 4 [--metrics-out m.json]
//   fadesched_cli supervise --unix /tmp/fs.sock --workers 3 --chaos-kills 5
//   fadesched_cli loadgen  --unix /tmp/fs.sock --requests 1000 --connections 4
//   fadesched_cli chaos-soak --seed 7 --requests 10000 --fault-prob 0.02
//
// Every subcommand accepts --help.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 when a
// watchdog deadline fired or the run was interrupted (SIGINT/SIGTERM
// after checkpointing).
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <algorithm>

#include "core/fadesched.hpp"
#include "distsim/dls_protocol.hpp"
#include "dynamics/slotted_sim.hpp"
#include "dynamics/stability.hpp"
#include "mathx/stats.hpp"
#include "multislot/multislot.hpp"
#include "rng/distributions.hpp"
#include "sched/feedback.hpp"
#include "sched/ilp_export.hpp"
#include "service/chaos/soak.hpp"
#include "service/client.hpp"
#include "service/loadgen.hpp"
#include "service/server.hpp"
#include "service/shard/shard_server.hpp"
#include "service/supervisor.hpp"
#include "sim/checkpoint.hpp"
#include "sim/sweep.hpp"
#include "testing/dyn_fuzzer.hpp"
#include "testing/fuzz_driver.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/signal_guard.hpp"
#include "util/string_util.hpp"

namespace {

using namespace fadesched;

void AddChannelFlags(util::CliParser& cli, double*& alpha, double*& epsilon,
                     double*& gamma_th, double*& noise) {
  alpha = &cli.AddDouble("alpha", 3.0, "path-loss exponent (> 2)");
  epsilon = &cli.AddDouble("epsilon", 0.01, "acceptable outage probability");
  gamma_th = &cli.AddDouble("gamma-th", 1.0, "SINR decoding threshold");
  noise = &cli.AddDouble("noise", 0.0, "ambient noise power N0 (0 = paper)");
}

channel::ChannelParams MakeChannel(double alpha, double epsilon,
                                   double gamma_th, double noise) {
  channel::ChannelParams params;
  params.alpha = alpha;
  params.epsilon = epsilon;
  params.gamma_th = gamma_th;
  params.noise_power = noise;
  params.Validate();
  return params;
}

int RunGenerate(int argc, char** argv) {
  util::CliParser cli("fadesched_cli generate", "write a scenario CSV");
  auto& type = cli.AddString("type", "uniform",
                             "uniform | clustered | weighted | diverse");
  auto& links = cli.AddInt("links", 300, "number of links");
  auto& seed = cli.AddInt("seed", 1, "generator seed");
  auto& region = cli.AddDouble("region", 500.0, "deployment square side");
  auto& out = cli.AddString("out", "links.csv", "output path");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
  net::LinkSet result;
  const auto n = static_cast<std::size_t>(links);
  if (type == "uniform") {
    net::UniformScenarioParams p;
    p.region_size = region;
    result = net::MakeUniformScenario(n, p, gen);
  } else if (type == "clustered") {
    net::ClusteredScenarioParams p;
    p.region_size = region;
    result = net::MakeClusteredScenario(n, p, gen);
  } else if (type == "weighted") {
    net::WeightedScenarioParams p;
    p.base.region_size = region;
    result = net::MakeWeightedScenario(n, p, gen);
  } else if (type == "diverse") {
    net::DiverseLengthScenarioParams p;
    p.region_size = region;
    result = net::MakeDiverseLengthScenario(n, p, gen);
  } else {
    std::fprintf(stderr, "unknown --type '%s'\n", type.c_str());
    return 1;
  }
  net::SaveLinkSet(result, out);
  std::printf("wrote %zu links to %s\n", result.Size(), out.c_str());
  return 0;
}

int RunInfo(int argc, char** argv) {
  util::CliParser cli("fadesched_cli info", "topology statistics");
  auto& in = cli.AddString("in", "links.csv", "scenario CSV");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();
  const net::LinkSet links = net::LoadLinkSet(in);
  FS_CHECK_MSG(!links.Empty(), "scenario is empty");
  const geom::Aabb box = links.BoundingBox();
  std::printf("links:            %zu\n", links.Size());
  std::printf("bounding box:     [%.1f, %.1f] x [%.1f, %.1f]\n", box.lo.x,
              box.hi.x, box.lo.y, box.hi.y);
  std::printf("link lengths:     [%.2f, %.2f]\n", links.MinLength(),
              links.MaxLength());
  std::printf("length diversity: g(L) = %zu\n", net::LengthDiversity(links));
  std::printf("uniform rates:    %s\n",
              links.HasUniformRates() ? "yes" : "no");
  if (links.Size() <= 2000) {
    std::printf("distance ratio:   Delta = %.1f\n", net::DistanceRatio(links));
  }
  return 0;
}

int RunSolve(int argc, char** argv) {
  util::CliParser cli("fadesched_cli solve", "schedule one slot (or a frame)");
  auto& in = cli.AddString("in", "links.csv", "scenario CSV");
  auto& algorithm = cli.AddString("algorithm", "rle",
                                  "scheduler name (see `list`)");
  auto& slots = cli.AddBool("slots", false,
                            "schedule ALL links across multiple slots");
  double *alpha, *epsilon, *gamma_th, *noise;
  AddChannelFlags(cli, alpha, epsilon, gamma_th, noise);
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  const net::LinkSet links = net::LoadLinkSet(in);
  const auto params = MakeChannel(*alpha, *epsilon, *gamma_th, *noise);
  if (slots) {
    const multislot::Frame frame =
        multislot::ScheduleAllLinks(links, params, algorithm);
    std::printf("frame: %zu slots for %zu links (%s)\n", frame.NumSlots(),
                links.Size(), algorithm.c_str());
    std::printf("rate-weighted completion slot: %.2f\n",
                frame.RateWeightedCompletion(links));
    std::printf("all slots fading-feasible: %s\n",
                multislot::FrameIsValid(links, params, frame) ? "yes" : "no");
    for (std::size_t s = 0; s < frame.NumSlots() && s < 10; ++s) {
      std::printf("  slot %zu: %zu links\n", s + 1, frame.slots[s].size());
    }
    if (frame.NumSlots() > 10) std::printf("  ...\n");
    return 0;
  }
  const core::Problem problem(links, params);
  const core::Solution solution = problem.Solve(algorithm);
  std::printf("algorithm:             %s\n", solution.algorithm.c_str());
  std::printf("links scheduled:       %zu / %zu\n", solution.schedule.size(),
              links.Size());
  std::printf("claimed rate:          %.3f\n", solution.claimed_rate);
  std::printf("fading feasible:       %s\n",
              solution.fading_feasible ? "yes" : "no");
  std::printf("expected throughput:   %.3f\n", solution.expected_throughput);
  std::printf("expected failures:     %.4f\n", solution.expected_failed);
  std::printf("min success prob:      %.4f\n",
              solution.min_success_probability);
  std::printf("schedule:");
  for (net::LinkId id : solution.schedule) {
    std::printf(" %zu", id);
  }
  std::printf("\n");
  return 0;
}

int RunSimulate(int argc, char** argv) {
  util::CliParser cli("fadesched_cli simulate",
                      "Monte-Carlo fading simulation of a schedule");
  auto& in = cli.AddString("in", "links.csv", "scenario CSV");
  auto& algorithm = cli.AddString("algorithm", "rle", "scheduler name");
  auto& trials = cli.AddInt("trials", 10000, "fading realizations");
  auto& sim_seed = cli.AddInt("sim-seed", 42, "simulator seed");
  auto& threads = cli.AddInt("threads", 0, "simulator threads (0 = hw)");
  auto& deadline = cli.AddDouble(
      "deadline", 0.0, "watchdog deadline in seconds (0 = unlimited)");
  double *alpha, *epsilon, *gamma_th, *noise;
  AddChannelFlags(cli, alpha, epsilon, gamma_th, noise);
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  const net::LinkSet links = net::LoadLinkSet(in);
  const auto params = MakeChannel(*alpha, *epsilon, *gamma_th, *noise);
  const core::Problem problem(links, params);
  const core::Solution solution = problem.Solve(algorithm);

  sim::SimOptions options;
  options.trials = static_cast<std::size_t>(trials);
  options.seed = static_cast<std::uint64_t>(sim_seed);
  options.threads = threads <= 0 ? 0 : static_cast<unsigned>(threads);
  options.deadline = util::Deadline::After(deadline);
  const sim::SimResult result =
      sim::SimulateSchedule(links, params, solution.schedule, options);

  std::printf("schedule (%s): %zu links, claimed %.3f\n",
              algorithm.c_str(), solution.schedule.size(),
              solution.claimed_rate);
  std::printf("measured throughput:  %.4f ± %.4f (95%% CI)\n",
              result.throughput_per_trial.Mean(),
              result.throughput_per_trial.ConfidenceHalfWidth95());
  std::printf("expected throughput:  %.4f (closed form)\n",
              solution.expected_throughput);
  std::printf("measured failures:    %.4f ± %.4f per slot\n",
              result.failed_per_trial.Mean(),
              result.failed_per_trial.ConfidenceHalfWidth95());
  std::printf("expected failures:    %.4f (closed form)\n",
              solution.expected_failed);
  return 0;
}

int RunFaultInject(int argc, char** argv) {
  util::CliParser cli(
      "fadesched_cli fault-inject",
      "run the distributed DLS protocol under control-plane faults");
  auto& in = cli.AddString("in", "links.csv", "scenario CSV");
  auto& drop = cli.AddDouble("drop", 0.0, "per-beacon drop probability");
  auto& crash_fraction =
      cli.AddDouble("crash-fraction", 0.0, "fraction of agents that crash");
  auto& outage = cli.AddDouble(
      "outage", 0.0, "crash outage in seconds (<= 0 = permanent)");
  auto& radius_shrink = cli.AddDouble(
      "radius-shrink", 0.0, "broadcast-radius loss per round (fading)");
  auto& jitter = cli.AddDouble("jitter", 0.0, "max timer jitter (seconds)");
  auto& fault_seed = cli.AddInt("fault-seed", 1, "fault stream seed");
  auto& retry = cli.AddBool(
      "retry", false, "run the feedback retry layer on the survivors");
  auto& max_attempts =
      cli.AddInt("max-attempts", 8, "retry attempts before blacklisting");
  double *alpha, *epsilon, *gamma_th, *noise;
  AddChannelFlags(cli, alpha, epsilon, gamma_th, noise);
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  const net::LinkSet links = net::LoadLinkSet(in);
  const auto params = MakeChannel(*alpha, *epsilon, *gamma_th, *noise);

  distsim::DlsProtocolOptions options;
  options.fault.drop_probability = drop;
  options.fault.radius_shrink_per_round = radius_shrink;
  options.fault.timer_jitter = jitter;
  options.fault.seed = static_cast<std::uint64_t>(fault_seed);
  const double horizon =
      (options.contention_rounds + options.resolution_rounds + 1.0) *
      options.round_duration;
  options.fault.crashes = distsim::SampleCrashWindows(
      links.Size(), crash_fraction, horizon, outage,
      static_cast<std::uint64_t>(fault_seed) * 977);

  const auto result = distsim::RunDlsProtocol(links, params, options);
  std::printf("links scheduled:        %zu / %zu\n", result.schedule.size(),
              links.Size());
  std::printf("beacons sent:           %llu\n",
              static_cast<unsigned long long>(result.sim_stats.messages_sent));
  std::printf("beacons lost:           %llu (%.1f%%)\n",
              static_cast<unsigned long long>(result.beacons_lost),
              result.sim_stats.messages_sent == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(result.beacons_lost) /
                        static_cast<double>(result.sim_stats.messages_sent));
  std::printf("agents crashed:         %zu\n", result.agents_crashed);
  std::printf("agents silent-pruned:   %zu\n", result.agents_silent_pruned);
  std::printf("residual violation rate: %.4f\n",
              result.residual_violation_rate);

  if (retry) {
    sched::FeedbackOptions fb_options;
    fb_options.max_attempts = static_cast<std::uint32_t>(max_attempts);
    const auto fb =
        sched::RunFeedbackSchedule(links, params, result.schedule, fb_options);
    std::printf("retry delivered:        %zu / %zu links (rate fraction "
                "%.3f)\n", fb.delivered_links, result.schedule.size(),
                fb.delivered_rate_fraction);
    std::printf("retry blacklisted:      %zu\n", fb.blacklisted_links);
    std::printf("retry slots used:       %zu\n", fb.slots_used);
    if (fb.delay_slots.Count() > 0) {
      std::printf("delivery delay (slots): mean %.2f, max %.0f\n",
                  fb.delay_slots.Mean(), fb.delay_slots.Max());
    }
  }
  return 0;
}

int RunIlp(int argc, char** argv) {
  util::CliParser cli("fadesched_cli ilp",
                      "export the instance as a CPLEX-LP integer program");
  auto& in = cli.AddString("in", "links.csv", "scenario CSV");
  auto& out = cli.AddString("out", "problem.lp", "LP output path");
  double *alpha, *epsilon, *gamma_th, *noise;
  AddChannelFlags(cli, alpha, epsilon, gamma_th, noise);
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();
  const net::LinkSet links = net::LoadLinkSet(in);
  const auto params = MakeChannel(*alpha, *epsilon, *gamma_th, *noise);
  sched::WriteIlpFile(links, params, out);
  std::printf("wrote ILP (%zu binaries) to %s\n", links.Size(), out.c_str());
  return 0;
}

int RunSweep(int argc, char** argv) {
  util::CliParser cli(
      "fadesched_cli sweep",
      "crash-safe experiment sweep with checkpoint/resume");
  auto& x_kind = cli.AddString("x", "links",
                               "swept variable: links | alpha");
  auto& xs_text = cli.AddString("xs", "100,200,300,400,500",
                                "comma-separated x values");
  auto& algorithms_text =
      cli.AddString("algorithms", "ldp,rle", "comma-separated schedulers");
  auto& seeds = cli.AddInt("seeds", 5, "topologies per point");
  auto& trials = cli.AddInt("trials", 1000, "fading realizations per seed");
  auto& threads = cli.AddInt("threads", 0, "simulator threads (0 = hw)");
  auto& base_seed = cli.AddInt("base-seed", 1, "first topology seed");
  auto& num_links = cli.AddInt(
      "links", 300, "links per topology (when sweeping alpha)");
  auto& checkpoint = cli.AddString(
      "checkpoint", "", "checkpoint file (enables crash-safe resume)");
  auto& resume = cli.AddBool("resume", false,
                             "resume from --checkpoint if it exists");
  auto& keep = cli.AddBool("keep-checkpoint", false,
                           "keep the checkpoint after success");
  auto& out = cli.AddString("out", "", "write the CSV here (atomic)");
  auto& seed_deadline = cli.AddDouble(
      "seed-deadline", 0.0, "per-seed watchdog deadline (seconds; 0 = off)");
  auto& retries =
      cli.AddInt("retries", 1, "retries per seed for transient failures");
  auto& deterministic = cli.AddBool(
      "deterministic", false,
      "record sched_ms as 0 so reruns produce byte-identical CSV");
  auto& crash_after = cli.AddInt(
      "crash-after-point", -1,
      "fault drill: SIGKILL this process after point N checkpoints");
  double *alpha, *epsilon, *gamma_th, *noise;
  AddChannelFlags(cli, alpha, epsilon, gamma_th, noise);
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  FS_CHECK_MSG(x_kind == "links" || x_kind == "alpha",
               "--x must be 'links' or 'alpha'");
  std::vector<double> xs;
  for (const std::string& token : util::Split(xs_text, ',')) {
    const auto value = util::ParseDouble(util::Trim(token));
    FS_CHECK_MSG(value.has_value(), "malformed --xs value: '" + token + "'");
    xs.push_back(*value);
  }

  sim::SweepSpec spec;
  spec.name = "fadesched_cli sweep --x " + x_kind;
  spec.x_name = x_kind == "links" ? "num_links" : "alpha";
  spec.xs = xs;
  const auto base_params = MakeChannel(*alpha, *epsilon, *gamma_th, *noise);
  const auto fixed_links = static_cast<std::size_t>(num_links);
  const bool sweep_links = x_kind == "links";
  spec.make_point = [base_params, fixed_links, sweep_links](double x) {
    sim::ExperimentPoint point;
    point.channel = base_params;
    if (sweep_links) {
      point.num_links = static_cast<std::size_t>(x);
    } else {
      point.num_links = fixed_links;
      point.channel.alpha = x;
    }
    return point;
  };

  sim::SweepOptions options;
  for (const std::string& token : util::Split(algorithms_text, ',')) {
    options.config.algorithms.emplace_back(util::Trim(token));
  }
  options.config.num_seeds = static_cast<std::size_t>(seeds);
  options.config.base_seed = static_cast<std::uint64_t>(base_seed);
  options.config.trials = static_cast<std::size_t>(trials);
  options.config.threads =
      threads <= 0 ? 0u : static_cast<unsigned>(threads);
  options.retry.max_attempts = static_cast<std::size_t>(retries) + 1;
  options.retry.seed_deadline_seconds = seed_deadline;
  options.checkpoint_path = checkpoint;
  options.resume = resume;
  options.keep_checkpoint = keep;
  options.out_path = out;
  options.deterministic = deterministic;
  if (crash_after >= 0) {
    const auto crash_point = static_cast<std::size_t>(crash_after);
    options.after_checkpoint = [crash_point](std::size_t point,
                                             std::size_t /*seeds_done*/,
                                             bool complete) {
      if (complete && point == crash_point) {
        std::fprintf(stderr, "[drill] SIGKILL after point %zu checkpoint\n",
                     point);
        std::raise(SIGKILL);
      }
    };
  }

  const sim::SweepResult result = sim::RunExperimentSweep(spec, options);
  std::fputs(result.table.ToString().c_str(), stdout);
  if (result.failed_seeds > 0) {
    std::fprintf(stderr, "warning: %zu seed(s) failed (%zu timed out)\n",
                 result.failed_seeds, result.timed_out_seeds);
  }
  if (result.interrupted) {
    std::fprintf(stderr, "interrupted: %zu/%zu points complete\n",
                 result.points_completed, result.points_total);
  }
  return result.ExitCode();
}

int RunFuzzCmd(int argc, char** argv) {
  util::CliParser cli("fadesched_cli fuzz",
                      "seed-driven metamorphic fuzzing of every scheduler");
  auto& seed = cli.AddInt("seed", 1, "fuzzer seed (case = f(seed, index))");
  auto& iters = cli.AddInt("iters", 2000, "number of generated instances");
  auto& min_links = cli.AddInt("min-links", 2, "smallest instance size");
  auto& max_links = cli.AddInt("max-links", 24, "largest instance size");
  auto& check = cli.AddBool(
      "check", true, "run oracle/metamorphic checks (false = generate only)");
  auto& shrink = cli.AddBool("shrink", true, "ddmin-shrink failing instances");
  auto& corpus_dir = cli.AddString(
      "corpus-dir", "", "write shrunk .scenario reproducers here");
  auto& schedulers = cli.AddString(
      "schedulers", "", "comma-separated scheduler filter (empty = all)");
  auto& exact_cap = cli.AddInt(
      "exact-cap", 14, "cross-validate vs branch-and-bound when N <= cap");
  auto& max_failures =
      cli.AddInt("max-failures", 8, "stop after this many distinct failures");
  auto& log_every = cli.AddInt("log-every", 500, "progress period (0 = off)");
  auto& dynamic = cli.AddBool(
      "dynamic", false,
      "fuzz the dynamics subsystem instead: slotted runs with random "
      "arrival/churn knobs, checked against the warm-vs-cold "
      "schedule-identity + replay oracle (.dynscenario reproducers)");
  auto& min_slots =
      cli.AddInt("min-slots", 40, "shortest dynamic run (--dynamic)");
  auto& max_slots =
      cli.AddInt("max-slots", 160, "longest dynamic run (--dynamic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  if (dynamic) {
    testing::DynFuzzDriverOptions dyn;
    dyn.seed = static_cast<std::uint64_t>(seed);
    dyn.iterations = static_cast<std::uint64_t>(iters);
    dyn.fuzzer.topology.min_links = static_cast<std::size_t>(min_links);
    dyn.fuzzer.topology.max_links = static_cast<std::size_t>(max_links);
    dyn.fuzzer.min_slots = static_cast<std::size_t>(min_slots);
    dyn.fuzzer.max_slots = static_cast<std::size_t>(max_slots);
    dyn.shrink = shrink;
    dyn.corpus_dir = corpus_dir;
    dyn.max_failures = static_cast<std::size_t>(max_failures);
    dyn.log_every = static_cast<std::uint64_t>(log_every);
    dyn.log = [](const std::string& message) {
      std::fprintf(stderr, "%s\n", message.c_str());
    };
    for (const std::string& name : util::Split(schedulers, ',')) {
      if (!name.empty()) dyn.fuzzer.schedulers.push_back(name);
    }
    if (!check) {
      const testing::DynamicFuzzer fuzzer(dyn.seed, dyn.fuzzer);
      std::size_t total_links = 0;
      for (std::uint64_t i = 0; i < dyn.iterations; ++i) {
        total_links += fuzzer.Case(i).scenario.links.Size();
      }
      std::printf(
          "generated %llu dynamic instances (%zu links total), checks off\n",
          static_cast<unsigned long long>(dyn.iterations), total_links);
      return 0;
    }
    const testing::DynFuzzReport report = testing::RunDynamicFuzz(dyn);
    std::printf("dynfuzz: %llu/%llu instances checked, %llu failing, "
                "%zu distinct failure class(es)\n",
                static_cast<unsigned long long>(report.iterations_run),
                static_cast<unsigned long long>(dyn.iterations),
                static_cast<unsigned long long>(report.cases_with_failures),
                report.failures.size());
    for (const testing::DynFuzzFailure& failure : report.failures) {
      std::printf("  [%s/%s] shrunk to %zu links, %zu slots%s%s\n",
                  failure.original.scheduler.c_str(),
                  failure.outcome.check.c_str(),
                  failure.shrunk.scenario.links.Size(),
                  failure.shrunk.dynamics.num_slots,
                  failure.corpus_path.empty() ? "" : " -> ",
                  failure.corpus_path.c_str());
    }
    return report.Ok() ? 0 : 1;
  }

  testing::FuzzDriverOptions options;
  options.seed = static_cast<std::uint64_t>(seed);
  options.iterations = static_cast<std::uint64_t>(iters);
  options.fuzzer.min_links = static_cast<std::size_t>(min_links);
  options.fuzzer.max_links = static_cast<std::size_t>(max_links);
  options.oracle.exact_cap = static_cast<std::size_t>(exact_cap);
  options.shrink = shrink;
  options.corpus_dir = corpus_dir;
  options.max_failures = static_cast<std::size_t>(max_failures);
  options.log_every = static_cast<std::uint64_t>(log_every);
  options.log = [](const std::string& message) {
    std::fprintf(stderr, "%s\n", message.c_str());
  };
  for (const std::string& name : util::Split(schedulers, ',')) {
    if (!name.empty()) options.oracle.schedulers.push_back(name);
  }

  if (!check) {
    // Generation-only smoke: exercise the generators and parameter space
    // without the oracle (useful for profiling the fuzzer itself).
    const testing::ScenarioFuzzer fuzzer(options.seed, options.fuzzer);
    std::size_t total_links = 0;
    for (std::uint64_t i = 0; i < options.iterations; ++i) {
      total_links += fuzzer.Case(i).links.Size();
    }
    std::printf("generated %llu instances (%zu links total), checks off\n",
                static_cast<unsigned long long>(options.iterations),
                total_links);
    return 0;
  }

  const testing::FuzzReport report = testing::RunFuzz(options);
  std::printf("fuzz: %llu/%llu instances checked, %llu with violations, "
              "%zu distinct failure class(es)\n",
              static_cast<unsigned long long>(report.iterations_run),
              static_cast<unsigned long long>(options.iterations),
              static_cast<unsigned long long>(report.cases_with_violations),
              report.failures.size());
  for (const testing::FuzzFailure& failure : report.failures) {
    std::printf("  [%s/%s] shrunk to %zu links%s%s\n",
                failure.violation.scheduler.c_str(),
                failure.violation.check.c_str(), failure.shrunk_links,
                failure.corpus_path.empty() ? "" : " -> ",
                failure.corpus_path.c_str());
  }
  return report.Ok() ? 0 : 1;
}

channel::FactorBackend BackendFromName(const std::string& name) {
  if (name == "calculator") return channel::FactorBackend::kCalculator;
  if (name == "tables") return channel::FactorBackend::kTables;
  if (name == "matrix") return channel::FactorBackend::kMatrix;
  throw util::FatalError("unknown --backend '" + name +
                         "' (calculator | tables | matrix)");
}

int RunQueueSim(int argc, char** argv) {
  util::CliParser cli(
      "fadesched_cli queue-sim",
      "slotted dynamic-traffic simulation on the crash-safe sweep harness: "
      "arrival processes, churn, warm-engine scheduling; --frontier "
      "binary-searches the stability frontier lambda*");
  auto& in = cli.AddString("in", "", "scenario CSV (empty = generate "
                                     "uniform from --links/--seed)");
  auto& num_links = cli.AddInt("links", 150, "links when generating");
  auto& topo_seed = cli.AddInt("seed", 5, "topology seed when generating");
  auto& sim_seed = cli.AddInt("sim-seed", 1, "dynamics seed (arrivals/"
                                             "churn/fading substreams)");
  auto& algorithms_text =
      cli.AddString("algorithms", "ldp,rle", "comma-separated schedulers");
  auto& num_slots = cli.AddInt("slots", 1000, "simulated slots");
  auto& warmup = cli.AddInt(
      "warmup", -1, "slots excluded from statistics (-1 = slots/5)");
  auto& family_text = cli.AddString(
      "arrivals", "bernoulli",
      "arrival family: bernoulli | poisson | onoff | leaky");
  auto& rates_text = cli.AddString(
      "rates", "0.01,0.02,0.04", "comma-separated mean arrival rates (the "
                                 "sweep's x axis)");
  auto& duty = cli.AddDouble("duty-cycle", 0.25, "onoff: ON fraction");
  auto& burst = cli.AddDouble("burst-slots", 8.0, "onoff: mean ON sojourn");
  auto& depth = cli.AddDouble("bucket-depth", 4.0, "leaky: bucket depth");
  auto& release = cli.AddDouble("release-prob", 0.25,
                                "leaky: early-release probability");
  auto& mode_text = cli.AddString(
      "mode", "warm", "engine mode: warm (subset views) | cold (rebuild)");
  auto& backend_text =
      cli.AddString("backend", "matrix", "calculator | tables | matrix");
  auto& capacity = cli.AddInt("queue-capacity", 0,
                              "per-link queue bound (0 = unbounded)");
  auto& churn = cli.AddBool("churn", false, "enable membership churn/drift");
  auto& leave = cli.AddDouble("leave-prob", 0.01, "churn: leave/slot");
  auto& enter = cli.AddDouble("enter-prob", 0.1, "churn: re-enter/slot");
  auto& fade_recheck = cli.AddDouble(
      "fade-recheck-prob", 0.02, "churn: fading-recheck (staleness)/slot");
  auto& drift = cli.AddInt("drift", 1, "churn: mobility steps per slot");
  auto& region = cli.AddDouble("region", 500.0, "churn: mobility region");
  auto& refresh_period = cli.AddInt(
      "refresh-period", 0, "rebuild the scheduling snapshot every N slots "
                           "(0 = never)");
  auto& refresh_budget = cli.AddInt(
      "refresh-budget", 0, "rebuild after N staleness events (0 = never)");
  auto& seeds = cli.AddInt("seeds", 1, "simulation seeds per point");
  auto& trace = cli.AddBool(
      "trace", false, "print the per-slot trace (single rate + algorithm; "
                      "byte-identical across reruns and engine modes)");
  auto& frontier = cli.AddBool(
      "frontier", false, "binary-search lambda* per scheduler instead of "
                         "sweeping --rates");
  auto& frontier_iters =
      cli.AddInt("frontier-iters", 6, "bisection refinements (--frontier)");
  auto& lambda_hi = cli.AddDouble(
      "lambda-hi", 0.3, "initial upper bracket (--frontier)");
  auto& checkpoint = cli.AddString(
      "checkpoint", "", "checkpoint file (enables crash-safe resume)");
  auto& resume = cli.AddBool("resume", false,
                             "resume from --checkpoint if it exists");
  auto& keep = cli.AddBool("keep-checkpoint", false,
                           "keep the checkpoint after success");
  auto& out = cli.AddString("out", "", "write the CSV here (atomic)");
  auto& seed_deadline = cli.AddDouble(
      "seed-deadline", 0.0, "per-seed watchdog deadline (seconds; 0 = off)");
  auto& retries =
      cli.AddInt("retries", 1, "retries per seed for transient failures");
  double *alpha, *epsilon, *gamma_th, *noise;
  AddChannelFlags(cli, alpha, epsilon, gamma_th, noise);
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  const auto params = MakeChannel(*alpha, *epsilon, *gamma_th, *noise);
  net::LinkSet links;
  if (!in.empty()) {
    links = net::LoadLinkSet(in);
  } else {
    rng::Xoshiro256 gen(static_cast<std::uint64_t>(topo_seed));
    links = net::MakeUniformScenario(static_cast<std::size_t>(num_links), {},
                                     gen);
  }

  std::vector<std::string> algorithms;
  for (const std::string& token : util::Split(algorithms_text, ',')) {
    const std::string name(util::Trim(token));
    if (!name.empty()) algorithms.push_back(name);
  }
  FS_CHECK_MSG(!algorithms.empty(), "--algorithms must be non-empty");
  std::vector<double> rates;
  for (const std::string& token : util::Split(rates_text, ',')) {
    const auto value = util::ParseDouble(util::Trim(token));
    FS_CHECK_MSG(value.has_value(), "malformed --rates value: '" + token +
                                        "'");
    rates.push_back(*value);
  }
  FS_CHECK_MSG(!rates.empty(), "--rates must be non-empty");
  FS_CHECK_MSG(mode_text == "warm" || mode_text == "cold",
               "--mode must be 'warm' or 'cold'");

  dynamics::DynamicsOptions base;
  base.num_slots = static_cast<std::size_t>(num_slots);
  base.warmup_slots = warmup < 0 ? base.num_slots / 5
                                 : static_cast<std::size_t>(warmup);
  base.seed = static_cast<std::uint64_t>(sim_seed);
  FS_CHECK_MSG(
      dynamics::ParseArrivalFamily(family_text, base.arrivals.family),
      "unknown --arrivals family '" + family_text + "'");
  base.arrivals.duty_cycle = duty;
  base.arrivals.mean_burst_slots = burst;
  base.arrivals.bucket_depth = depth;
  base.arrivals.release_probability = release;
  base.engine_mode = mode_text == "warm" ? dynamics::EngineMode::kWarmSubset
                                         : dynamics::EngineMode::kColdRebuild;
  base.backend = BackendFromName(backend_text);
  base.queue_capacity = static_cast<std::size_t>(capacity);
  if (churn) {
    base.churn.enabled = true;
    base.churn.leave_probability = leave;
    base.churn.enter_probability = enter;
    base.churn.fade_recheck_probability = fade_recheck;
    base.churn.drift_steps_per_slot = static_cast<std::size_t>(drift);
    base.churn.mobility.region_size = region;
  }
  base.refresh.period_slots = static_cast<std::size_t>(refresh_period);
  base.refresh.churn_budget = static_cast<std::uint64_t>(refresh_budget);

  if (trace) {
    FS_CHECK_MSG(algorithms.size() == 1 && rates.size() == 1,
                 "--trace needs exactly one --algorithms entry and one "
                 "--rates entry");
    dynamics::DynamicsOptions options = base;
    options.arrivals.rate = rates[0];
    options.slot_observer = [](const dynamics::SlotRecord& record) {
      std::printf("%s\n", dynamics::FormatSlotRecord(record).c_str());
    };
    const dynamics::DynamicsResult result = dynamics::RunSlottedSimulation(
        links, params, algorithms[0], options);
    std::printf("# ledger arrivals=%llu delivered=%llu blocked=%llu "
                "overflow=%llu residual=%llu balanced=%d\n",
                static_cast<unsigned long long>(result.ledger.arrivals),
                static_cast<unsigned long long>(result.ledger.delivered),
                static_cast<unsigned long long>(result.ledger.dropped_blocked),
                static_cast<unsigned long long>(
                    result.ledger.dropped_overflow),
                static_cast<unsigned long long>(result.ledger.residual),
                result.ledger.Balanced() ? 1 : 0);
    return 0;
  }

  sim::MetricSweepSpec spec;
  spec.series = algorithms;
  spec.num_seeds = static_cast<std::size_t>(seeds);
  {
    std::uint64_t h = sim::FingerprintInit();
    h = sim::FingerprintMix64(h, links.Size());
    h = sim::FingerprintMix64(h, base.num_slots);
    h = sim::FingerprintMix64(h, base.seed);
    h = sim::FingerprintMixString(h, family_text);
    h = sim::FingerprintMixString(h, mode_text);
    h = sim::FingerprintMixDouble(h, *alpha);
    spec.config_fingerprint = h;
  }

  if (frontier) {
    spec.name = "queue-sim frontier";
    spec.x_name = "alpha";
    spec.xs = {*alpha};
    spec.metrics = {"lambda_star", "lambda_lo", "lambda_hi", "saturated",
                    "probes"};
    dynamics::FrontierOptions frontier_options;
    frontier_options.lambda_hi = lambda_hi;
    frontier_options.iterations = static_cast<std::size_t>(frontier_iters);
    spec.run_seed = [&, frontier_options](
                        std::size_t /*point*/, std::size_t series,
                        std::size_t seed_index,
                        const util::Deadline& /*deadline*/) {
      dynamics::DynamicsOptions options = base;
      options.seed = base.seed + seed_index;
      const dynamics::FrontierResult result =
          dynamics::FindStabilityFrontier(links, params, algorithms[series],
                                          options, frontier_options);
      return std::vector<double>{result.lambda_star, result.lambda_lo,
                                 result.lambda_hi,
                                 result.saturated ? 1.0 : 0.0,
                                 static_cast<double>(result.probes)};
    };
  } else {
    spec.name = "queue-sim";
    spec.x_name = "arrival_rate";
    spec.xs = rates;
    spec.metrics = {"mean_backlog", "mean_delay_slots", "delay_p95",
                    "delivered", "failure_rate_pct"};
    spec.run_seed = [&](std::size_t point, std::size_t series,
                        std::size_t seed_index,
                        const util::Deadline& /*deadline*/) {
      dynamics::DynamicsOptions options = base;
      options.seed = base.seed + seed_index;
      options.arrivals.rate = rates[point];
      dynamics::DynamicsResult result = dynamics::RunSlottedSimulation(
          links, params, algorithms[series], options);
      std::sort(result.delay_samples.begin(), result.delay_samples.end());
      const double p95 = result.delay_samples.empty()
                             ? 0.0
                             : mathx::Percentile(result.delay_samples, 0.95);
      return std::vector<double>{result.backlog.Mean(),
                                 result.delay_slots.Mean(), p95,
                                 static_cast<double>(result.ledger.delivered),
                                 100.0 * result.FailureRate()};
    };
  }

  sim::MetricSweepOptions options;
  options.retry.max_attempts = static_cast<std::size_t>(retries) + 1;
  options.retry.seed_deadline_seconds = seed_deadline;
  options.checkpoint_path = checkpoint;
  options.resume = resume;
  options.keep_checkpoint = keep;
  options.out_path = out;

  const sim::MetricSweepResult result = sim::RunMetricSweep(spec, options);
  std::fputs(result.table.ToString().c_str(), stdout);
  if (result.failed_seeds > 0) {
    std::fprintf(stderr, "warning: %zu seed(s) failed (%zu timed out)\n",
                 result.failed_seeds, result.timed_out_seeds);
  }
  if (result.interrupted) {
    std::fprintf(stderr, "interrupted: %zu/%zu points complete\n",
                 result.points_completed, result.points_total);
  }
  return result.ExitCode();
}

struct OverloadFlags {
  double* target_ms = nullptr;
  double* interval_ms = nullptr;
  std::string* shed_policy = nullptr;
  bool* brownout = nullptr;
};

OverloadFlags AddOverloadFlags(util::CliParser& cli) {
  OverloadFlags flags;
  flags.target_ms = &cli.AddDouble(
      "queue-delay-target-ms", 5.0,
      "CoDel queue-delay target; sustained delay above it sheds "
      "adaptively (0 = disable the overload controller)");
  flags.interval_ms = &cli.AddDouble(
      "overload-interval-ms", 100.0,
      "delay must stay above target this long before shedding starts");
  flags.shed_policy = &cli.AddString(
      "shed-policy", "cold",
      "who gets shed under overload: none | cold (cold-fingerprint "
      "requests first) | all");
  flags.brownout = &cli.AddBool(
      "brownout", true,
      "degrade cold engine builds under critical queue delay (matrix "
      "backends: SIMD precision-ladder build; others: tables backend)");
  return flags;
}

service::OverloadOptions MakeOverloadOptions(const OverloadFlags& flags) {
  service::OverloadOptions overload;
  overload.queue_delay_target_ms = *flags.target_ms;
  overload.interval_ms = *flags.interval_ms;
  overload.shed_policy = service::ParseShedPolicy(*flags.shed_policy);
  overload.brownout_enabled = *flags.brownout;
  overload.Validate();
  return overload;
}

service::shard::RoutingMode RoutingFromName(const std::string& name) {
  if (name == "affinity") return service::shard::RoutingMode::kAffinity;
  if (name == "round_robin") return service::shard::RoutingMode::kRoundRobin;
  throw util::FatalError("unknown routing mode '" + name +
                         "' (expected affinity or round_robin)");
}

int RunServe(int argc, char** argv) {
  util::CliParser cli(
      "fadesched_cli serve",
      "line-protocol scheduling server (unix socket or TCP loopback); "
      "--shards N forks N worker processes behind a consistent-hash "
      "fingerprint router (SIGHUP rolls them one arc at a time); "
      "SIGTERM/SIGINT drain gracefully, exit 0");
  auto& unix_path = cli.AddString(
      "unix", "", "unix-domain socket path (empty = TCP)");
  auto& host = cli.AddString("host", "127.0.0.1", "TCP bind address");
  auto& port = cli.AddInt("port", 0, "TCP port (0 = ephemeral, printed)");
  auto& workers = cli.AddInt(
      "workers", 4,
      "scheduling threads (per shard process when --shards > 0)");
  auto& queue = cli.AddInt("queue-capacity", 256,
                           "pending-request slots; beyond this, shed");
  auto& deadline = cli.AddDouble(
      "default-deadline", 0.0,
      "queue deadline (s) for requests that carry none; 0 = unlimited");
  auto& cache_mb = cli.AddInt(
      "cache-mb", 256,
      "scenario+response cache budget (MiB; per shard when sharded)");
  auto& backend = cli.AddString(
      "backend", "tables",
      "interference backend for cached engines (calculator|tables|matrix)");
  auto& metrics_out = cli.AddString(
      "metrics-out", "",
      "write the metrics JSON here on shutdown (single-process mode only; "
      "sharded metrics aggregate through the STATS verb)");
  auto& shards = cli.AddInt(
      "shards", 0,
      "fork this many shard worker processes behind the epoll router; "
      "0 = classic single-process thread-per-connection server");
  auto& vnodes = cli.AddInt("vnodes", 128,
                            "virtual nodes per shard on the hash ring");
  auto& routing = cli.AddString(
      "routing", "affinity",
      "request placement: affinity (consistent-hash on the scenario "
      "fingerprint, cache-warm) | round_robin (the bench's control arm)");
  auto& completion_threads = cli.AddInt(
      "completion-threads", 2, "reply-drainer threads per shard worker");
  auto& drain_grace = cli.AddDouble(
      "drain-grace", 10.0, "SIGTERM → SIGKILL escalation grace (s)");
  auto& max_restarts = cli.AddInt(
      "max-restarts", 8,
      "shard restarts inside --restart-window before the flap breaker "
      "opens (serve then exits 1)");
  auto& restart_window = cli.AddDouble("restart-window", 10.0,
                                       "flap-breaker sliding window (s)");
  auto& chaos_kills = cli.AddInt(
      "chaos-kills", 0,
      "injected shard SIGKILLs (seeded, deterministic; sharded mode)");
  auto& chaos_seed = cli.AddInt("chaos-seed", 1, "process-fault plan seed");
  auto& chaos_window = cli.AddDouble(
      "chaos-window", 10.0, "injected faults land inside [0, this) (s)");
  auto& status_out = cli.AddString(
      "status-out", "",
      "write the shard supervision report JSON here on exit");
  const OverloadFlags overload_flags = AddOverloadFlags(cli);
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  service::ServerOptions options;
  options.unix_socket_path = unix_path;
  options.host = host;
  options.port = static_cast<int>(port);
  options.service.batcher.num_workers = static_cast<std::size_t>(workers);
  options.service.batcher.queue_capacity = static_cast<std::size_t>(queue);
  options.service.batcher.default_deadline_seconds = deadline;
  options.service.batcher.overload = MakeOverloadOptions(overload_flags);
  options.service.cache.capacity_bytes =
      static_cast<std::size_t>(cache_mb) << 20;
  options.service.cache.engine.backend = BackendFromName(backend);

  if (shards > 0) {
    service::shard::ShardServerOptions shard_options;
    shard_options.server = options;
    shard_options.num_shards = static_cast<std::size_t>(shards);
    shard_options.vnodes_per_shard = static_cast<std::size_t>(vnodes);
    shard_options.routing = RoutingFromName(routing);
    shard_options.completion_threads_per_shard =
        static_cast<std::size_t>(completion_threads);
    shard_options.supervisor.drain_grace_seconds = drain_grace;
    shard_options.supervisor.max_restarts_in_window =
        static_cast<std::size_t>(max_restarts);
    shard_options.supervisor.restart_window_seconds = restart_window;
    shard_options.supervisor.chaos.seed =
        static_cast<std::uint64_t>(chaos_seed);
    shard_options.supervisor.chaos.kills =
        static_cast<std::size_t>(chaos_kills);
    shard_options.supervisor.chaos.window_seconds = chaos_window;

    service::shard::ShardServer server(shard_options);
    server.Start();
    if (!unix_path.empty()) {
      std::printf("listening on unix:%s (%d shards, %s routing)\n",
                  unix_path.c_str(), static_cast<int>(shards),
                  routing.c_str());
    } else {
      std::printf("listening on %s:%d (%d shards, %s routing)\n",
                  host.c_str(), server.Port(), static_cast<int>(shards),
                  routing.c_str());
    }
    std::fflush(stdout);

    server.Serve();  // installs its own signal guard; workers inherit it
    const service::SupervisorReport& report = server.Report();
    std::fputs(report.ToJson().c_str(), stdout);
    if (!status_out.empty()) {
      util::AtomicWriteFile(status_out, report.ToJson());
    }
    if (report.breaker_open) {
      std::fprintf(stderr,
                   "flap breaker open: %zu restarts inside %.1fs window\n",
                   report.restarts, restart_window);
      return 1;
    }
    std::printf("drained, shutting down\n");
    return 0;
  }

  service::Server server(options);
  server.Start();
  if (!unix_path.empty()) {
    std::printf("listening on unix:%s\n", unix_path.c_str());
  } else {
    std::printf("listening on %s:%d\n", host.c_str(), server.Port());
  }
  std::fflush(stdout);

  // Serve() returns after a guarded SIGINT/SIGTERM: in-flight requests
  // complete, the queue drains, workers join — a graceful drain is a
  // SUCCESS for a server, hence exit 0 (unlike sweeps, where interrupted
  // means incomplete work and exits 3).
  util::ScopedSignalGuard guard;
  server.Serve();
  if (!metrics_out.empty()) {
    server.Service().Metrics().DumpJson(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  std::printf("drained, shutting down\n");
  return 0;
}

int RunSupervise(int argc, char** argv) {
  util::CliParser cli(
      "fadesched_cli supervise",
      "crash-only multi-process server: bind once, fork N workers sharing "
      "the listener fd, restart crashed workers with bounded backoff; "
      "SIGHUP = zero-downtime rolling restart, SIGTERM/SIGINT = drain");
  auto& unix_path = cli.AddString(
      "unix", "", "unix-domain socket path (empty = TCP)");
  auto& host = cli.AddString("host", "127.0.0.1", "TCP bind address");
  auto& port = cli.AddInt("port", 0, "TCP port (0 = ephemeral, printed)");
  auto& workers = cli.AddInt("workers", 2, "worker processes to fork");
  auto& threads = cli.AddInt("threads", 2, "scheduling threads per worker");
  auto& queue = cli.AddInt("queue-capacity", 256,
                           "pending-request slots per worker; beyond, shed");
  auto& deadline = cli.AddDouble(
      "default-deadline", 0.0,
      "queue deadline (s) for requests that carry none; 0 = unlimited");
  auto& cache_mb = cli.AddInt("cache-mb", 256,
                              "per-worker cache budget (MiB)");
  auto& backend = cli.AddString(
      "backend", "tables",
      "interference backend for cached engines (calculator|tables|matrix)");
  const OverloadFlags overload_flags = AddOverloadFlags(cli);
  auto& backoff_initial = cli.AddDouble(
      "backoff-initial", 0.05, "first crash-restart backoff (s)");
  auto& backoff_max = cli.AddDouble("backoff-max", 2.0,
                                    "crash-restart backoff cap (s)");
  auto& stable = cli.AddDouble(
      "stable-seconds", 5.0,
      "worker uptime that resets its slot's backoff streak");
  auto& max_restarts = cli.AddInt(
      "max-restarts", 8,
      "restarts inside --restart-window before the flap breaker opens "
      "(supervise then exits 1)");
  auto& restart_window = cli.AddDouble("restart-window", 10.0,
                                       "flap-breaker sliding window (s)");
  auto& drain_grace = cli.AddDouble(
      "drain-grace", 10.0, "SIGTERM → SIGKILL escalation grace (s)");
  auto& chaos_kills = cli.AddInt(
      "chaos-kills", 0, "injected worker SIGKILLs (seeded, deterministic)");
  auto& chaos_stalls = cli.AddInt(
      "chaos-stalls", 0, "injected SIGSTOP/SIGCONT stall windows");
  auto& chaos_startup_crashes = cli.AddInt(
      "chaos-startup-crashes", 0,
      "first N spawns _exit(77) before serving (backoff/breaker drill)");
  auto& chaos_seed = cli.AddInt("chaos-seed", 1, "process-fault plan seed");
  auto& chaos_window = cli.AddDouble(
      "chaos-window", 10.0, "injected faults land inside [0, this) (s)");
  auto& chaos_stall_seconds = cli.AddDouble(
      "chaos-stall-seconds", 0.2, "SIGSTOP → SIGCONT gap per stall");
  auto& plan_out = cli.AddString(
      "plan-out", "", "write the formatted process-fault plan here");
  auto& status_out = cli.AddString(
      "status-out", "", "write the supervisor report JSON here on exit");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  service::ServerOptions worker_options;
  // Workers inherit the listener; the path stays empty in the child so a
  // worker's shutdown can never unlink the shared socket.
  worker_options.host = host;
  worker_options.port = static_cast<int>(port);
  worker_options.service.batcher.num_workers =
      static_cast<std::size_t>(threads);
  worker_options.service.batcher.queue_capacity =
      static_cast<std::size_t>(queue);
  worker_options.service.batcher.default_deadline_seconds = deadline;
  worker_options.service.batcher.overload =
      MakeOverloadOptions(overload_flags);
  worker_options.service.cache.capacity_bytes =
      static_cast<std::size_t>(cache_mb) << 20;
  worker_options.service.cache.engine.backend = BackendFromName(backend);

  // Bind exactly once, in the supervisor; workers share the fd across
  // fork and the kernel load-balances accepts between their poll loops.
  service::ServerOptions bind_options = worker_options;
  bind_options.unix_socket_path = unix_path;
  int resolved_port = bind_options.port;
  const int listen_fd = service::BindListenSocket(bind_options, &resolved_port);
  worker_options.port = resolved_port;
  worker_options.inherited_listen_fd = listen_fd;

  service::SupervisorOptions sup;
  sup.num_workers = static_cast<std::size_t>(workers);
  sup.backoff_initial_seconds = backoff_initial;
  sup.backoff_max_seconds = backoff_max;
  sup.stable_seconds = stable;
  sup.max_restarts_in_window = static_cast<std::size_t>(max_restarts);
  sup.restart_window_seconds = restart_window;
  sup.drain_grace_seconds = drain_grace;
  sup.chaos.seed = static_cast<std::uint64_t>(chaos_seed);
  sup.chaos.kills = static_cast<std::size_t>(chaos_kills);
  sup.chaos.stalls = static_cast<std::size_t>(chaos_stalls);
  sup.chaos.startup_crashes = static_cast<std::size_t>(chaos_startup_crashes);
  sup.chaos.window_seconds = chaos_window;
  sup.chaos.stall_seconds = chaos_stall_seconds;
  sup.Validate();

  const auto plan = service::BuildProcessFaultPlan(sup.chaos, sup.num_workers);
  if (!plan.empty()) {
    const std::string formatted = service::FormatProcessFaultPlan(plan);
    std::printf("process-fault plan (seed %llu):\n%s",
                static_cast<unsigned long long>(sup.chaos.seed),
                formatted.c_str());
    if (!plan_out.empty()) util::AtomicWriteFile(plan_out, formatted);
  }

  service::Supervisor supervisor(
      [&worker_options](std::size_t /*slot*/, std::size_t spawn_ordinal) {
        service::Server server(worker_options);
        server.Start();  // adopts the inherited fd
        // Expose the global spawn ordinal through STATS: a client can
        // tell how many forks preceded the worker it is talking to.
        server.Service().Metrics().worker_restarts.store(spawn_ordinal);
        server.Serve();  // drains on the inherited SIGTERM handler
        return 0;
      },
      sup);

  if (!unix_path.empty()) {
    std::printf("supervising %d workers on unix:%s\n",
                static_cast<int>(workers), unix_path.c_str());
  } else {
    std::printf("supervising %d workers on %s:%d\n",
                static_cast<int>(workers), host.c_str(), resolved_port);
  }
  std::fflush(stdout);

  util::ScopedSignalGuard guard;
  const service::SupervisorReport report = supervisor.Run();
  ::close(listen_fd);
  if (!unix_path.empty()) ::unlink(unix_path.c_str());

  std::fputs(report.ToJson().c_str(), stdout);
  if (!status_out.empty()) {
    util::AtomicWriteFile(status_out, report.ToJson());
  }
  if (report.breaker_open) {
    std::fprintf(stderr,
                 "flap breaker open: %zu restarts inside %.1fs window\n",
                 report.restarts, sup.restart_window_seconds);
    return 1;
  }
  std::printf("drained, shutting down\n");
  return 0;
}

int RunLoadgen(int argc, char** argv) {
  util::CliParser cli("fadesched_cli loadgen",
                      "seeded load generator against a serve endpoint");
  auto& unix_path = cli.AddString("unix", "",
                                  "unix-domain socket path (empty = TCP)");
  auto& host = cli.AddString("host", "127.0.0.1", "server address");
  auto& port = cli.AddInt("port", 0, "server TCP port");
  auto& requests = cli.AddInt("requests", 1000, "total requests to send");
  auto& connections = cli.AddInt("connections", 4, "concurrent connections");
  auto& pool = cli.AddInt("pool", 16, "distinct scenarios (replayed "
                          "round-robin; small pool = cache-hit heavy)");
  auto& links = cli.AddInt("links", 40, "links per generated scenario");
  auto& seed = cli.AddInt("seed", 1, "scenario-pool seed");
  auto& scheduler = cli.AddString("scheduler", "rle", "scheduler name");
  auto& deadline = cli.AddDouble("deadline", 0.0,
                                 "per-request queue deadline (s); 0 = none");
  auto& rate = cli.AddDouble(
      "rate", 0.0, "open-loop offered load (req/s); 0 = closed loop");
  auto& hot_fraction = cli.AddDouble(
      "hot-fraction", 1.0,
      "fraction of requests replaying the warm pool; the rest are unique "
      "cold scenarios (guaranteed cache misses)");
  auto& retry_on_shed = cli.AddBool(
      "retry-on-shed", false,
      "sleep the server's retry_after_ms hint and re-send shed requests");
  auto& max_shed_retries = cli.AddInt(
      "max-shed-retries", 3, "re-send budget per request");
  auto& mux = cli.AddBool(
      "mux", false,
      "multiplexed mode: one thread drives all connections through epoll "
      "(scales to hundreds of connections; corrected latency then shows "
      "client-side queueing when releases outpace the fleet)");
  auto& drift = cli.AddInt(
      "drift", 0,
      "every N requests, replace one warm-pool entry with a fresh "
      "scenario (drifting working set; 0 = static pool)");
  auto& report_out = cli.AddString("report-out", "",
                                   "write the report JSON here");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  service::LoadgenOptions options;
  options.unix_socket_path = unix_path;
  options.host = host;
  options.port = static_cast<int>(port);
  options.num_requests = static_cast<std::size_t>(requests);
  options.connections = static_cast<std::size_t>(connections);
  options.pool_size = static_cast<std::size_t>(pool);
  options.links = static_cast<std::size_t>(links);
  options.seed = static_cast<std::uint64_t>(seed);
  options.scheduler = scheduler;
  options.deadline_seconds = deadline;
  options.rate_per_sec = rate;
  options.hot_fraction = hot_fraction;
  options.retry_on_shed = retry_on_shed;
  options.max_shed_retries = static_cast<std::size_t>(max_shed_retries);
  options.multiplex = mux;
  options.drift_period = static_cast<std::size_t>(drift);

  const service::LoadgenReport report = service::RunLoadgen(options);
  std::fputs(report.ToJson().c_str(), stdout);
  if (!report_out.empty()) {
    util::AtomicWriteFile(report_out, report.ToJson());
  }
  // Shed/timeout are legitimate under overload; divergent or failed
  // responses are not.
  return report.Clean() ? 0 : 1;
}

int RunStats(int argc, char** argv) {
  util::CliParser cli(
      "fadesched_cli stats",
      "send the STATS verb to a serve endpoint and print the counter "
      "snapshot as JSON (a sharded server answers with the tier-wide "
      "aggregate; warm_hit_rate is derived from the response-cache "
      "counters)");
  auto& unix_path = cli.AddString(
      "unix", "", "unix-domain socket path (empty = TCP)");
  auto& host = cli.AddString("host", "127.0.0.1", "server address");
  auto& port = cli.AddInt("port", 0, "server TCP port");
  auto& out = cli.AddString("out", "", "write the JSON here too");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  service::Client client;
  if (!unix_path.empty()) {
    client.ConnectUnix(unix_path);
  } else {
    client.ConnectTcp(host, static_cast<int>(port));
  }
  const service::StatsSnapshot stats = client.Stats();
  const std::string json = stats.ToJson();
  std::fputs(json.c_str(), stdout);
  if (!out.empty()) util::AtomicWriteFile(out, json);
  return 0;
}

int RunChaosSoak(int argc, char** argv) {
  util::CliParser cli(
      "fadesched_cli chaos-soak",
      "seeded fault-injection soak: every request must reach exactly one "
      "byte-identical response or a typed error — 0 lost, 0 duplicated, "
      "0 corrupted");
  auto& unix_path = cli.AddString(
      "unix", "", "existing server's unix socket (empty + port 0 = spin up "
      "an in-process server)");
  auto& host = cli.AddString("host", "127.0.0.1", "existing server address");
  auto& port = cli.AddInt("port", 0, "existing server TCP port");
  auto& requests = cli.AddInt("requests", 1000, "total requests");
  auto& clients = cli.AddInt("clients", 4, "concurrent retrying clients");
  auto& pool = cli.AddInt("pool", 16, "distinct scenario instances");
  auto& links = cli.AddInt("links", 30, "links per instance");
  auto& seed = cli.AddInt("seed", 1,
                          "master seed (scenario pool + fault streams)");
  auto& scheduler = cli.AddString("scheduler", "rle", "scheduler name");
  auto& fault_prob = cli.AddDouble(
      "fault-prob", 0.02,
      "per-operation probability applied to every fault family");
  auto& connect_reset = cli.AddDouble(
      "connect-reset", -1.0, "override for connect-reset (-1 = fault-prob)");
  auto& send_corrupt = cli.AddDouble(
      "send-corrupt", -1.0, "override for send-corrupt (-1 = fault-prob)");
  auto& send_truncate = cli.AddDouble(
      "send-truncate", -1.0, "override for send-truncate (-1 = fault-prob)");
  auto& send_duplicate = cli.AddDouble(
      "send-duplicate", -1.0,
      "override for send-duplicate (-1 = fault-prob)");
  auto& recv_stall = cli.AddDouble(
      "recv-stall", -1.0, "override for recv-stall (-1 = fault-prob)");
  auto& recv_corrupt = cli.AddDouble(
      "recv-corrupt", -1.0, "override for recv-corrupt (-1 = fault-prob)");
  auto& recv_kill = cli.AddDouble(
      "recv-kill", -1.0, "override for recv-kill (-1 = fault-prob)");
  auto& recv_duplicate = cli.AddDouble(
      "recv-duplicate", -1.0,
      "override for recv-duplicate (-1 = fault-prob)");
  auto& stall_seconds = cli.AddDouble(
      "stall-seconds", 0.02, "injected recv stall duration (s)");
  auto& max_attempts = cli.AddInt("max-attempts", 10,
                                  "retry attempts per request");
  auto& backoff = cli.AddDouble("backoff", 0.005,
                                "initial retry backoff (s)");
  auto& max_backoff = cli.AddDouble("max-backoff", 0.25,
                                    "retry backoff cap (s)");
  auto& connect_timeout = cli.AddDouble(
      "connect-timeout", 5.0, "client connect deadline (s); 0 = none");
  auto& io_timeout = cli.AddDouble(
      "io-timeout", 5.0, "client per-operation send/recv deadline (s)");
  auto& drain_mid_run = cli.AddBool(
      "drain-mid-run", false,
      "raise SIGTERM halfway through (in-process server only): the drain "
      "must be clean — pre-drain requests answered, later ones refused "
      "with typed errors");
  auto& allow_unserved = cli.AddBool(
      "allow-unserved", false,
      "count post-drain refusals as unserved instead of failures");
  auto& shrink = cli.AddBool(
      "shrink", false,
      "on failure, delta-debug the fault plan down to a minimal "
      "reproducer");
  auto& trace_out = cli.AddString(
      "trace-out", "", "write the deterministic fault trace here");
  auto& report_out = cli.AddString("report-out", "",
                                   "write the report JSON here");
  auto& repro_out = cli.AddString(
      "repro-out", "", "write the shrunk reproducer line here (--shrink)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  service::chaos::ChaosSoakOptions options;
  options.endpoint.unix_socket_path = unix_path;
  options.endpoint.host = host;
  options.endpoint.port = static_cast<int>(port);
  options.num_requests = static_cast<std::size_t>(requests);
  options.num_clients = static_cast<std::size_t>(clients);
  options.pool_size = static_cast<std::size_t>(pool);
  options.links = static_cast<std::size_t>(links);
  options.seed = static_cast<std::uint64_t>(seed);
  options.scheduler = scheduler;

  options.plan = service::chaos::ChaosPlan::AllFamilies(
      fault_prob, static_cast<std::uint64_t>(seed));
  using service::chaos::FaultFamily;
  const std::pair<FaultFamily, double> overrides[] = {
      {FaultFamily::kConnectReset, connect_reset},
      {FaultFamily::kSendCorrupt, send_corrupt},
      {FaultFamily::kSendTruncate, send_truncate},
      {FaultFamily::kSendDuplicate, send_duplicate},
      {FaultFamily::kRecvStall, recv_stall},
      {FaultFamily::kRecvCorrupt, recv_corrupt},
      {FaultFamily::kRecvKill, recv_kill},
      {FaultFamily::kRecvDuplicate, recv_duplicate},
  };
  for (const auto& [family, probability] : overrides) {
    if (probability >= 0.0) options.plan.SetProbability(family, probability);
  }
  options.plan.stall_seconds = stall_seconds;
  options.retry.max_attempts = static_cast<std::size_t>(max_attempts);
  options.retry.initial_backoff_seconds = backoff;
  options.retry.max_backoff_seconds = max_backoff;
  options.client.connect_timeout_seconds = connect_timeout;
  options.client.io_timeout_seconds = io_timeout;
  options.drain_mid_run = drain_mid_run;
  options.allow_unserved = allow_unserved;
  if (drain_mid_run) {
    // Exercise the real signal path: the guard converts the raise into
    // util::ShutdownRequested(), which the in-process server's accept
    // loop polls — the same drain a production SIGTERM triggers.
    options.on_drain = [] { std::raise(SIGTERM); };
  }

  util::ScopedSignalGuard guard;
  std::printf("chaos plan: %s (seed %llu)\n",
              options.plan.Describe().c_str(),
              static_cast<unsigned long long>(options.seed));
  std::fflush(stdout);
  const service::chaos::ChaosSoakReport report =
      service::chaos::RunChaosSoak(options);
  std::fputs(report.ToJson().c_str(), stdout);
  if (!report_out.empty()) {
    util::AtomicWriteFile(report_out, report.ToJson());
  }
  if (!trace_out.empty()) {
    util::AtomicWriteFile(trace_out, report.trace);
  }
  if (report.Ok()) return 0;
  std::fprintf(stderr, "chaos-soak FAILED: %s\n",
               report.first_failure.c_str());
  if (shrink) {
    const std::string repro = service::chaos::ShrinkChaosFailure(options);
    std::fprintf(stderr, "%s\n", repro.c_str());
    if (!repro_out.empty()) util::AtomicWriteFile(repro_out, repro + "\n");
  }
  return 1;
}

int RunList() {
  std::printf("registered schedulers:\n");
  for (const std::string& name : sched::KnownSchedulers()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

void PrintTopLevelUsage() {
  std::fputs(
      "fadesched_cli — fading-resistant link scheduling toolbox\n"
      "\n"
      "subcommands:\n"
      "  generate   write a synthetic scenario CSV\n"
      "  info       topology statistics of a scenario\n"
      "  solve      schedule one slot (--slots for a full frame)\n"
      "  simulate   Monte-Carlo fading simulation of a schedule\n"
      "  fault-inject  distributed DLS under control-plane faults\n"
      "  ilp        export the ILP (paper formulas (20)-(22))\n"
      "  sweep      crash-safe multi-point sweep (checkpoint/resume)\n"
      "  queue-sim  slotted dynamic-traffic simulation (arrivals, churn,\n"
      "             warm-engine scheduling); --frontier finds lambda*\n"
      "  fuzz       metamorphic fuzzing + oracle checks, shrunk reproducers\n"
      "             (--dynamic: warm-vs-cold + replay oracle on slotted runs)\n"
      "  serve      scheduling server (unix socket / TCP, line protocol);\n"
      "             --shards N forks N workers behind a consistent-hash\n"
      "             fingerprint router (SIGHUP = rolling restart)\n"
      "  supervise  crash-only multi-process server: forked workers share\n"
      "             the listener; crashes restart with backoff, SIGHUP\n"
      "             rolls workers with zero downtime\n"
      "  loadgen    seeded load generator against a serve endpoint\n"
      "             (--mux: one epoll thread drives hundreds of\n"
      "             connections; --drift: sliding warm working set)\n"
      "  stats      STATS snapshot of a serve endpoint as JSON\n"
      "  chaos-soak seeded socket-fault soak; fails unless zero requests\n"
      "             are lost, duplicated, or corrupted\n"
      "  list       registered scheduler names\n"
      "\n"
      "exit codes (all subcommands): 0 success, 1 runtime failure,\n"
      "2 usage error, 3 watchdog timeout or interrupted mid-run.\n"
      "`serve` exits 0 on a graceful SIGINT/SIGTERM drain (a drained server\n"
      "finished its work); `supervise` additionally exits 1 when its flap\n"
      "breaker opens; `loadgen` exits 1 when any response failed or\n"
      "diverged (shed/timeout under overload still exit 0).\n"
      "\n"
      "run `fadesched_cli <subcommand> --help` for flags.\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintTopLevelUsage();
    return fadesched::util::kExitUsage;
  }
  const std::string command = argv[1];
  // Shift argv so subcommand parsers see their own flags as argv[1..].
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  try {
    if (command == "generate") return RunGenerate(sub_argc, sub_argv);
    if (command == "info") return RunInfo(sub_argc, sub_argv);
    if (command == "solve") return RunSolve(sub_argc, sub_argv);
    if (command == "simulate") return RunSimulate(sub_argc, sub_argv);
    if (command == "fault-inject") return RunFaultInject(sub_argc, sub_argv);
    if (command == "ilp") return RunIlp(sub_argc, sub_argv);
    if (command == "sweep") return RunSweep(sub_argc, sub_argv);
    if (command == "queue-sim") return RunQueueSim(sub_argc, sub_argv);
    if (command == "fuzz") return RunFuzzCmd(sub_argc, sub_argv);
    if (command == "serve") return RunServe(sub_argc, sub_argv);
    if (command == "supervise") return RunSupervise(sub_argc, sub_argv);
    if (command == "loadgen") return RunLoadgen(sub_argc, sub_argv);
    if (command == "stats") return RunStats(sub_argc, sub_argv);
    if (command == "chaos-soak") return RunChaosSoak(sub_argc, sub_argv);
    if (command == "list") return RunList();
    if (command == "--help" || command == "-h" || command == "help") {
      PrintTopLevelUsage();
      return 0;
    }
  } catch (const fadesched::util::HarnessError& e) {
    std::fprintf(stderr, "error (%s): %s\n",
                 fadesched::util::ErrorKindName(e.kind()), e.what());
    return fadesched::util::ExitCodeForError(e.kind());
  } catch (const fadesched::util::CheckFailure& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n\n", command.c_str());
  PrintTopLevelUsage();
  return fadesched::util::kExitUsage;
}
