// Dense-urban scenario: clustered hotspots and heterogeneous data rates —
// the weighted objective where LDP's rate-aware square selection matters.
// Also demonstrates scenario persistence and ILP export for cross-checking
// with an external MIP solver.
//
//   ./examples/dense_urban [--links 300] [--clusters 6] [--out-dir /tmp]
#include <cstdio>

#include "core/fadesched.hpp"
#include "rng/distributions.hpp"
#include "sched/ilp_export.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;

  util::CliParser cli("dense_urban",
                      "clustered, rate-heterogeneous topology with "
                      "scenario + ILP export");
  auto& num_links = cli.AddInt("links", 300, "number of links");
  auto& clusters = cli.AddInt("clusters", 6, "number of hotspots");
  auto& seed = cli.AddInt("seed", 11, "topology seed");
  auto& out_dir = cli.AddString("out-dir", "/tmp", "artifact directory");
  if (!cli.Parse(argc, argv)) return 0;

  // Clustered geometry with per-link rates drawn from U[0.5, 4].
  rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
  net::ClusteredScenarioParams cp;
  cp.num_clusters = static_cast<std::size_t>(clusters);
  const net::LinkSet geometry = net::MakeClusteredScenario(
      static_cast<std::size_t>(num_links), cp, gen);
  net::LinkSet links;
  for (net::LinkId i = 0; i < geometry.Size(); ++i) {
    net::Link link = geometry.At(i);
    link.rate = rng::UniformRange(gen, 0.5, 4.0);
    links.Add(link);
  }

  channel::ChannelParams params;
  params.alpha = 3.0;

  std::printf("dense urban: %zu links around %lld hotspots, rates in "
              "[0.5, 4.0]\n\n",
              links.Size(), static_cast<long long>(clusters));

  const core::Problem problem(links, params);
  util::CsvTable table(
      {"algorithm", "scheduled", "claimed", "expected_delivered", "feasible"});
  for (const char* name : {"ldp", "ldp_two_sided", "rle", "fading_greedy",
                           "dls", "approx_diversity"}) {
    const core::Solution solution = problem.Solve(name);
    util::CsvRowBuilder(table)
        .Add(std::string(name))
        .Add(solution.schedule.size())
        .Add(util::FormatDouble(solution.claimed_rate, 1))
        .Add(util::FormatDouble(solution.expected_throughput, 2))
        .Add(std::string(solution.fading_feasible ? "yes" : "no"))
        .Commit();
  }
  std::fputs(table.ToPrettyString().c_str(), stdout);

  // Persist the instance and its ILP form for external tooling.
  const std::string scenario_path = out_dir + "/dense_urban_links.csv";
  const std::string ilp_path = out_dir + "/dense_urban.lp";
  net::SaveLinkSet(links, scenario_path);
  sched::WriteIlpFile(links, params, ilp_path);
  std::printf("\nartifacts:\n  scenario: %s\n  ILP (formulas (20)-(22)): %s\n",
              scenario_path.c_str(), ilp_path.c_str());
  std::printf("Feed the .lp file to any MIP solver to cross-check the exact "
              "optimum against sched::BranchAndBoundScheduler.\n");
  return 0;
}
