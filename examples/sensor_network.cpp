// Sensor-network scenario — the paper's motivating application for RLE:
// sensors periodically report readings at a common data rate, so the
// uniform-rate special case applies. The example compares every scheduler
// on one topology and shows why the deterministic-SINR baselines are a
// bad idea on a fading channel.
//
//   ./examples/sensor_network [--sensors 400] [--alpha 3.0] [--trials 5000]
#include <cstdio>

#include "core/fadesched.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;

  util::CliParser cli("sensor_network",
                      "uniform-rate sensor reporting: all schedulers compared");
  auto& sensors = cli.AddInt("sensors", 400, "number of sensor links");
  auto& alpha = cli.AddDouble("alpha", 3.0, "path-loss exponent");
  auto& trials = cli.AddInt("trials", 5000, "Monte-Carlo trials");
  auto& seed = cli.AddInt("seed", 7, "topology seed");
  if (!cli.Parse(argc, argv)) return 0;

  rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
  const net::LinkSet links = net::MakeUniformScenario(
      static_cast<std::size_t>(sensors), {}, gen);
  channel::ChannelParams params;
  params.alpha = alpha;

  std::printf("sensor network: %zu uniform-rate links in 500x500, alpha=%s\n\n",
              links.Size(), util::FormatDouble(alpha).c_str());

  const core::Problem problem(links, params);
  util::CsvTable table({"algorithm", "scheduled", "claimed", "delivered",
                        "failures_per_slot", "min_success_prob", "feasible"});
  for (const std::string& name : sched::KnownSchedulers()) {
    if (util::StartsWith(name, "exact")) continue;  // 2^400 — no thanks
    const core::Solution solution = problem.Solve(name);
    sim::SimOptions sim_options;
    sim_options.trials = static_cast<std::size_t>(trials);
    const sim::SimResult sim_result =
        sim::SimulateSchedule(links, params, solution.schedule, sim_options);
    util::CsvRowBuilder(table)
        .Add(name)
        .Add(solution.schedule.size())
        .Add(util::FormatDouble(solution.claimed_rate, 1))
        .Add(util::FormatDouble(sim_result.throughput_per_trial.Mean(), 2))
        .Add(util::FormatDouble(sim_result.failed_per_trial.Mean(), 3))
        .Add(util::FormatDouble(solution.min_success_probability, 4))
        .Add(std::string(solution.fading_feasible ? "yes" : "no"))
        .Commit();
  }
  std::fputs(table.ToPrettyString().c_str(), stdout);
  std::printf(
      "\nReading the table: the fading-resistant schedulers (ldp, rle, dls,\n"
      "fading_greedy) keep min_success_prob >= 1-eps and lose essentially\n"
      "nothing of what they claim; approx_logn / approx_diversity claim\n"
      "much more rate but burn a chunk of it in failed transmissions.\n");
  return 0;
}
