// Quickstart: generate the paper's workload, schedule one slot with RLE,
// and report what the fading channel will deliver.
//
//   ./examples/quickstart [--links 200] [--alpha 3.0] [--epsilon 0.01]
#include <cstdio>

#include "core/fadesched.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;

  util::CliParser cli("quickstart", "minimal fadesched usage example");
  auto& num_links = cli.AddInt("links", 200, "number of links");
  auto& alpha = cli.AddDouble("alpha", 3.0, "path-loss exponent (> 2)");
  auto& epsilon = cli.AddDouble("epsilon", 0.01, "acceptable outage prob");
  auto& seed = cli.AddInt("seed", 42, "topology seed");
  if (!cli.Parse(argc, argv)) return 0;

  // 1. A synthetic topology: senders uniform in a 500x500 region, link
  //    lengths uniform in [5, 20] (the paper's setup).
  rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
  const net::LinkSet links = net::MakeUniformScenario(
      static_cast<std::size_t>(num_links), {}, gen);

  // 2. Channel model parameters.
  channel::ChannelParams params;
  params.alpha = alpha;
  params.epsilon = epsilon;

  // 3. Solve one slot with RLE (constant-factor approximation for uniform
  //    rates) and inspect the solution.
  const core::Problem problem(links, params);
  const core::Solution solution = problem.Solve("rle");

  std::printf("fadesched %s — quickstart\n", core::VersionString());
  std::printf("topology: %zu links, g(L)=%zu, lengths [%.1f, %.1f]\n",
              links.Size(), net::LengthDiversity(links), links.MinLength(),
              links.MaxLength());
  std::printf("schedule (%s): %zu links active, claimed rate %.1f\n",
              solution.algorithm.c_str(), solution.schedule.size(),
              solution.claimed_rate);
  std::printf("fading-feasible (Cor. 3.1): %s\n",
              solution.fading_feasible ? "yes" : "no");
  std::printf("expected delivered rate: %.3f   expected failures/slot: %.4f\n",
              solution.expected_throughput, solution.expected_failed);
  std::printf("worst link success probability: %.4f (target >= %.4f)\n",
              solution.min_success_probability, 1.0 - epsilon);

  // 4. Cross-check the closed-form numbers with a Monte-Carlo run.
  sim::SimOptions sim_options;
  sim_options.trials = 5000;
  const sim::SimResult sim_result =
      sim::SimulateSchedule(links, params, solution.schedule, sim_options);
  std::printf("monte-carlo (%zu trials): delivered %.3f ± %.3f, "
              "failures %.4f ± %.4f\n",
              sim_result.trials, sim_result.throughput_per_trial.Mean(),
              sim_result.throughput_per_trial.ConfidenceHalfWidth95(),
              sim_result.failed_per_trial.Mean(),
              sim_result.failed_per_trial.ConfidenceHalfWidth95());
  return 0;
}
