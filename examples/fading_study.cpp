// Fading channel study: a microscope on the Rayleigh model itself.
// For a single victim/interferer pair it traces the closed-form success
// probability (Theorem 3.1) against a Monte-Carlo estimate as the
// interferer approaches, and prints an SINR histogram at one geometry.
//
//   ./examples/fading_study [--alpha 3.0] [--trials 100000]
#include <cmath>
#include <cstdio>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "mathx/histogram.hpp"
#include "net/link_set.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;

  util::CliParser cli("fading_study",
                      "closed-form vs Monte-Carlo success probability for a "
                      "victim/interferer pair");
  auto& alpha = cli.AddDouble("alpha", 3.0, "path-loss exponent");
  auto& trials = cli.AddInt("trials", 100000, "Monte-Carlo trials per point");
  if (!cli.Parse(argc, argv)) return 0;

  channel::ChannelParams params;
  params.alpha = alpha;

  std::printf("victim link: (0,0) -> (1,0); interferer approaches along the "
              "x-axis (alpha=%s)\n\n",
              util::FormatDouble(alpha).c_str());

  util::CsvTable table({"interferer_distance", "closed_form_success",
                        "monte_carlo_success", "interference_factor",
                        "informed_at_eps_1pct"});
  for (double gap : {2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 40.0, 80.0}) {
    net::LinkSet links;
    links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
    links.Add(net::Link{{gap, 0}, {gap + 1, 0}, 1.0});
    const channel::InterferenceCalculator calc(links, params);
    const net::Schedule schedule{0, 1};
    const double closed_form =
        channel::SuccessProbability(calc, schedule, 0);

    sim::SimOptions options;
    options.trials = static_cast<std::size_t>(trials);
    options.seed = static_cast<std::uint64_t>(gap * 100);
    const sim::SimResult sim_result =
        sim::SimulateSchedule(links, params, schedule, options);

    util::CsvRowBuilder(table)
        .Add(util::FormatDouble(gap, 1))
        .Add(util::FormatDouble(closed_form, 5))
        .Add(util::FormatDouble(sim_result.link_success_rate[0], 5))
        .Add(util::FormatDouble(calc.Factor(1, 0), 6))
        .Add(std::string(channel::LinkIsInformed(calc, schedule, 0) ? "yes"
                                                                    : "no"))
        .Commit();
  }
  std::fputs(table.ToPrettyString().c_str(), stdout);

  // SINR distribution at a moderate geometry: exponential signal over
  // exponential interference has a heavy lower tail — the reason the
  // deterministic mean-SINR test is misleading.
  const double gap = 5.0;
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{gap, 0}, {gap + 1, 0}, 1.0});
  rng::Xoshiro256 gen(99);
  mathx::Histogram hist(0.0, 10.0, 20);
  const double signal_mean = params.MeanPower(1.0);
  const double interference_mean = params.MeanPower(gap - 1.0);
  for (int i = 0; i < 200000; ++i) {
    const double signal = rng::Exponential(gen, signal_mean);
    const double interference = rng::Exponential(gen, interference_mean);
    hist.Add(signal / interference / (signal_mean / interference_mean));
  }
  std::printf("\nSINR / mean-SINR distribution at interferer distance %s "
              "(deterministic model assumes a point mass at 1.0):\n%s",
              util::FormatDouble(gap, 1).c_str(), hist.ToAscii(48).c_str());
  std::printf("\nPr(SINR < mean-SINR) empirically: %.3f — the mass below the "
              "deterministic operating point is what the baselines ignore.\n",
              hist.EmpiricalCdf(1.0));
  return 0;
}
