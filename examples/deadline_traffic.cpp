// Deadline traffic: where fading-resistance actually pays.
//
// For throughput alone, aggressive deterministic scheduling can win (see
// bench/queue_delay_vs_load) — but deadline traffic cares about the
// probability that a *scheduled* transmission fails and must be retried,
// blowing its latency budget. This example runs the queue simulator under
// identical load for every scheduler and reports both worlds: raw
// delivery *and* per-transmission reliability / retry statistics.
//
//   ./examples/deadline_traffic [--links 200] [--load 0.03] [--slots 2000]
#include <cstdio>

#include "core/fadesched.hpp"
#include "sim/queue_sim.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;

  util::CliParser cli("deadline_traffic",
                      "reliability vs throughput under queue dynamics");
  auto& num_links = cli.AddInt("links", 200, "links in the network");
  auto& load = cli.AddDouble("load", 0.03, "arrival probability per link/slot");
  auto& slots = cli.AddInt("slots", 2000, "simulated slots");
  auto& seed = cli.AddInt("seed", 17, "topology seed");
  if (!cli.Parse(argc, argv)) return 0;

  rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
  const net::LinkSet links = net::MakeUniformScenario(
      static_cast<std::size_t>(num_links), {}, gen);
  channel::ChannelParams params;
  params.alpha = 3.0;

  std::printf("deadline traffic: %zu links, Bernoulli(%s) arrivals, "
              "%lld slots, eps = 1%%\n\n",
              links.Size(), util::FormatDouble(load, 3).c_str(),
              static_cast<long long>(slots));

  util::CsvTable table({"algorithm", "delivered", "mean_delay",
                        "p95_style_max_delay", "tx_failure_pct",
                        "retries_per_1k_packets"});
  for (const char* name :
       {"ldp", "rle", "dls", "fading_greedy", "approx_diversity",
        "graph_greedy"}) {
    const auto scheduler = sched::MakeScheduler(name);
    sim::QueueSimOptions options;
    options.num_slots = static_cast<std::size_t>(slots);
    options.warmup_slots = options.num_slots / 5;
    options.arrival_probability = load;
    const sim::QueueSimResult result =
        sim::RunQueueSimulation(links, params, *scheduler, options);
    const double retries =
        result.delivered == 0
            ? 0.0
            : 1000.0 * static_cast<double>(result.failed_transmissions) /
                  static_cast<double>(result.delivered);
    util::CsvRowBuilder(table)
        .Add(std::string(name))
        .Add(static_cast<long long>(result.delivered))
        .Add(util::FormatDouble(result.delay_slots.Mean(), 2))
        .Add(util::FormatDouble(result.delay_slots.Max(), 0))
        .Add(util::FormatDouble(100.0 * result.FailureRate(), 3))
        .Add(util::FormatDouble(retries, 1))
        .Commit();
  }
  std::fputs(table.ToPrettyString().c_str(), stdout);
  std::printf(
      "\nHow to read this: delivered/delay measure raw queue performance —\n"
      "the aggressive schedulers win there. tx_failure_pct is the chance a\n"
      "scheduled transmission fails and must be retried: the fading-\n"
      "resistant schedulers hold it below eps = 1%% by construction, the\n"
      "deterministic and graph baselines do not. For traffic with per-\n"
      "transmission deadlines, that column IS the SLA.\n");
  return 0;
}
