// End-to-end exit-code contract of fadesched_cli, exercised by shelling
// out to the real binary (path injected by CMake as FADESCHED_CLI_PATH):
// 0 success, 1 runtime failure, 2 usage error, 3 watchdog timeout or
// interruption. These are what CI scripts and the resume workflow branch
// on, so they are pinned here.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace fadesched {
namespace {

std::string Cli() { return FADESCHED_CLI_PATH; }

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "fadesched_cli_exit_" + name;
}

int RunCommand(const std::string& command) {
  const int status = std::system((command + " >/dev/null 2>&1").c_str());
  EXPECT_NE(status, -1) << command;
  EXPECT_TRUE(WIFEXITED(status)) << command << " died on a signal";
  return WEXITSTATUS(status);
}

TEST(CliExitCodesTest, HelpIsSuccess) {
  EXPECT_EQ(RunCommand(Cli() + " --help"), util::kExitOk);
  EXPECT_EQ(RunCommand(Cli() + " generate --help"), util::kExitOk);
  EXPECT_EQ(RunCommand(Cli() + " sweep --help"), util::kExitOk);
  EXPECT_EQ(RunCommand(Cli() + " list"), util::kExitOk);
}

TEST(CliExitCodesTest, UsageErrorsExitTwo) {
  EXPECT_EQ(RunCommand(Cli()), util::kExitUsage);
  EXPECT_EQ(RunCommand(Cli() + " frobnicate"), util::kExitUsage);
  EXPECT_EQ(RunCommand(Cli() + " generate --no-such-flag 1"),
            util::kExitUsage);
  EXPECT_EQ(RunCommand(Cli() + " solve --trials"), util::kExitUsage);
}

TEST(CliExitCodesTest, RuntimeFailuresExitOne) {
  EXPECT_EQ(RunCommand(Cli() + " info --in " + TempPath("absent.csv")),
            util::kExitRuntime);
  // A structurally valid flag with a semantically invalid value.
  const std::string links = TempPath("links_bad.csv");
  ASSERT_EQ(RunCommand(Cli() + " generate --links 20 --out " + links),
            util::kExitOk);
  EXPECT_EQ(RunCommand(Cli() + " solve --in " + links +
                       " --algorithm no_such_scheduler"),
            util::kExitRuntime);
  std::remove(links.c_str());
}

TEST(CliExitCodesTest, WatchdogTimeoutExitsThree) {
  const std::string links = TempPath("links_timeout.csv");
  ASSERT_EQ(RunCommand(Cli() + " generate --links 60 --out " + links),
            util::kExitOk);
  // A deadline that has already expired when the simulation starts.
  EXPECT_EQ(RunCommand(Cli() + " simulate --in " + links +
                       " --algorithm rle --trials 200000"
                       " --deadline 0.000000001"),
            util::kExitInterrupted);
  // Sanity: without the deadline the same simulation succeeds.
  EXPECT_EQ(RunCommand(Cli() + " simulate --in " + links +
                       " --algorithm rle --trials 2000"),
            util::kExitOk);
  std::remove(links.c_str());
}

TEST(CliExitCodesTest, SweepResumeRoundTripViaCli) {
  const std::string ck = TempPath("sweep.ck");
  const std::string full = TempPath("sweep_full.csv");
  const std::string resumed = TempPath("sweep_resumed.csv");
  std::remove(ck.c_str());
  const std::string base = Cli() +
      " sweep --x links --xs 30,45 --algorithms ldp,rle"
      " --seeds 2 --trials 60 --deterministic";

  ASSERT_EQ(RunCommand(base + " --out " + full), util::kExitOk);

  // Crash drill: SIGKILL right after the first point checkpoints. The
  // shell in between reports the signal as exit status 128 + SIGKILL.
  const int status = std::system(
      (base + " --checkpoint " + ck + " --crash-after-point 0 --out " +
       resumed + " >/dev/null 2>&1").c_str());
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 128 + SIGKILL);

  ASSERT_EQ(RunCommand(base + " --checkpoint " + ck + " --resume --out " +
                       resumed),
            util::kExitOk);
  EXPECT_EQ(RunCommand("cmp -s " + full + " " + resumed), 0)
      << "resumed CSV differs from the uninterrupted run";
  std::remove(full.c_str());
  std::remove(resumed.c_str());
}

TEST(CliExitCodesTest, QueueSimSweepTraceAndErrors) {
  const std::string links = TempPath("links_qsim.csv");
  const std::string out = TempPath("qsim.csv");
  ASSERT_EQ(RunCommand(Cli() + " generate --links 15 --out " + links),
            util::kExitOk);

  EXPECT_EQ(RunCommand(Cli() + " queue-sim --in " + links +
                       " --slots 60 --warmup 10 --rates 0.05"
                       " --algorithms ldp --out " + out),
            util::kExitOk);
  EXPECT_EQ(RunCommand("test -s " + out), 0) << "no CSV written";

  EXPECT_EQ(RunCommand(Cli() + " queue-sim --in " + links +
                       " --slots 40 --rates 0.05 --algorithms ldp --trace"),
            util::kExitOk);
  EXPECT_EQ(RunCommand(Cli() + " queue-sim --in " + links +
                       " --slots 60 --frontier --frontier-iters 2"
                       " --algorithms ldp"),
            util::kExitOk);

  // --trace needs exactly one algorithm and rate; a bogus engine mode is
  // a runtime failure, an unknown flag a usage error.
  EXPECT_EQ(RunCommand(Cli() + " queue-sim --in " + links +
                       " --slots 40 --rates 0.05 --algorithms ldp,rle"
                       " --trace"),
            util::kExitRuntime);
  EXPECT_EQ(RunCommand(Cli() + " queue-sim --in " + links +
                       " --mode lukewarm"),
            util::kExitRuntime);
  EXPECT_EQ(RunCommand(Cli() + " queue-sim --no-such-flag"),
            util::kExitUsage);
  std::remove(links.c_str());
  std::remove(out.c_str());
}

TEST(CliExitCodesTest, DynamicFuzzSmokeIsClean) {
  EXPECT_EQ(RunCommand(Cli() + " fuzz --dynamic --iters 3 --max-links 6"
                       " --max-slots 60 --log-every 0"),
            util::kExitOk);
}

}  // namespace
}  // namespace fadesched
