#include "power/assignment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "net/scenario_io.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/monte_carlo.hpp"
#include "util/check.hpp"

namespace fadesched::power {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.05;
  return params;
}

net::LinkSet MixedLengths() {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {2, 0}, 1.0});
  links.Add(net::Link{{100, 0}, {108, 0}, 1.0});
  links.Add(net::Link{{200, 0}, {216, 0}, 1.0});
  return links;
}

TEST(PolicyNameTest, AllNamesDistinct) {
  EXPECT_STREQ(PolicyName(PowerPolicy::kUniform), "uniform");
  EXPECT_STREQ(PolicyName(PowerPolicy::kLinear), "linear");
  EXPECT_STREQ(PolicyName(PowerPolicy::kSquareRoot), "sqrt");
}

TEST(AssignPowerTest, UniformClearsOverrides) {
  const net::LinkSet assigned =
      AssignPower(MixedLengths(), PaperParams(), PowerPolicy::kUniform, 2.0);
  EXPECT_TRUE(assigned.HasUniformTxPower());
}

TEST(AssignPowerTest, LinearCompensatesPathLossExactly) {
  // P_i ∝ d^α: the received signal mean P_i·d^{-α} is equal across links.
  const auto params = PaperParams();
  const net::LinkSet links = MixedLengths();
  const net::LinkSet assigned =
      AssignPower(links, params, PowerPolicy::kLinear, 4.0);
  const double received_0 =
      assigned.TxPower(0) * std::pow(assigned.Length(0), -params.alpha);
  const double received_2 =
      assigned.TxPower(2) * std::pow(assigned.Length(2), -params.alpha);
  EXPECT_NEAR(received_0, received_2, 1e-12);
}

TEST(AssignPowerTest, LongestLinkGetsMaxPower) {
  for (PowerPolicy policy :
       {PowerPolicy::kLinear, PowerPolicy::kSquareRoot}) {
    const net::LinkSet assigned =
        AssignPower(MixedLengths(), PaperParams(), policy, 7.5);
    EXPECT_DOUBLE_EQ(assigned.TxPower(2), 7.5);
    EXPECT_LT(assigned.TxPower(0), 7.5);
  }
}

TEST(AssignPowerTest, SqrtLiesBetweenUniformAndLinear) {
  const net::LinkSet linear =
      AssignPower(MixedLengths(), PaperParams(), PowerPolicy::kLinear, 1.0);
  const net::LinkSet sqrt_p = AssignPower(MixedLengths(), PaperParams(),
                                          PowerPolicy::kSquareRoot, 1.0);
  // Shortest link: linear punishes it hardest, sqrt in between.
  EXPECT_LT(linear.TxPower(0), sqrt_p.TxPower(0));
  EXPECT_LT(sqrt_p.TxPower(0), 1.0);
}

TEST(AssignPowerTest, InvalidMaxPowerRejected) {
  EXPECT_THROW(AssignPower(MixedLengths(), PaperParams(),
                           PowerPolicy::kLinear, 0.0),
               util::CheckFailure);
}

TEST(AssignPowerTest, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(AssignPower(net::LinkSet{}, PaperParams(),
                          PowerPolicy::kLinear, 1.0)
                  .Empty());
}

TEST(PowerModelTest, TxPowerRatioReflectsAssignment) {
  const auto params = PaperParams();
  const net::LinkSet uniform =
      AssignPower(MixedLengths(), params, PowerPolicy::kUniform, 1.0);
  EXPECT_DOUBLE_EQ(uniform.TxPowerRatio(params.tx_power), 1.0);
  const net::LinkSet linear =
      AssignPower(MixedLengths(), params, PowerPolicy::kLinear, 1.0);
  // lengths 2 and 16: ratio (16/2)^3 = 512.
  EXPECT_NEAR(linear.TxPowerRatio(params.tx_power), 512.0, 1e-9);
}

TEST(PowerModelTest, FactorUsesPowerRatio) {
  // Doubling the interferer's power must increase its factor; doubling
  // the victim's own power must decrease it.
  const auto params = PaperParams();
  net::LinkSet base;
  base.Add(net::Link{{0, 0}, {1, 0}, 1.0, 1.0});
  base.Add(net::Link{{10, 0}, {11, 0}, 1.0, 1.0});
  net::LinkSet strong_interferer;
  strong_interferer.Add(net::Link{{0, 0}, {1, 0}, 1.0, 1.0});
  strong_interferer.Add(net::Link{{10, 0}, {11, 0}, 1.0, 4.0});
  net::LinkSet strong_victim;
  strong_victim.Add(net::Link{{0, 0}, {1, 0}, 1.0, 4.0});
  strong_victim.Add(net::Link{{10, 0}, {11, 0}, 1.0, 1.0});
  const channel::InterferenceCalculator calc_base(base, params);
  const channel::InterferenceCalculator calc_interferer(strong_interferer,
                                                        params);
  const channel::InterferenceCalculator calc_victim(strong_victim, params);
  EXPECT_GT(calc_interferer.Factor(1, 0), calc_base.Factor(1, 0));
  EXPECT_LT(calc_victim.Factor(1, 0), calc_base.Factor(1, 0));
}

TEST(PowerModelTest, MonteCarloMatchesClosedFormUnderPowerControl) {
  rng::Xoshiro256 gen(1);
  net::UniformScenarioParams sp;
  sp.region_size = 150.0;
  const auto params = PaperParams();
  const net::LinkSet assigned =
      AssignPower(net::MakeUniformScenario(10, sp, gen), params,
                  PowerPolicy::kSquareRoot, 2.0);
  const channel::InterferenceCalculator calc(assigned, params);
  net::Schedule schedule;
  for (net::LinkId i = 0; i < assigned.Size(); ++i) schedule.push_back(i);
  sim::SimOptions options;
  options.trials = 50000;
  const sim::SimResult result =
      sim::SimulateSchedule(assigned, params, schedule, options);
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    EXPECT_NEAR(result.link_success_rate[k],
                channel::SuccessProbability(calc, schedule, schedule[k]),
                0.02)
        << "link " << k;
  }
}

TEST(PowerModelTest, SchedulersStayFeasibleUnderPowerControl) {
  const auto params = PaperParams();
  for (PowerPolicy policy :
       {PowerPolicy::kLinear, PowerPolicy::kSquareRoot}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      rng::Xoshiro256 gen(seed);
      const net::LinkSet assigned = AssignPower(
          net::MakeUniformScenario(150, {}, gen), params, policy, 2.0);
      const channel::InterferenceCalculator calc(assigned, params);
      for (const char* name : {"ldp", "rle", "fading_greedy"}) {
        const auto result =
            sched::MakeScheduler(name)->Schedule(assigned, params);
        EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
            << name << " policy=" << PolicyName(policy) << " seed=" << seed;
      }
    }
  }
}

TEST(PowerModelTest, ScenarioIoRoundTripsPowerColumn) {
  const auto params = PaperParams();
  const net::LinkSet assigned =
      AssignPower(MixedLengths(), params, PowerPolicy::kSquareRoot, 3.0);
  const net::LinkSet parsed = net::FromCsv(net::ToCsv(assigned));
  ASSERT_EQ(parsed.Size(), assigned.Size());
  for (net::LinkId i = 0; i < assigned.Size(); ++i) {
    EXPECT_NEAR(parsed.TxPower(i), assigned.TxPower(i), 1e-9);
  }
}

TEST(PowerModelTest, UniformFilesHaveNoPowerColumn) {
  const net::LinkSet links = MixedLengths();
  const util::CsvTable table = net::ToCsv(links);
  EXPECT_FALSE(table.HasColumn("tx_power"));
}

}  // namespace
}  // namespace fadesched::power
