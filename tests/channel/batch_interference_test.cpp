#include "channel/batch_interference.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "mathx/ulp.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fadesched::channel {
namespace {

// The fast kernel reorders the floating-point expression, so engine
// factors may differ from the calculator by rounding noise. Anything
// beyond a handful of ULPs would indicate a real formula mismatch.
constexpr std::uint64_t kUlpTolerance = 16;

net::LinkSet RandomLinks(std::uint64_t seed, std::size_t n = 40) {
  rng::Xoshiro256 gen(seed);
  return net::MakeUniformScenario(n, {}, gen);
}

TEST(HalfPowerKernelTest, MatchesPowForQuarterIntegerAlphas) {
  for (double alpha : {2.25, 2.5, 2.75, 3.0, 3.5, 4.0, 5.0, 6.0}) {
    const HalfPowerKernel kernel(alpha);
    for (double d : {0.3, 1.0, 7.5, 123.0, 4096.0}) {
      const double got = kernel.DistPowAlpha(d * d);
      const double want = std::pow(d, alpha);
      EXPECT_LE(mathx::UlpDistance(got, want), kUlpTolerance)
          << "alpha=" << alpha << " d=" << d << " got=" << got
          << " want=" << want;
    }
  }
}

TEST(HalfPowerKernelTest, GenericAlphaFallsBackToPow) {
  const double alpha = 2.87;  // not a quarter integer
  const HalfPowerKernel kernel(alpha);
  for (double d : {0.5, 2.0, 99.0}) {
    EXPECT_DOUBLE_EQ(kernel.DistPowAlpha(d * d),
                     std::pow(d * d, alpha / 2.0));
  }
}

TEST(BatchInterferenceTest, CalculatorBackendIsBitIdentical) {
  const net::LinkSet links = RandomLinks(11);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  EngineOptions options;
  options.backend = FactorBackend::kCalculator;
  const InterferenceEngine engine(links, params, options);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_DOUBLE_EQ(engine.Factor(i, j), calc.Factor(i, j));
    }
  }
}

TEST(BatchInterferenceTest, TablesBackendMatchesCalculatorToTheUlp) {
  const net::LinkSet links = RandomLinks(12);
  ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 2.0;
  const InterferenceCalculator calc(links, params);
  const InterferenceEngine engine(links, params, {});
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(mathx::UlpDistance(engine.Factor(i, j), calc.Factor(i, j)),
                kUlpTolerance)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(BatchInterferenceTest, MatrixBackendMatchesCalculatorToTheUlp) {
  const net::LinkSet links = RandomLinks(13);
  ChannelParams params;
  params.alpha = 4.0;
  const InterferenceCalculator calc(links, params);
  EngineOptions options;
  options.backend = FactorBackend::kMatrix;
  const InterferenceEngine engine(links, params, options);
  ASSERT_NE(engine.FactorMatrix(), nullptr);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(mathx::UlpDistance(engine.Factor(i, j), calc.Factor(i, j)),
                kUlpTolerance);
    }
  }
}

TEST(BatchInterferenceTest, AffectanceMatchesDeterministicSinr) {
  const net::LinkSet links = RandomLinks(14);
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  const InterferenceEngine engine(links, params, {});
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(
          mathx::UlpDistance(engine.Affectance(i, j), sinr.Affectance(i, j)),
          kUlpTolerance);
    }
  }
}

TEST(BatchInterferenceTest, NoiseFactorIsExactAcrossBackends) {
  const net::LinkSet links = RandomLinks(15);
  ChannelParams params;
  params.noise_power = 1e-6;
  const InterferenceCalculator calc(links, params);
  for (FactorBackend backend : {FactorBackend::kCalculator,
                                FactorBackend::kTables,
                                FactorBackend::kMatrix}) {
    EngineOptions options;
    options.backend = backend;
    const InterferenceEngine engine(links, params, options);
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_DOUBLE_EQ(engine.NoiseFactor(j), calc.NoiseFactor(j));
    }
  }
}

TEST(BatchInterferenceTest, MeanRxPowerMatchesPathLossFormula) {
  const net::LinkSet links = RandomLinks(16, 20);
  ChannelParams params;
  params.alpha = 3.0;
  const InterferenceEngine engine(links, params, {});
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      const double d = geom::Distance(links.Sender(i), links.Receiver(j));
      const double want =
          links.EffectiveTxPower(i, params.tx_power) * std::pow(d, -3.0);
      EXPECT_LE(mathx::UlpDistance(engine.MeanRxPower(i, j), want),
                kUlpTolerance);
    }
  }
}

TEST(BatchInterferenceTest, MeanRxPowerRejectsCoincidentSenderReceiver) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{1, 0}, {2, 0}, 1.0});  // sender 1 on receiver 0
  ChannelParams params;
  const InterferenceEngine engine(links, params, {});
  EXPECT_THROW(static_cast<void>(engine.MeanRxPower(1, 0)),
               util::CheckFailure);
}

TEST(TiledBuildTest, MatchesSerialMatrixToTheUlp) {
  const net::LinkSet links = RandomLinks(17, 60);
  ChannelParams params;
  const InterferenceMatrix serial(links, params);
  const InterferenceMatrix tiled =
      BuildInterferenceMatrixTiled(links, params, {});
  ASSERT_EQ(tiled.Size(), serial.Size());
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(mathx::UlpDistance(tiled.Factor(i, j), serial.Factor(i, j)),
                kUlpTolerance);
    }
  }
}

TEST(TiledBuildTest, PoolAndTileSizeDoNotChangeBits) {
  const net::LinkSet links = RandomLinks(18, 70);
  ChannelParams params;
  const InterferenceMatrix reference =
      BuildInterferenceMatrixTiled(links, params, {});
  util::ThreadPool pool(4);
  for (std::size_t tile_rows : {1u, 7u, 16u, 128u}) {
    TiledBuildOptions options;
    options.pool = &pool;
    options.tile_rows = tile_rows;
    const InterferenceMatrix parallel =
        BuildInterferenceMatrixTiled(links, params, options);
    for (net::LinkId i = 0; i < links.Size(); ++i) {
      for (net::LinkId j = 0; j < links.Size(); ++j) {
        EXPECT_DOUBLE_EQ(parallel.Factor(i, j), reference.Factor(i, j))
            << "tile_rows=" << tile_rows;
      }
    }
  }
}

TEST(TiledBuildTest, GenerousCutoffKeepsEveryEntry) {
  const net::LinkSet links = RandomLinks(19, 50);
  ChannelParams params;
  const InterferenceMatrix exact =
      BuildInterferenceMatrixTiled(links, params, {});
  TiledBuildOptions options;
  options.cutoff_radius = 1e9;  // farther than any pair in the region
  const InterferenceMatrix cut =
      BuildInterferenceMatrixTiled(links, params, options);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_DOUBLE_EQ(cut.Factor(i, j), exact.Factor(i, j));
    }
  }
  EXPECT_DOUBLE_EQ(cut.CertifiedSlack(), 0.0);
}

TEST(TiledBuildTest, CertifiedSlackBoundsDiscardedInterference) {
  const net::LinkSet links = RandomLinks(20, 80);
  ChannelParams params;
  const InterferenceMatrix exact =
      BuildInterferenceMatrixTiled(links, params, {});
  TiledBuildOptions options;
  options.cutoff_radius = 150.0;  // drops a real share of the 500×500 region
  const InterferenceMatrix cut =
      BuildInterferenceMatrixTiled(links, params, options);
  EXPECT_GT(cut.CertifiedSlack(), 0.0);
  EXPECT_DOUBLE_EQ(cut.CutoffRadius(), 150.0);
  std::vector<net::LinkId> all(links.Size());
  std::iota(all.begin(), all.end(), net::LinkId{0});
  for (net::LinkId j = 0; j < links.Size(); ++j) {
    const double dropped = exact.SumFactor(all, j) - cut.SumFactor(all, j);
    EXPECT_GE(dropped, -1e-12) << "cutoff must only remove interference";
    EXPECT_LE(dropped, cut.CertifiedSlack() + 1e-12) << "victim " << j;
  }
}

TEST(IncrementalFeasibilityTest, SumTracksEngineSumFactor) {
  const net::LinkSet links = RandomLinks(21, 30);
  ChannelParams params;
  const InterferenceEngine engine(links, params, {});
  IncrementalFeasibility acc(engine);
  std::vector<net::LinkId> active;
  for (net::LinkId i = 0; i < links.Size(); i += 2) {
    acc.Add(i);
    active.push_back(i);
  }
  for (net::LinkId j = 0; j < links.Size(); ++j) {
    EXPECT_NEAR(acc.Sum(j),
                engine.NoiseFactor(j) + engine.SumFactor(active, j), 1e-12);
  }
}

TEST(IncrementalFeasibilityTest, RemoveUndoesAdd) {
  const net::LinkSet links = RandomLinks(22, 25);
  ChannelParams params;
  const InterferenceEngine engine(links, params, {});
  IncrementalFeasibility acc(engine);
  acc.Add(0);
  acc.Add(1);
  std::vector<double> before(links.Size());
  for (net::LinkId j = 0; j < links.Size(); ++j) before[j] = acc.Sum(j);
  acc.Add(2);
  acc.Remove(2);
  for (net::LinkId j = 0; j < links.Size(); ++j) {
    EXPECT_NEAR(acc.Sum(j), before[j], 1e-13) << "victim " << j;
  }
  EXPECT_EQ(acc.Active().size(), 2u);
}

TEST(IncrementalFeasibilityTest, RemoveWithoutAddThrows) {
  const net::LinkSet links = RandomLinks(23, 10);
  ChannelParams params;
  const InterferenceEngine engine(links, params, {});
  IncrementalFeasibility acc(engine);
  EXPECT_THROW(acc.Remove(3), util::CheckFailure);
}

TEST(IncrementalFeasibilityTest, GatedAddSkipsDeadVictims) {
  const net::LinkSet links = RandomLinks(24, 12);
  ChannelParams params;
  const InterferenceEngine engine(links, params, {});
  IncrementalFeasibility acc(engine);
  std::vector<char> alive(links.Size(), 1);
  alive[3] = 0;
  alive[7] = 0;
  const double sum3 = acc.Sum(3);
  const double sum7 = acc.Sum(7);
  acc.Add(0, alive);
  EXPECT_DOUBLE_EQ(acc.Sum(3), sum3);  // dead rows stay stale by contract
  EXPECT_DOUBLE_EQ(acc.Sum(7), sum7);
  EXPECT_GT(acc.Sum(1), engine.NoiseFactor(1));
}

TEST(IncrementalFeasibilityTest, SumWithPreviewsWithoutCommitting) {
  const net::LinkSet links = RandomLinks(25, 15);
  ChannelParams params;
  const InterferenceEngine engine(links, params, {});
  IncrementalFeasibility acc(engine);
  acc.Add(0);
  const double preview = acc.SumWith(1, 2);
  EXPECT_NEAR(preview, acc.Sum(2) + engine.Factor(1, 2), 1e-15);
  // The victim itself contributes nothing.
  EXPECT_DOUBLE_EQ(acc.SumWith(2, 2), acc.Sum(2));
  // No commit happened.
  EXPECT_EQ(acc.Active().size(), 1u);
}

TEST(IncrementalFeasibilityTest, AffectanceQuantityUsesDeterministicModel) {
  const net::LinkSet links = RandomLinks(26, 18);
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  const InterferenceEngine engine(links, params, {});
  IncrementalFeasibility acc(engine,
                             IncrementalFeasibility::Quantity::kAffectance);
  acc.Add(0);
  acc.Add(5);
  for (net::LinkId j = 0; j < links.Size(); ++j) {
    if (j == 0 || j == 5) continue;
    const double want = sinr.NoiseAffectance(j) + sinr.Affectance(0, j) +
                        sinr.Affectance(5, j);
    EXPECT_NEAR(acc.Sum(j), want, 1e-12);
  }
}

}  // namespace
}  // namespace fadesched::channel
