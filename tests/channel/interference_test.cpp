#include "channel/interference.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::channel {
namespace {

net::LinkSet TwoLinkLine(double gap) {
  // Link 0: (0,0)->(1,0); link 1: (gap,0)->(gap+1,0).
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{gap, 0}, {gap + 1, 0}, 1.0});
  return links;
}

TEST(InterferenceCalculatorTest, SelfFactorIsZero) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  EXPECT_DOUBLE_EQ(calc.Factor(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(calc.Factor(1, 1), 0.0);
}

TEST(InterferenceCalculatorTest, FactorMatchesFormula17) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 2.0;
  const InterferenceCalculator calc(links, params);
  // Sender 1 at x=10, receiver 0 at x=1: d_ij = 9, d_jj = 1.
  const double expected = std::log1p(2.0 * std::pow(1.0 / 9.0, 3.0));
  EXPECT_NEAR(calc.Factor(1, 0), expected, 1e-15);
  // Sender 0 at x=0, receiver 1 at x=11: d_ij = 11, d_jj = 1.
  const double expected_10 = std::log1p(2.0 * std::pow(1.0 / 11.0, 3.0));
  EXPECT_NEAR(calc.Factor(0, 1), expected_10, 1e-15);
}

TEST(InterferenceCalculatorTest, FactorDecreasesWithDistance) {
  ChannelParams params;
  double prev = 1e9;
  for (double gap : {5.0, 10.0, 20.0, 40.0}) {
    const net::LinkSet links = TwoLinkLine(gap);
    const InterferenceCalculator calc(links, params);
    const double f = calc.Factor(1, 0);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(InterferenceCalculatorTest, FactorGrowsWithVictimLength) {
  // Longer victim links are more fragile: d_jj ↑ ⇒ f ↑.
  ChannelParams params;
  net::LinkSet short_victim;
  short_victim.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  short_victim.Add(net::Link{{50, 0}, {51, 0}, 1.0});
  net::LinkSet long_victim;
  long_victim.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  long_victim.Add(net::Link{{50, 0}, {51, 0}, 1.0});
  const InterferenceCalculator calc_short(short_victim, params);
  const InterferenceCalculator calc_long(long_victim, params);
  EXPECT_GT(calc_long.Factor(1, 0), calc_short.Factor(1, 0));
}

TEST(InterferenceCalculatorTest, FactorGrowsWithGammaTh) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams lo;
  lo.gamma_th = 0.5;
  ChannelParams hi;
  hi.gamma_th = 4.0;
  EXPECT_GT(InterferenceCalculator(links, hi).Factor(1, 0),
            InterferenceCalculator(links, lo).Factor(1, 0));
}

TEST(InterferenceCalculatorTest, HigherAlphaShrinksFarInterference) {
  const net::LinkSet links = TwoLinkLine(10.0);  // d_ij/d_jj = 9 > 1
  ChannelParams lo;
  lo.alpha = 2.5;
  ChannelParams hi;
  hi.alpha = 5.0;
  EXPECT_LT(InterferenceCalculator(links, hi).Factor(1, 0),
            InterferenceCalculator(links, lo).Factor(1, 0));
}

TEST(InterferenceCalculatorTest, FactorFromPointMatchesFactor) {
  const net::LinkSet links = TwoLinkLine(7.0);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  EXPECT_DOUBLE_EQ(calc.FactorFromPoint(links.Sender(1), 0),
                   calc.Factor(1, 0));
}

TEST(InterferenceCalculatorTest, TinyFarFactorStaysPositive) {
  // log1p keeps far-field factors positive rather than flushing to zero.
  const net::LinkSet links = TwoLinkLine(1e6);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  EXPECT_GT(calc.Factor(1, 0), 0.0);
}

TEST(InterferenceCalculatorTest, CoincidentSenderAndReceiverRejected) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{1, 0}, {2, 0}, 1.0});  // sender 1 on receiver 0
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  EXPECT_THROW(calc.Factor(1, 0), util::CheckFailure);
}

TEST(InterferenceCalculatorTest, SumFactorSkipsVictim) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  const std::vector<net::LinkId> schedule{0, 1};
  EXPECT_DOUBLE_EQ(calc.SumFactor(schedule, 0), calc.Factor(1, 0));
  EXPECT_DOUBLE_EQ(calc.SumFactor(schedule, 1), calc.Factor(0, 1));
}

TEST(InterferenceMatrixTest, MatchesCalculatorEverywhere) {
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(40, {}, gen);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  const InterferenceMatrix matrix(links, params);
  ASSERT_EQ(matrix.Size(), links.Size());
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_DOUBLE_EQ(matrix.Factor(i, j), calc.Factor(i, j));
    }
  }
}

TEST(InterferenceMatrixTest, SumFactorMatchesCalculator) {
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(30, {}, gen);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  const InterferenceMatrix matrix(links, params);
  std::vector<net::LinkId> schedule(links.Size());
  std::iota(schedule.begin(), schedule.end(), net::LinkId{0});
  for (net::LinkId j = 0; j < links.Size(); ++j) {
    EXPECT_NEAR(matrix.SumFactor(schedule, j), calc.SumFactor(schedule, j),
                1e-12);
  }
}

TEST(InterferenceCalculatorTest, InvalidParamsRejectedAtConstruction) {
  const net::LinkSet links = TwoLinkLine(5.0);
  ChannelParams params;
  params.alpha = 1.0;
  EXPECT_THROW(InterferenceCalculator(links, params), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::channel
