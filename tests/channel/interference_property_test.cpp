// Property tests for the Rayleigh interference factor (Corollary 3.1):
// structural invariants that must hold on every instance, checked over
// seeded random scenarios rather than hand-picked examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "channel/batch_interference.hpp"
#include "channel/interference.hpp"
#include "mathx/ulp.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"

namespace fadesched::channel {
namespace {

TEST(FactorPropertyTest, DiagonalIsZeroOnRandomScenarios) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(30, {}, gen);
    ChannelParams params;
    params.alpha = 2.5 + 0.25 * static_cast<double>(seed % 7);
    const InterferenceEngine engine(links, params, {});
    const InterferenceCalculator calc(links, params);
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_DOUBLE_EQ(engine.Factor(j, j), 0.0);
      EXPECT_DOUBLE_EQ(calc.Factor(j, j), 0.0);
    }
  }
}

TEST(FactorPropertyTest, StrictlyDecreasingInSenderVictimDistance) {
  // Fix the victim link and walk one interfering sender away from its
  // receiver: f must fall strictly at every step, for several α.
  for (double alpha : {2.5, 3.0, 3.75, 4.0}) {
    ChannelParams params;
    params.alpha = alpha;
    double prev = std::numeric_limits<double>::infinity();
    for (double gap = 3.0; gap <= 3000.0; gap *= 1.7) {
      net::LinkSet links;
      links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
      links.Add(net::Link{{gap, 0}, {gap + 1, 0}, 1.0});
      const InterferenceEngine engine(links, params, {});
      const double f = engine.Factor(1, 0);
      EXPECT_LT(f, prev) << "alpha=" << alpha << " gap=" << gap;
      EXPECT_GT(f, 0.0);
      prev = f;
    }
  }
}

TEST(FactorPropertyTest, PowerRatioScalingMatchesClosedForm) {
  // Corollary 3.1: f_ij = ln(1 + γ_th·(P_i/P_j)·(d_jj/d_ij)^α). Doubling
  // the interferer's power must move the factor exactly to the closed form
  // with the doubled ratio, for both the calculator and the fast tables.
  ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 1.5;
  params.tx_power = 2.0;
  for (double power_scale : {0.25, 0.5, 1.0, 2.0, 8.0}) {
    net::LinkSet links;
    links.Add(net::Link{{0, 0}, {4, 0}, 1.0, params.tx_power});
    links.Add(net::Link{{30, 0}, {31, 0}, 1.0,
                        power_scale * params.tx_power});
    const double d_jj = 4.0;
    const double d_ij = 30.0 - 4.0;
    const double closed_form = std::log1p(
        params.gamma_th * power_scale * std::pow(d_jj / d_ij, params.alpha));
    const InterferenceCalculator calc(links, params);
    const InterferenceEngine engine(links, params, {});
    EXPECT_NEAR(calc.Factor(1, 0), closed_form, 1e-15 * closed_form + 1e-18);
    EXPECT_NEAR(engine.Factor(1, 0), closed_form, 1e-15 * closed_form + 1e-18);
  }
}

TEST(FactorPropertyTest, SumFactorIsPermutationInvariant) {
  // Neumaier compensation makes the per-victim sum order-robust: any
  // permutation of the schedule must agree to a couple of ULPs (plain
  // left-to-right summation drifts far beyond that on 200 terms).
  rng::Xoshiro256 gen(99);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  ChannelParams params;
  const InterferenceEngine engine(links, params, {});
  std::vector<net::LinkId> schedule(links.Size());
  std::iota(schedule.begin(), schedule.end(), net::LinkId{0});
  std::vector<double> reference(links.Size());
  for (net::LinkId j = 0; j < links.Size(); ++j) {
    reference[j] = engine.SumFactor(schedule, j);
  }
  rng::Xoshiro256 shuffle_gen(100);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t k = schedule.size() - 1; k > 0; --k) {
      const std::size_t swap_with = shuffle_gen.Next() % (k + 1);
      std::swap(schedule[k], schedule[swap_with]);
    }
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(
          mathx::UlpDistance(engine.SumFactor(schedule, j), reference[j]), 2u)
          << "victim " << j << " round " << round;
    }
  }
}

TEST(FactorPropertyTest, FactorIsTheLogOnePlusAffectance) {
  // The deterministic affectance is exactly the log1p argument of the
  // Rayleigh factor — the identity that lets one engine serve both models.
  rng::Xoshiro256 gen(7);
  const net::LinkSet links = net::MakeUniformScenario(25, {}, gen);
  ChannelParams params;
  params.gamma_th = 2.0;
  const InterferenceEngine engine(links, params, {});
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(engine.Factor(i, j),
                       std::log1p(engine.Affectance(i, j)));
    }
  }
}

}  // namespace
}  // namespace fadesched::channel
