#include "channel/deterministic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::channel {
namespace {

net::LinkSet TwoLinkLine(double gap) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{gap, 0}, {gap + 1, 0}, 1.0});
  return links;
}

TEST(DeterministicSinrTest, SelfAffectanceIsZero) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  EXPECT_DOUBLE_EQ(sinr.Affectance(0, 0), 0.0);
}

TEST(DeterministicSinrTest, AffectanceMatchesFormula) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 2.0;
  const DeterministicSinr sinr(links, params);
  // a_{1,0} = γ (d_00 / d_10)^α = 2 · (1/9)³.
  EXPECT_NEAR(sinr.Affectance(1, 0), 2.0 * std::pow(1.0 / 9.0, 3.0), 1e-15);
}

TEST(DeterministicSinrTest, MeanSinrInverseToAffectance) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  const std::vector<net::LinkId> schedule{0, 1};
  EXPECT_NEAR(sinr.MeanSinr(schedule, 0),
              params.gamma_th / sinr.SumAffectance(schedule, 0), 1e-12);
}

TEST(DeterministicSinrTest, NoInterferenceGivesInfiniteSinr) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  const std::vector<net::LinkId> lone{0};
  EXPECT_TRUE(std::isinf(sinr.MeanSinr(lone, 0)));
  EXPECT_TRUE(sinr.LinkDecodes(lone, 0));
}

TEST(DeterministicSinrTest, DecodeIffAffectanceAtMostOne) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(30, {}, gen);
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  std::vector<net::LinkId> schedule;
  for (net::LinkId i = 0; i < links.Size(); ++i) schedule.push_back(i);
  for (net::LinkId j : schedule) {
    EXPECT_EQ(sinr.LinkDecodes(schedule, j),
              sinr.SumAffectance(schedule, j) <= 1.0 + 1e-12);
  }
}

TEST(DeterministicSinrTest, DeterministicLaxerThanFading) {
  // The fading test is strictly stronger: any Corollary-3.1-informed link
  // also decodes in the deterministic model (f ≤ γ_ε ≈ 0.01 ⇒ a ≤ ~0.01).
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(60, {}, gen);
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  const InterferenceCalculator calc(links, params);
  std::vector<net::LinkId> schedule;
  for (net::LinkId i = 0; i < links.Size(); i += 2) schedule.push_back(i);
  for (net::LinkId j : schedule) {
    if (calc.SumFactor(schedule, j) <= params.GammaEpsilon()) {
      EXPECT_TRUE(sinr.LinkDecodes(schedule, j));
    }
  }
}

TEST(DeterministicSinrTest, FactorIsLogOnePlusAffectance) {
  // f_ij = ln(1 + a_ij) — the bridge between the two models.
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(20, {}, gen);
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  const InterferenceCalculator calc(links, params);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_NEAR(calc.Factor(i, j), std::log1p(sinr.Affectance(i, j)),
                  1e-12);
    }
  }
}

TEST(DeterministicSinrTest, ScheduleFeasibleChecksAllLinks) {
  const net::LinkSet links = TwoLinkLine(1.2);
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  const std::vector<net::LinkId> schedule{0, 1};
  // Overlapping links: affectance >> 1 in at least one direction.
  EXPECT_FALSE(sinr.ScheduleIsFeasible(schedule));
  const std::vector<net::LinkId> lone{1};
  EXPECT_TRUE(sinr.ScheduleIsFeasible(lone));
}

TEST(DeterministicSinrTest, CoincidentSenderReceiverRejected) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{1, 0}, {2, 0}, 1.0});
  ChannelParams params;
  const DeterministicSinr sinr(links, params);
  EXPECT_THROW(sinr.Affectance(1, 0), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::channel
