#include "channel/feasibility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"

namespace fadesched::channel {
namespace {

net::LinkSet TwoLinkLine(double gap) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{gap, 0}, {gap + 1, 0}, 1.0});
  return links;
}

TEST(SuccessProbabilityTest, LoneLinkAlwaysSucceeds) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  const std::vector<net::LinkId> schedule{0};
  EXPECT_DOUBLE_EQ(SuccessProbability(calc, schedule, 0), 1.0);
}

TEST(SuccessProbabilityTest, MatchesTheorem31ClosedForm) {
  // Two links: Pr(X_0 >= γ) = 1 / (1 + γ (d_00/d_10)^α).
  const double gap = 10.0;
  const net::LinkSet links = TwoLinkLine(gap);
  ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 1.5;
  const InterferenceCalculator calc(links, params);
  const std::vector<net::LinkId> schedule{0, 1};
  const double d10 = gap - 1.0;  // sender 1 at x=gap, receiver 0 at x=1
  const double expected = 1.0 / (1.0 + 1.5 * std::pow(1.0 / d10, 3.0));
  EXPECT_NEAR(SuccessProbability(calc, schedule, 0), expected, 1e-12);
}

TEST(SuccessProbabilityTest, ProductOverMultipleInterferers) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{20, 0}, {21, 0}, 1.0});
  links.Add(net::Link{{0, 30}, {0, 31}, 1.0});
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  const std::vector<net::LinkId> schedule{0, 1, 2};
  const double p_pair_1 = SuccessProbability(calc, {schedule.begin(), 2}, 0);
  // Independence in the closed form: three-way probability equals the
  // product of the pairwise terms.
  const std::vector<net::LinkId> pair_02{0, 2};
  const double p_pair_2 = SuccessProbability(calc, pair_02, 0);
  EXPECT_NEAR(SuccessProbability(calc, schedule, 0), p_pair_1 * p_pair_2,
              1e-12);
}

TEST(SuccessProbabilityTest, EqualsExpOfMinusSumFactor) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(25, {}, gen);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  std::vector<net::LinkId> schedule;
  for (net::LinkId i = 0; i < links.Size(); i += 3) schedule.push_back(i);
  for (net::LinkId j : schedule) {
    EXPECT_NEAR(SuccessProbability(calc, schedule, j),
                std::exp(-calc.SumFactor(schedule, j)), 1e-12);
  }
}

TEST(LinkIsInformedTest, EquivalentToCorollary31Threshold) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(30, {}, gen);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  std::vector<net::LinkId> schedule;
  for (net::LinkId i = 0; i < links.Size(); ++i) schedule.push_back(i);
  const double gamma_eps = params.GammaEpsilon();
  for (net::LinkId j : schedule) {
    const bool informed = LinkIsInformed(calc, schedule, j);
    const double sum = calc.SumFactor(schedule, j);
    EXPECT_EQ(informed, sum <= gamma_eps * (1.0 + 1e-12));
    // Informed ⇔ success probability >= 1 − ε.
    EXPECT_EQ(informed,
              SuccessProbability(calc, schedule, j) >=
                  (1.0 - params.epsilon) * (1.0 - 1e-9));
  }
}

TEST(ScheduleIsFeasibleTest, SingletonsAlwaysFeasible) {
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(10, {}, gen);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    const std::vector<net::LinkId> single{i};
    EXPECT_TRUE(ScheduleIsFeasible(calc, single));
  }
}

TEST(ScheduleIsFeasibleTest, EmptyScheduleFeasible) {
  const net::LinkSet links = TwoLinkLine(5.0);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  EXPECT_TRUE(ScheduleIsFeasible(calc, {}));
}

TEST(ScheduleIsFeasibleTest, AdjacentStrongInterferersInfeasible) {
  // Two overlapping links blasting each other cannot both meet ε = 1%.
  const net::LinkSet links = TwoLinkLine(1.5);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  const std::vector<net::LinkId> schedule{0, 1};
  EXPECT_FALSE(ScheduleIsFeasible(calc, schedule));
}

TEST(ScheduleIsFeasibleTest, FarApartPairFeasible) {
  // γ_ε ≈ 0.01 with ε = 1%: need γ(d_jj/d_ij)^α ≲ 0.01, i.e. gap ≳ 5·d_jj.
  const net::LinkSet links = TwoLinkLine(60.0);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  const std::vector<net::LinkId> schedule{0, 1};
  EXPECT_TRUE(ScheduleIsFeasible(calc, schedule));
}

TEST(ScheduleIsFeasibleTest, MonotoneUnderRemoval) {
  // Dropping links never breaks feasibility (interference is additive).
  rng::Xoshiro256 gen(4);
  ChannelParams params;
  params.epsilon = 0.1;  // looser budget so some multi-link sets pass
  for (int trial = 0; trial < 10; ++trial) {
    const net::LinkSet links = net::MakeUniformScenario(12, {}, gen);
    const InterferenceCalculator calc(links, params);
    std::vector<net::LinkId> schedule;
    for (net::LinkId i = 0; i < links.Size(); i += 2) schedule.push_back(i);
    if (!ScheduleIsFeasible(calc, schedule)) continue;
    for (std::size_t drop = 0; drop < schedule.size(); ++drop) {
      std::vector<net::LinkId> reduced = schedule;
      reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(drop));
      EXPECT_TRUE(ScheduleIsFeasible(calc, reduced));
    }
  }
}

TEST(AnalyzeScheduleTest, ReportsPerLinkNumbers) {
  const net::LinkSet links = TwoLinkLine(10.0);
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  const std::vector<net::LinkId> schedule{0, 1};
  const auto report = AnalyzeSchedule(calc, schedule);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].link, 0u);
  EXPECT_NEAR(report[0].sum_factor, calc.Factor(1, 0), 1e-15);
  EXPECT_NEAR(report[0].success_probability,
              std::exp(-report[0].sum_factor), 1e-15);
}

TEST(InformedRateTest, CountsOnlyInformedLinks) {
  // Link 2 sits right next to link 0's receiver and gets crushed, but the
  // far pair stays informed.
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 2.0});
  links.Add(net::Link{{100, 0}, {101, 0}, 3.0});
  links.Add(net::Link{{2, 0}, {2, 10}, 5.0});  // long link near link 0
  ChannelParams params;
  const InterferenceCalculator calc(links, params);
  const std::vector<net::LinkId> schedule{0, 1, 2};
  const double informed = InformedRate(calc, schedule);
  EXPECT_LT(informed, 10.0);
  EXPECT_GE(informed, 0.0);
}

}  // namespace
}  // namespace fadesched::channel
