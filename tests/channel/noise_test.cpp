// Tests for the ambient-noise extension (N₀ > 0). The paper sets N₀ = 0
// (Formula (8)); with noise, the exact closed form gains the factor
// exp(−γ_th·N₀/(P·d_jj^{-α})) and every feasibility budget shrinks by the
// corresponding noise factor.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/deterministic.hpp"
#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/monte_carlo.hpp"
#include "util/check.hpp"

namespace fadesched::channel {
namespace {

ChannelParams NoisyParams(double noise) {
  ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.05;
  params.noise_power = noise;
  return params;
}

net::LinkSet OneLink(double length) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {length, 0}, 1.0});
  return links;
}

TEST(NoiseFactorTest, ZeroNoiseIsZero) {
  const net::LinkSet links = OneLink(5.0);
  const InterferenceCalculator calc(links, NoisyParams(0.0));
  EXPECT_DOUBLE_EQ(calc.NoiseFactor(0), 0.0);
}

TEST(NoiseFactorTest, MatchesFormula) {
  const net::LinkSet links = OneLink(5.0);
  ChannelParams params = NoisyParams(1e-3);
  params.gamma_th = 2.0;
  params.tx_power = 4.0;
  const InterferenceCalculator calc(links, params);
  // γ·N₀·d^α/P = 2·1e-3·125/4.
  EXPECT_NEAR(calc.NoiseFactor(0), 2.0 * 1e-3 * 125.0 / 4.0, 1e-15);
}

TEST(NoiseFactorTest, GrowsWithLinkLength) {
  const auto params = NoisyParams(1e-4);
  const net::LinkSet short_links = OneLink(2.0);
  const net::LinkSet long_links = OneLink(10.0);
  const InterferenceCalculator calc_short(short_links, params);
  const InterferenceCalculator calc_long(long_links, params);
  EXPECT_GT(calc_long.NoiseFactor(0), calc_short.NoiseFactor(0));
}

TEST(NoiseSuccessProbabilityTest, LoneLinkPaysExactlyTheNoiseFactor) {
  const net::LinkSet links = OneLink(5.0);
  const auto params = NoisyParams(1e-3);
  const InterferenceCalculator calc(links, params);
  const net::Schedule schedule{0};
  EXPECT_NEAR(SuccessProbability(calc, schedule, 0),
              std::exp(-calc.NoiseFactor(0)), 1e-15);
}

TEST(NoiseSuccessProbabilityTest, HopelessLinkNotInformedEvenAlone) {
  // Pick N₀ so the noise factor alone exceeds γ_ε.
  const net::LinkSet links = OneLink(10.0);
  ChannelParams params = NoisyParams(0.0);
  const double gamma_eps = params.GammaEpsilon();
  params.noise_power =
      2.0 * gamma_eps * params.MeanPower(10.0) / params.gamma_th;
  const InterferenceCalculator calc(links, params);
  const net::Schedule schedule{0};
  EXPECT_FALSE(LinkIsInformed(calc, schedule, 0));
}

TEST(NoiseSuccessProbabilityTest, MonteCarloMatchesClosedForm) {
  rng::Xoshiro256 gen(1);
  net::UniformScenarioParams sp;
  sp.region_size = 150.0;
  const net::LinkSet links = net::MakeUniformScenario(10, sp, gen);
  // Noise on the order of the weakest desired signal: visible effect.
  ChannelParams params = NoisyParams(0.2 * ChannelParams{}.MeanPower(20.0));
  const InterferenceCalculator calc(links, params);
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); ++i) schedule.push_back(i);

  sim::SimOptions options;
  options.trials = 50000;
  const sim::SimResult result =
      sim::SimulateSchedule(links, params, schedule, options);
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    EXPECT_NEAR(result.link_success_rate[k],
                SuccessProbability(calc, schedule, schedule[k]), 0.02)
        << "link " << k;
  }
}

TEST(NoiseDeterministicTest, NoiseAffectanceLowersMeanSinr) {
  const net::LinkSet links = OneLink(5.0);
  const DeterministicSinr noiseless(links, NoisyParams(0.0));
  const DeterministicSinr noisy(links, NoisyParams(1e-3));
  const net::Schedule lone{0};
  EXPECT_TRUE(std::isinf(noiseless.MeanSinr(lone, 0)));
  EXPECT_TRUE(std::isfinite(noisy.MeanSinr(lone, 0)));
  EXPECT_GT(noisy.NoiseAffectance(0), 0.0);
}

TEST(NoiseDeterministicTest, StrongNoiseBlocksDecoding) {
  const net::LinkSet links = OneLink(5.0);
  ChannelParams params = NoisyParams(0.0);
  params.noise_power = 2.0 * params.MeanPower(5.0) / params.gamma_th;
  const DeterministicSinr sinr(links, params);
  const net::Schedule lone{0};
  EXPECT_FALSE(sinr.LinkDecodes(lone, 0));
}

TEST(NoiseValidationTest, NegativeNoiseRejected) {
  ChannelParams params;
  params.noise_power = -1.0;
  EXPECT_THROW(params.Validate(), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::channel
