#include "channel/graph_model.hpp"

#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::channel {
namespace {

net::LinkSet TwoLinkLine(double gap) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{gap, 0}, {gap + 1, 0}, 1.0});
  return links;
}

TEST(GraphModelTest, SelfConflictIsFalse) {
  const net::LinkSet links = TwoLinkLine(10.0);
  const GraphInterference graph(links, {});
  EXPECT_FALSE(graph.Conflict(0, 0));
}

TEST(GraphModelTest, CloseLinksConflict) {
  // Receiver 0 at x=1, sender 1 at x=2 with range 2·d_00 = 2: conflict.
  const net::LinkSet links = TwoLinkLine(2.0);
  const GraphInterference graph(links, {});
  EXPECT_TRUE(graph.Conflict(0, 1));
}

TEST(GraphModelTest, FarLinksDoNotConflict) {
  const net::LinkSet links = TwoLinkLine(10.0);
  const GraphInterference graph(links, {});
  EXPECT_FALSE(graph.Conflict(0, 1));
}

TEST(GraphModelTest, ConflictIsSymmetric) {
  rng::Xoshiro256 gen(1);
  net::UniformScenarioParams sp;
  sp.region_size = 100.0;
  const net::LinkSet links = net::MakeUniformScenario(50, sp, gen);
  const GraphInterference graph(links, {});
  for (net::LinkId a = 0; a < links.Size(); ++a) {
    for (net::LinkId b = a + 1; b < links.Size(); ++b) {
      EXPECT_EQ(graph.Conflict(a, b), graph.Conflict(b, a));
    }
  }
}

TEST(GraphModelTest, RangeFactorWidensConflicts) {
  const net::LinkSet links = TwoLinkLine(4.0);
  GraphModelParams narrow;
  narrow.range_factor = 1.0;
  GraphModelParams wide;
  wide.range_factor = 5.0;
  EXPECT_FALSE(GraphInterference(links, narrow).Conflict(0, 1));
  EXPECT_TRUE(GraphInterference(links, wide).Conflict(0, 1));
}

TEST(GraphModelTest, RangeBelowOneRejected) {
  const net::LinkSet links = TwoLinkLine(4.0);
  GraphModelParams bad;
  bad.range_factor = 0.5;
  EXPECT_THROW(GraphInterference(links, bad), util::CheckFailure);
}

TEST(GraphModelTest, IndependentSetDetection) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{1.5, 0}, {2.5, 0}, 1.0});  // conflicts with 0
  links.Add(net::Link{{100, 0}, {101, 0}, 1.0});  // isolated
  const GraphInterference graph(links, {});
  const std::vector<net::LinkId> clash{0, 1};
  const std::vector<net::LinkId> fine{0, 2};
  EXPECT_FALSE(graph.ScheduleIsIndependent(clash));
  EXPECT_TRUE(graph.ScheduleIsIndependent(fine));
  EXPECT_TRUE(graph.ScheduleIsIndependent({}));
}

TEST(GraphModelTest, DegreeCountsNeighbours) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{1.5, 0}, {2.5, 0}, 1.0});
  links.Add(net::Link{{3.0, 0}, {4.0, 0}, 1.0});
  links.Add(net::Link{{500, 0}, {501, 0}, 1.0});
  const GraphInterference graph(links, {});
  EXPECT_GE(graph.Degree(1), 1u);   // at least one of its neighbours
  EXPECT_EQ(graph.Degree(3), 0u);   // isolated
}

}  // namespace
}  // namespace fadesched::channel
