// Property tests for the precision ladder: the fast kMatrix build stays
// inside the configured ULP band of the exact build, flagged entries are
// re-verified (and promoted) against the exact expression, adversarial
// geometry forces domain promotions, and the build is bit-identical for
// any thread count and tile size.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>

#include "channel/batch_interference.hpp"
#include "mathx/ulp.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/thread_pool.hpp"

namespace fadesched::channel {
namespace {

net::LinkSet RandomLinks(std::uint64_t seed, std::size_t n) {
  rng::Xoshiro256 gen(seed);
  return net::MakeUniformScenario(n, {}, gen);
}

std::uint64_t UlpOrBitEqual(double got, double want) {
  if (std::bit_cast<std::uint64_t>(got) == std::bit_cast<std::uint64_t>(want)) {
    return 0;
  }
  return mathx::UlpDistance(got, want);
}

EngineOptions LadderOptions() {
  EngineOptions options;
  options.backend = FactorBackend::kMatrix;
  options.ladder.enabled = true;
  return options;
}

TEST(PrecisionLadderTest, FastBuildStaysInsideBandOfExactBuild) {
  const net::LinkSet links = RandomLinks(42, 120);
  ChannelParams params;
  const EngineOptions options = LadderOptions();
  const InterferenceEngine fast(links, params, options);
  EngineOptions exact_options;
  exact_options.backend = FactorBackend::kMatrix;
  const InterferenceEngine exact(links, params, exact_options);

  const LadderStats& stats = fast.Ladder();
  EXPECT_TRUE(stats.active);
  EXPECT_EQ(stats.fallback_reason, nullptr);
  EXPECT_EQ(stats.level, ResolveSimdLevel(SimdLevel::kAuto));
  EXPECT_EQ(stats.entries, links.Size() * (links.Size() - 1));
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(UlpOrBitEqual(fast.Factor(i, j), exact.Factor(i, j)),
                options.ladder.ulp_band)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(PrecisionLadderTest, FullVerifyWithZeroBandPromotesToExact) {
  // ulp_band = 0 under kFull turns the ladder into "promote everything
  // that is not bit-exact" — the result must equal the exact build
  // everywhere, and (since the fast expression reorders arithmetic) at
  // least one entry must actually have been promoted to get there.
  const net::LinkSet links = RandomLinks(99, 80);
  ChannelParams params;
  EngineOptions options = LadderOptions();
  options.ladder.verify = PrecisionLadderOptions::Verify::kFull;
  options.ladder.ulp_band = 0;
  const InterferenceEngine fast(links, params, options);
  EngineOptions exact_options;
  exact_options.backend = FactorBackend::kMatrix;
  const InterferenceEngine exact(links, params, exact_options);

  const LadderStats& stats = fast.Ladder();
  EXPECT_EQ(stats.verified_entries, links.Size() * (links.Size() - 1));
  EXPECT_GT(stats.promoted_verify, 0u);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_DOUBLE_EQ(fast.Factor(i, j), exact.Factor(i, j))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(PrecisionLadderTest, AdversarialGeometryForcesDomainPromotions) {
  // A sender 1e-160 away from a victim receiver drives d² subnormal and
  // d^α to zero — the fast affectance becomes inf at every dispatch tier
  // and must be promoted through the exact expression (which also yields
  // inf, keeping the builds consistent).
  net::LinkSet links;
  links.Add({{0.0, 0.0}, {10.0, 0.0}});
  links.Add({{10.0, 1e-160}, {20.0, 5.0}});
  links.Add({{300.0, 300.0}, {310.0, 300.0}});
  ChannelParams params;
  const InterferenceEngine fast(links, params, LadderOptions());
  const LadderStats& stats = fast.Ladder();
  EXPECT_TRUE(stats.active);
  EXPECT_GT(stats.promoted_domain, 0u);
  EngineOptions exact_options;
  exact_options.backend = FactorBackend::kMatrix;
  const InterferenceEngine exact(links, params, exact_options);
  // The promoted entry is the exact value bit-for-bit (here: +inf).
  EXPECT_TRUE(std::isinf(exact.Factor(1, 0)));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(fast.Factor(1, 0)),
            std::bit_cast<std::uint64_t>(exact.Factor(1, 0)));
}

TEST(PrecisionLadderTest, BuildIsBitIdenticalAcrossThreadsAndTiles) {
  const net::LinkSet links = RandomLinks(123, 150);
  ChannelParams params;
  const EngineOptions serial = LadderOptions();
  const InterferenceEngine reference(links, params, serial);
  util::ThreadPool pool(3);
  for (std::size_t tile_rows : {std::size_t{7}, std::size_t{64},
                                std::size_t{1000}}) {
    EngineOptions pooled = LadderOptions();
    pooled.pool = &pool;
    pooled.tile_rows = tile_rows;
    const InterferenceEngine engine(links, params, pooled);
    for (net::LinkId i = 0; i < links.Size(); ++i) {
      for (net::LinkId j = 0; j < links.Size(); ++j) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(engine.Factor(i, j)),
                  std::bit_cast<std::uint64_t>(reference.Factor(i, j)))
            << "tile_rows=" << tile_rows << " i=" << i << " j=" << j;
      }
    }
    // Promotion accounting is deterministic too — tiles own disjoint
    // rows and the verify rungs run serially off a fixed seed.
    EXPECT_EQ(engine.Ladder().promoted_domain,
              reference.Ladder().promoted_domain);
    EXPECT_EQ(engine.Ladder().promoted_verify,
              reference.Ladder().promoted_verify);
    EXPECT_EQ(engine.Ladder().promoted_rows, reference.Ladder().promoted_rows);
    EXPECT_EQ(engine.Ladder().max_verify_ulp,
              reference.Ladder().max_verify_ulp);
  }
}

TEST(PrecisionLadderTest, VerificationCountsMatchConfiguration) {
  const net::LinkSet links = RandomLinks(7, 30);
  ChannelParams params;
  EngineOptions options = LadderOptions();
  options.ladder.verify_samples = 200;
  options.ladder.verify_rows = 5;
  const InterferenceEngine sampled(links, params, options);
  EXPECT_EQ(sampled.Ladder().verified_entries, 200u);
  EXPECT_EQ(sampled.Ladder().verified_rows, 5u);

  options.ladder.verify_samples = 1u << 20;  // more than n(n-1): clamped
  options.ladder.verify_rows = 1000;
  const InterferenceEngine clamped(links, params, options);
  EXPECT_EQ(clamped.Ladder().verified_entries,
            links.Size() * (links.Size() - 1));
  EXPECT_EQ(clamped.Ladder().verified_rows, links.Size());

  options.ladder.verify = PrecisionLadderOptions::Verify::kOff;
  options.ladder.verify_rows = 0;
  const InterferenceEngine off(links, params, options);
  EXPECT_EQ(off.Ladder().verified_entries, 0u);
  EXPECT_EQ(off.Ladder().verified_rows, 0u);
}

TEST(PrecisionLadderTest, AffectanceMatrixGoesThroughTheLadderToo) {
  const net::LinkSet links = RandomLinks(31, 90);
  ChannelParams params;
  EngineOptions options = LadderOptions();
  options.affectance_matrix = true;
  const InterferenceEngine fast(links, params, options);
  EXPECT_TRUE(fast.Ladder().active);
  EngineOptions exact_options;
  exact_options.backend = FactorBackend::kMatrix;
  exact_options.affectance_matrix = true;
  const InterferenceEngine exact(links, params, exact_options);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(UlpOrBitEqual(fast.Affectance(i, j), exact.Affectance(i, j)),
                options.ladder.ulp_band)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(PrecisionLadderTest, CutoffBuildsFallBackToExactPath) {
  const net::LinkSet links = RandomLinks(61, 60);
  ChannelParams params;
  EngineOptions options = LadderOptions();
  options.cutoff_radius = 150.0;
  const InterferenceEngine engine(links, params, options);
  EXPECT_FALSE(engine.Ladder().active);
  ASSERT_NE(engine.Ladder().fallback_reason, nullptr);
  // The fallback is the certified-cutoff exact build, unchanged.
  EngineOptions plain = options;
  plain.ladder = {};
  const InterferenceEngine exact(links, params, plain);
  EXPECT_DOUBLE_EQ(engine.CertifiedSlack(), exact.CertifiedSlack());
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_DOUBLE_EQ(engine.Factor(i, j), exact.Factor(i, j));
    }
  }
}

TEST(PrecisionLadderTest, ObtainEngineTreatsLadderAsResultBearing) {
  const net::LinkSet links = RandomLinks(88, 25);
  ChannelParams params;
  EngineOptions built_options = LadderOptions();
  auto shared = std::make_shared<const InterferenceEngine>(links, params,
                                                           built_options);

  // Same ladder configuration: reused.
  EngineOptions same = LadderOptions();
  same.shared = shared;
  std::optional<InterferenceEngine> local_same;
  EXPECT_EQ(&ObtainEngine(links, params, same, local_same), shared.get());

  // Ladder off vs. on: a fresh exact build, not the fast matrix.
  EngineOptions off;
  off.backend = FactorBackend::kMatrix;
  off.shared = shared;
  std::optional<InterferenceEngine> local_off;
  const InterferenceEngine& got_off = ObtainEngine(links, params, off,
                                                   local_off);
  EXPECT_NE(&got_off, shared.get());
  EXPECT_FALSE(got_off.Ladder().active);

  // Different band: rebuilt.
  EngineOptions tighter = LadderOptions();
  tighter.ladder.ulp_band = 2;
  tighter.shared = shared;
  std::optional<InterferenceEngine> local_tight;
  EXPECT_NE(&ObtainEngine(links, params, tighter, local_tight), shared.get());

  // Both ladders disabled with different idle knobs: interchangeable.
  EngineOptions built_plain;
  built_plain.backend = FactorBackend::kMatrix;
  auto shared_plain = std::make_shared<const InterferenceEngine>(
      links, params, built_plain);
  EngineOptions idle_knobs;
  idle_knobs.backend = FactorBackend::kMatrix;
  idle_knobs.ladder.ulp_band = 3;  // irrelevant while disabled
  idle_knobs.shared = shared_plain;
  std::optional<InterferenceEngine> local_idle;
  EXPECT_EQ(&ObtainEngine(links, params, idle_knobs, local_idle),
            shared_plain.get());
}

TEST(PrecisionLadderTest, ForcedScalarMatchesAutoWithinBand) {
  // The forced-scalar ladder is the differential suite's second dispatch
  // mode; its entries must sit within the band of the exact build just
  // like the auto tier (and bit-equal it when the host resolves to
  // scalar anyway).
  const net::LinkSet links = RandomLinks(555, 100);
  ChannelParams params;
  params.alpha = 4.0;
  EngineOptions scalar_options = LadderOptions();
  scalar_options.ladder.force_level = SimdLevel::kScalar;
  const InterferenceEngine scalar_engine(links, params, scalar_options);
  EXPECT_EQ(scalar_engine.Ladder().level, SimdLevel::kScalar);
  EngineOptions exact_options;
  exact_options.backend = FactorBackend::kMatrix;
  const InterferenceEngine exact(links, params, exact_options);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(
          UlpOrBitEqual(scalar_engine.Factor(i, j), exact.Factor(i, j)),
          scalar_options.ladder.ulp_band)
          << "i=" << i << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace fadesched::channel
