// The vectorized fast row kernel: dispatch-tier contracts (AVX2 ≡ scalar
// bit-for-bit, AVX-512 within the ULP band), environment-override
// parsing, and kernel edge cases — generic α fallback, large quarter-
// integer α, near-zero and huge distances, subnormal gains, duplicate
// and coincident positions.
#include "channel/simd_kernel.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "channel/batch_interference.hpp"
#include "channel/simd_dispatch.hpp"
#include "mathx/ulp.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::channel {
namespace {

constexpr std::uint64_t kUlpTolerance = 16;

/// ULP distance that treats bit-identical values (including ±inf and a
/// shared NaN pattern) as zero — UlpDistance alone saturates on
/// non-finite inputs.
std::uint64_t UlpOrBitEqual(double got, double want) {
  if (std::bit_cast<std::uint64_t>(got) == std::bit_cast<std::uint64_t>(want)) {
    return 0;
  }
  return mathx::UlpDistance(got, want);
}

/// All dispatch tiers this machine can actually execute.
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (DetectSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  if (DetectSimdLevel() >= SimdLevel::kAvx512) {
    levels.push_back(SimdLevel::kAvx512);
  }
  return levels;
}

struct Soa {
  std::vector<double> sx, sy, pw;
};

Soa RandomSoa(std::uint64_t seed, std::size_t n, double scale = 500.0) {
  rng::Xoshiro256 gen(seed);
  const auto uniform = [&gen](double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(gen.Next() >> 11) * 0x1.0p-53);
  };
  Soa soa;
  for (std::size_t i = 0; i < n; ++i) {
    soa.sx.push_back(uniform(0.0, scale));
    soa.sy.push_back(uniform(0.0, scale));
    soa.pw.push_back(uniform(0.5, 2.0));
  }
  return soa;
}

simd::RowKernelSpec SpecFor(double alpha, bool affectance = false) {
  const HalfPowerKernel kernel(alpha);
  EXPECT_TRUE(kernel.IsSpecialized()) << "alpha=" << alpha;
  return {kernel.WholeSteps(), kernel.UsesSqrt(), kernel.UsesQuarter(),
          affectance};
}

TEST(SimdKernelTest, EveryTierWithinBandOfExactExpression) {
  // Exact reference: the kTables expression with the plain (non-fma) d²
  // and libm log1p. The fast kernel reorders the arithmetic, so entries
  // may differ — but never beyond the promotion band.
  for (double alpha : {2.5, 3.0, 4.0, 7.0, 10.0}) {
    const HalfPowerKernel kernel(alpha);
    const simd::RowKernelSpec spec = SpecFor(alpha);
    const std::size_t n = 97;  // odd: exercises the scalar tail
    const Soa soa = RandomSoa(7 * static_cast<std::uint64_t>(alpha * 4), n);
    const double rx = 250.0, ry = 240.0, coeff = 1.75;
    for (SimdLevel level : SupportedLevels()) {
      std::vector<double> out(n, 0.0);
      const bool bad =
          simd::FillFastRow(level, spec, soa.sx.data(), soa.sy.data(),
                            soa.pw.data(), rx, ry, coeff, n, out.data());
      simd::StoreFence();
      EXPECT_FALSE(bad) << "clean geometry must not flag the row, level="
                        << SimdLevelName(level);
      for (std::size_t i = 0; i < n; ++i) {
        const double dx = soa.sx[i] - rx;
        const double dy = soa.sy[i] - ry;
        const double a =
            coeff * soa.pw[i] / kernel.DistPowAlpha(dx * dx + dy * dy);
        EXPECT_LE(UlpOrBitEqual(out[i], std::log1p(a)), kUlpTolerance)
            << "alpha=" << alpha << " level=" << SimdLevelName(level)
            << " i=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, Avx2IsBitIdenticalToScalar) {
  if (DetectSimdLevel() < SimdLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  for (double alpha : {2.5, 3.0, 3.5, 4.0, 10.0}) {
    for (bool affectance : {false, true}) {
      const simd::RowKernelSpec spec = SpecFor(alpha, affectance);
      const std::size_t n = 131;
      const Soa soa = RandomSoa(991, n);
      std::vector<double> scalar(n, 0.0), avx2(n, 0.0);
      const bool bad_scalar = simd::FillFastRow(
          SimdLevel::kScalar, spec, soa.sx.data(), soa.sy.data(),
          soa.pw.data(), 260.0, 255.5, 2.25, n, scalar.data());
      const bool bad_avx2 = simd::FillFastRow(
          SimdLevel::kAvx2, spec, soa.sx.data(), soa.sy.data(), soa.pw.data(),
          260.0, 255.5, 2.25, n, avx2.data());
      EXPECT_EQ(bad_scalar, bad_avx2);
      EXPECT_EQ(0, std::memcmp(scalar.data(), avx2.data(), n * sizeof(double)))
          << "alpha=" << alpha << " affectance=" << affectance;
    }
  }
}

TEST(SimdKernelTest, RowPairMatchesTwoSingleRows) {
  const simd::RowKernelSpec spec = SpecFor(3.0);
  const std::size_t n = 61;
  const Soa soa = RandomSoa(1717, n);
  const double rx[2] = {100.0, 380.0};
  const double ry[2] = {90.0, 410.0};
  const double coeff[2] = {1.5, 0.75};
  for (SimdLevel level : SupportedLevels()) {
    std::vector<double> single0(n, 0.0), single1(n, 0.0);
    std::vector<double> pair0(n, 0.0), pair1(n, 0.0);
    const bool bad0 =
        simd::FillFastRow(level, spec, soa.sx.data(), soa.sy.data(),
                          soa.pw.data(), rx[0], ry[0], coeff[0], n,
                          single0.data());
    const bool bad1 =
        simd::FillFastRow(level, spec, soa.sx.data(), soa.sy.data(),
                          soa.pw.data(), rx[1], ry[1], coeff[1], n,
                          single1.data());
    const bool bad_pair = simd::FillFastRowPair(
        level, spec, soa.sx.data(), soa.sy.data(), soa.pw.data(), rx, ry,
        coeff, n, pair0.data(), pair1.data());
    simd::StoreFence();
    EXPECT_EQ(bad_pair, bad0 || bad1) << SimdLevelName(level);
    EXPECT_EQ(0, std::memcmp(single0.data(), pair0.data(), n * sizeof(double)))
        << SimdLevelName(level);
    EXPECT_EQ(0, std::memcmp(single1.data(), pair1.data(), n * sizeof(double)))
        << SimdLevelName(level);
  }
}

TEST(SimdKernelTest, NonFiniteFastValuesPassThrough) {
  // d² = 0 (duplicate position) must reach the caller as a non-finite
  // entry at every tier — that is the promotion signal the ladder's
  // domain rung (and its FS_CHECK re-raise) depends on.
  const simd::RowKernelSpec spec = SpecFor(3.0);
  const std::size_t n = 9;
  Soa soa = RandomSoa(55, n);
  soa.sx[4] = 123.0;
  soa.sy[4] = 321.0;
  for (SimdLevel level : SupportedLevels()) {
    std::vector<double> out(n, 0.0);
    const bool bad =
        simd::FillFastRow(level, spec, soa.sx.data(), soa.sy.data(),
                          soa.pw.data(), 123.0, 321.0, 1.0, n, out.data());
    simd::StoreFence();
    EXPECT_TRUE(bad) << "non-finite entry must flag the row, level="
                     << SimdLevelName(level);
    EXPECT_FALSE(std::isfinite(out[4])) << SimdLevelName(level);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != 4) {
        EXPECT_TRUE(std::isfinite(out[i])) << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, ExtremeDistancesAndSubnormalGains) {
  // Near-zero distance (subnormal d²), huge distance (d^α overflow), and
  // a subnormal power product: each tier must either match the exact
  // expression in the band or flag the lane non-finite for promotion —
  // silently wrong finite values are the one forbidden outcome.
  const HalfPowerKernel kernel(3.0);
  const simd::RowKernelSpec spec = SpecFor(3.0);
  const std::size_t n = 8;
  Soa soa = RandomSoa(77, n);
  soa.sx[1] = 1e-160;  // d² = 1e-320: subnormal
  soa.sy[1] = 0.0;
  soa.sx[3] = 1e150;  // d^3 overflows
  soa.sy[3] = 0.0;
  soa.pw[5] = 1e-290;  // subnormal affectance
  for (SimdLevel level : SupportedLevels()) {
    std::vector<double> out(n, 0.0);
    const bool bad =
        simd::FillFastRow(level, spec, soa.sx.data(), soa.sy.data(),
                          soa.pw.data(), 0.0, 0.0, 1e-20, n, out.data());
    simd::StoreFence();
    bool any_bad = false;
    for (std::size_t i = 0; i < n; ++i) any_bad |= !std::isfinite(out[i]);
    EXPECT_EQ(bad, any_bad) << SimdLevelName(level);
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(out[i])) continue;  // flagged for promotion: fine
      const double dx = soa.sx[i];
      const double dy = soa.sy[i];
      const double a =
          1e-20 * soa.pw[i] / kernel.DistPowAlpha(dx * dx + dy * dy);
      EXPECT_LE(UlpOrBitEqual(out[i], std::log1p(a)), kUlpTolerance)
          << SimdLevelName(level) << " i=" << i;
    }
  }
}

TEST(SimdDispatchTest, EnvOverridesOnlyCap) {
  const SimdLevel hw = SimdLevel::kAvx512;
  EXPECT_EQ(ApplySimdEnv(hw, nullptr, nullptr), SimdLevel::kAvx512);
  EXPECT_EQ(ApplySimdEnv(hw, "1", nullptr), SimdLevel::kScalar);
  EXPECT_EQ(ApplySimdEnv(hw, "0", nullptr), SimdLevel::kAvx512);
  EXPECT_EQ(ApplySimdEnv(hw, "", nullptr), SimdLevel::kAvx512);
  EXPECT_EQ(ApplySimdEnv(hw, nullptr, "avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(ApplySimdEnv(hw, nullptr, "scalar"), SimdLevel::kScalar);
  EXPECT_EQ(ApplySimdEnv(hw, nullptr, "bogus"), SimdLevel::kAvx512);
  // The cap cannot raise above hardware.
  EXPECT_EQ(ApplySimdEnv(SimdLevel::kAvx2, nullptr, "avx512"),
            SimdLevel::kAvx2);
  // NO_SIMD wins over a higher cap.
  EXPECT_EQ(ApplySimdEnv(hw, "1", "avx512"), SimdLevel::kScalar);
}

TEST(SimdDispatchTest, ResolveClampsToHardware) {
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_LE(ResolveSimdLevel(SimdLevel::kAvx512), DetectSimdLevel());
  EXPECT_LE(ResolveSimdLevel(SimdLevel::kAuto), DetectSimdLevel());
  EXPECT_NE(ResolveSimdLevel(SimdLevel::kAuto), SimdLevel::kAuto);
}

// ---------------------------------------------------------------------------
// Golden edge cases through the engine (the kernel's real consumer).
// ---------------------------------------------------------------------------

net::LinkSet RandomLinks(std::uint64_t seed, std::size_t n = 40) {
  rng::Xoshiro256 gen(seed);
  return net::MakeUniformScenario(n, {}, gen);
}

EngineOptions LadderOptions() {
  EngineOptions options;
  options.backend = FactorBackend::kMatrix;
  options.ladder.enabled = true;
  return options;
}

TEST(SimdKernelGoldenTest, GenericAlphaFallsBackToExactBuild) {
  const net::LinkSet links = RandomLinks(3001);
  ChannelParams params;
  params.alpha = 2.01;  // not a quarter integer
  const InterferenceEngine fast(links, params, LadderOptions());
  EXPECT_FALSE(fast.Ladder().active);
  ASSERT_NE(fast.Ladder().fallback_reason, nullptr);
  EngineOptions exact_options;
  exact_options.backend = FactorBackend::kMatrix;
  const InterferenceEngine exact(links, params, exact_options);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_DOUBLE_EQ(fast.Factor(i, j), exact.Factor(i, j));
    }
  }
}

TEST(SimdKernelGoldenTest, LargeQuarterIntegerAlphasStayInBand) {
  // The ladder's hard guarantee is vs. the exact kMatrix build: within
  // ulp_band everywhere. Vs. the reference calculator two budgets stack —
  // the ladder band plus the exact build's own rounding distance from the
  // pow-ratio formulation (itself a handful of ULP, growing with the
  // chain length at large α) — so that check gets the summed envelope.
  for (double alpha : {7.0, 10.0}) {
    const net::LinkSet links = RandomLinks(3100 + static_cast<int>(alpha));
    ChannelParams params;
    params.alpha = alpha;
    const InterferenceEngine fast(links, params, LadderOptions());
    EXPECT_TRUE(fast.Ladder().active) << alpha;
    EngineOptions exact_options;
    exact_options.backend = FactorBackend::kMatrix;
    const InterferenceEngine exact(links, params, exact_options);
    EngineOptions calc_options;
    calc_options.backend = FactorBackend::kCalculator;
    const InterferenceEngine calc(links, params, calc_options);
    for (net::LinkId i = 0; i < links.Size(); ++i) {
      for (net::LinkId j = 0; j < links.Size(); ++j) {
        EXPECT_LE(UlpOrBitEqual(fast.Factor(i, j), exact.Factor(i, j)),
                  kUlpTolerance)
            << "alpha=" << alpha << " i=" << i << " j=" << j;
        EXPECT_LE(UlpOrBitEqual(fast.Factor(i, j), calc.Factor(i, j)),
                  2 * kUlpTolerance)
            << "alpha=" << alpha << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(SimdKernelGoldenTest, CoincidentPositionsThrowInFastBuild) {
  // An interfering sender sitting exactly on a victim's receiver must
  // raise the same FS_CHECK as the exact build — the fast kernel routes
  // it through the non-finite promotion scan, whose exact recomputation
  // re-raises.
  net::LinkSet links;
  links.Add({{0.0, 0.0}, {10.0, 0.0}});
  links.Add({{10.0, 0.0}, {20.0, 0.0}});  // sender on link 0's receiver
  ChannelParams params;
  EXPECT_THROW(InterferenceEngine(links, params, LadderOptions()),
               util::CheckFailure);
  EngineOptions exact_options;
  exact_options.backend = FactorBackend::kMatrix;
  EXPECT_THROW(InterferenceEngine(links, params, exact_options),
               util::CheckFailure);
}

TEST(SimdKernelGoldenTest, DuplicateLinksAgreeWithExactBuild) {
  // Two identical links (same sender, same receiver — a duplicated
  // request) are legal: cross distances equal the link length.
  net::LinkSet links;
  links.Add({{0.0, 0.0}, {10.0, 0.0}});
  links.Add({{0.0, 0.0}, {10.0, 0.0}});
  links.Add({{100.0, 5.0}, {110.0, 5.0}});
  ChannelParams params;
  const InterferenceEngine fast(links, params, LadderOptions());
  EngineOptions calc_options;
  calc_options.backend = FactorBackend::kCalculator;
  const InterferenceEngine calc(links, params, calc_options);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(UlpOrBitEqual(fast.Factor(i, j), calc.Factor(i, j)),
                kUlpTolerance)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(SimdKernelGoldenTest, SubnormalGainsAgreeWithExactBuild) {
  // A vanishing per-link transmit power drives affectances into the
  // subnormal range on some victims and enormous victim coefficients on
  // others; relative-error arithmetic keeps both inside the band (or
  // promotes).
  net::LinkSet links;
  net::Link weak{{0.0, 0.0}, {10.0, 0.0}};
  weak.tx_power = 1e-290;
  links.Add(weak);
  links.Add({{200.0, 0.0}, {210.0, 0.0}});
  links.Add({{50.0, 80.0}, {55.0, 90.0}});
  ChannelParams params;
  const InterferenceEngine fast(links, params, LadderOptions());
  EngineOptions exact_options;
  exact_options.backend = FactorBackend::kMatrix;
  const InterferenceEngine exact(links, params, exact_options);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      EXPECT_LE(UlpOrBitEqual(fast.Factor(i, j), exact.Factor(i, j)),
                kUlpTolerance)
          << "i=" << i << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace fadesched::channel
