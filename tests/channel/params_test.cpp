#include "channel/params.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace fadesched::channel {
namespace {

TEST(ChannelParamsTest, DefaultsAreValid) {
  ChannelParams params;
  EXPECT_NO_THROW(params.Validate());
}

TEST(ChannelParamsTest, GammaEpsilonMatchesDefinition) {
  ChannelParams params;
  params.epsilon = 0.01;
  EXPECT_NEAR(params.GammaEpsilon(), std::log(1.0 / 0.99), 1e-15);
}

TEST(ChannelParamsTest, GammaEpsilonSmallEpsilonApproximation) {
  // ln(1/(1-ε)) ≈ ε for small ε; verifies the log1p evaluation is stable.
  ChannelParams params;
  params.epsilon = 1e-9;
  EXPECT_NEAR(params.GammaEpsilon(), 1e-9, 1e-15);
}

TEST(ChannelParamsTest, GammaEpsilonMonotoneInEpsilon) {
  ChannelParams lo;
  lo.epsilon = 0.01;
  ChannelParams hi;
  hi.epsilon = 0.2;
  EXPECT_LT(lo.GammaEpsilon(), hi.GammaEpsilon());
}

TEST(ChannelParamsTest, MeanPowerFollowsPathLoss) {
  ChannelParams params;
  params.tx_power = 2.0;
  params.alpha = 3.0;
  EXPECT_DOUBLE_EQ(params.MeanPower(1.0), 2.0);
  EXPECT_DOUBLE_EQ(params.MeanPower(2.0), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(params.MeanPower(10.0), 2.0 / 1000.0);
}

TEST(ChannelParamsTest, MeanPowerAmplifiesBelowUnitDistance) {
  ChannelParams params;
  EXPECT_GT(params.MeanPower(0.5), params.tx_power);
}

TEST(ChannelParamsTest, AlphaAtMostTwoRejected) {
  ChannelParams params;
  params.alpha = 2.0;
  EXPECT_THROW(params.Validate(), util::CheckFailure);
  params.alpha = 1.5;
  EXPECT_THROW(params.Validate(), util::CheckFailure);
}

TEST(ChannelParamsTest, EpsilonBoundsEnforced) {
  ChannelParams params;
  params.epsilon = 0.0;
  EXPECT_THROW(params.Validate(), util::CheckFailure);
  params.epsilon = 1.0;
  EXPECT_THROW(params.Validate(), util::CheckFailure);
}

TEST(ChannelParamsTest, NonPositiveThresholdAndPowerRejected) {
  ChannelParams params;
  params.gamma_th = 0.0;
  EXPECT_THROW(params.Validate(), util::CheckFailure);
  params.gamma_th = 1.0;
  params.tx_power = -1.0;
  EXPECT_THROW(params.Validate(), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::channel
