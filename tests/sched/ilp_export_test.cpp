#include "sched/ilp_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace fadesched::sched {
namespace {

net::LinkSet ThreeLinks() {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.5});
  links.Add(net::Link{{20, 0}, {21, 0}, 2.0});
  links.Add(net::Link{{0, 20}, {0, 21}, 3.0});
  return links;
}

TEST(IlpExportTest, ContainsStructuralSections) {
  const std::string lp = FormatIlp(ThreeLinks(), channel::ChannelParams{});
  EXPECT_NE(lp.find("Maximize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
}

TEST(IlpExportTest, ObjectiveListsEveryRate) {
  const std::string lp = FormatIlp(ThreeLinks(), channel::ChannelParams{});
  EXPECT_NE(lp.find("1.5 x0"), std::string::npos);
  EXPECT_NE(lp.find("2 x1"), std::string::npos);
  EXPECT_NE(lp.find("3 x2"), std::string::npos);
}

TEST(IlpExportTest, OneConstraintAndOneBinaryPerLink) {
  const std::string lp = FormatIlp(ThreeLinks(), channel::ChannelParams{});
  for (int j = 0; j < 3; ++j) {
    EXPECT_NE(lp.find(" inf" + std::to_string(j) + ":"), std::string::npos);
    EXPECT_NE(lp.find(" x" + std::to_string(j) + "\n"), std::string::npos);
  }
}

TEST(IlpExportTest, ConstraintCoefficientMatchesInterferenceFactor) {
  const net::LinkSet links = ThreeLinks();
  const channel::ChannelParams params;
  const channel::InterferenceCalculator calc(links, params);
  const std::string lp = FormatIlp(links, params);
  // Constraint row for victim 0 must carry coefficient f_{1,0} on x1.
  const std::string expected =
      util::FormatDouble(calc.Factor(1, 0), 12) + " x1";
  EXPECT_NE(lp.find(expected), std::string::npos) << lp;
}

TEST(IlpExportTest, RhsCarriesGammaEpsilonPlusBigM) {
  const net::LinkSet links = ThreeLinks();
  channel::ChannelParams params;
  const std::string lp = FormatIlp(links, params);
  EXPECT_NE(lp.find("<="), std::string::npos);
  // With these well separated links the interference sums are far below
  // γ_ε, so big-M degenerates to 0 and the RHS is exactly γ_ε.
  const std::string rhs = util::FormatDouble(params.GammaEpsilon(), 12);
  EXPECT_NE(lp.find("<= " + rhs), std::string::npos) << lp;
}

TEST(IlpExportTest, FileWriteRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fadesched_ilp_test.lp")
          .string();
  WriteIlpFile(ThreeLinks(), channel::ChannelParams{}, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("Maximize"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IlpExportTest, UnwritablePathThrows) {
  // Atomic writes classify I/O failures as transient harness errors.
  try {
    WriteIlpFile(ThreeLinks(), channel::ChannelParams{},
                 "/nonexistent/dir/out.lp");
    FAIL() << "expected HarnessError";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTransient);
  }
}

TEST(IlpExportTest, ScalesToRealisticInstances) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const std::string lp = FormatIlp(links, channel::ChannelParams{});
  EXPECT_NE(lp.find("x99"), std::string::npos);
}

}  // namespace
}  // namespace fadesched::sched
