#include "sched/constants.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/zeta.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 1.0;
  params.epsilon = 0.01;
  return params;
}

TEST(LdpBetaTest, MatchesFormula37) {
  const auto params = PaperParams();
  const double zeta = mathx::RiemannZeta(2.0);
  const double expected =
      std::pow(8.0 * zeta * 1.0 / params.GammaEpsilon(), 1.0 / 3.0);
  EXPECT_NEAR(LdpBeta(params), expected, 1e-12);
}

TEST(LdpBetaTest, PaperParametersGiveBetaAroundEleven) {
  // Sanity anchor: α=3, γ=1, ε=0.01 ⇒ β = (8·ζ(2)/γ_ε)^{1/3} ≈ 10.9.
  EXPECT_NEAR(LdpBeta(PaperParams()), 10.93, 0.05);
}

TEST(LdpBetaTest, LooserEpsilonShrinksSquares) {
  auto tight = PaperParams();
  auto loose = PaperParams();
  loose.epsilon = 0.2;
  EXPECT_LT(LdpBeta(loose), LdpBeta(tight));
}

TEST(LdpBetaTest, HigherAlphaShrinksSquares) {
  // Paper §V observation: larger α ⇒ smaller partitioned squares ⇒ more
  // concurrent links.
  auto a3 = PaperParams();
  auto a5 = PaperParams();
  a5.alpha = 5.0;
  EXPECT_LT(LdpBeta(a5), LdpBeta(a3));
}

TEST(RleC1Test, MatchesFormula59) {
  const auto params = PaperParams();
  const double c2 = 0.5;
  const double zeta = mathx::RiemannZeta(2.0);
  const double expected =
      std::sqrt(2.0) * std::pow(12.0 * zeta / (params.GammaEpsilon() * 0.5),
                                1.0 / 3.0) +
      1.0;
  EXPECT_NEAR(RleC1(params, c2), expected, 1e-12);
}

TEST(RleC1Test, AlwaysGreaterThanOne) {
  for (double c2 : {0.1, 0.5, 0.9}) {
    EXPECT_GT(RleC1(PaperParams(), c2), 1.0);
  }
}

TEST(RleC1Test, GrowsAsC2ApproachesOne) {
  // Leaving less budget for future picks forces a larger clear-out radius.
  const auto params = PaperParams();
  EXPECT_LT(RleC1(params, 0.2), RleC1(params, 0.8));
}

TEST(RleC1Test, InvalidC2Rejected) {
  EXPECT_THROW(RleC1(PaperParams(), 0.0), util::CheckFailure);
  EXPECT_THROW(RleC1(PaperParams(), 1.0), util::CheckFailure);
  EXPECT_THROW(RleC1(PaperParams(), -0.5), util::CheckFailure);
}

TEST(LdpPerSquareBoundTest, PositiveInteger) {
  const double u = LdpPerSquareBound(PaperParams());
  EXPECT_GE(u, 1.0);
  EXPECT_DOUBLE_EQ(u, std::ceil(u));
}

TEST(ApproxLogNRhoTest, NoOutageBudgetMakesSquaresSmaller) {
  // ρ = β·γ_ε^{1/α} < β since γ_ε < 1 — the baseline packs links denser.
  const auto params = PaperParams();
  EXPECT_LT(ApproxLogNRho(params), LdpBeta(params));
  const double expected =
      LdpBeta(params) * std::pow(params.GammaEpsilon(), 1.0 / params.alpha);
  EXPECT_NEAR(ApproxLogNRho(params), expected, 1e-9);
}

TEST(ApproxDiversityC1Test, SmallerThanFadingAwareRadius) {
  const auto params = PaperParams();
  EXPECT_LT(ApproxDiversityC1(params, 0.5), RleC1(params, 0.5));
}

}  // namespace
}  // namespace fadesched::sched
