#include "sched/grid_select.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"

namespace fadesched::sched {
namespace {

TEST(BestLinkPerColoredCellTest, EmptyClassYieldsEmptySchedules) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  const geom::SquareGrid grid({0, 0}, 10.0);
  const auto by_color = BestLinkPerColoredCell(links, {}, grid);
  for (const auto& schedule : by_color) EXPECT_TRUE(schedule.empty());
}

TEST(BestLinkPerColoredCellTest, OneLinkLandsInItsReceiverColor) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {15, 5}, 1.0});  // receiver in cell (1,0)
  const geom::SquareGrid grid({0, 0}, 10.0);
  const std::vector<net::LinkId> clazz{0};
  const auto by_color = BestLinkPerColoredCell(links, clazz, grid);
  const int color = geom::SquareGrid::ColorOf(grid.CellOf(links.Receiver(0)));
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(by_color[c].size(), c == color ? 1u : 0u);
  }
}

TEST(BestLinkPerColoredCellTest, HighestRatePerCellWins) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {2, 2}, 1.0});
  links.Add(net::Link{{1, 0}, {3, 3}, 5.0});  // same cell, higher rate
  links.Add(net::Link{{2, 0}, {4, 4}, 2.0});  // same cell, middle rate
  const geom::SquareGrid grid({0, 0}, 10.0);
  const std::vector<net::LinkId> clazz{0, 1, 2};
  const auto by_color = BestLinkPerColoredCell(links, clazz, grid);
  ASSERT_EQ(by_color[0].size(), 1u);
  EXPECT_EQ(by_color[0][0], 1u);
}

TEST(BestLinkPerColoredCellTest, AtMostOneLinkPerCell) {
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
  std::vector<net::LinkId> clazz(links.Size());
  std::iota(clazz.begin(), clazz.end(), net::LinkId{0});
  const geom::SquareGrid grid({0, 0}, 50.0);
  const auto by_color = BestLinkPerColoredCell(links, clazz, grid);
  for (const auto& schedule : by_color) {
    std::set<std::pair<std::int64_t, std::int64_t>> cells;
    for (net::LinkId id : schedule) {
      const auto cell = grid.CellOf(links.Receiver(id));
      EXPECT_TRUE(cells.insert({cell.a, cell.b}).second)
          << "two links share a cell";
    }
  }
}

TEST(BestLinkPerColoredCellTest, ColorsPartitionTheSelection) {
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  std::vector<net::LinkId> clazz(links.Size());
  std::iota(clazz.begin(), clazz.end(), net::LinkId{0});
  const geom::SquareGrid grid({0, 0}, 80.0);
  const auto by_color = BestLinkPerColoredCell(links, clazz, grid);
  std::set<net::LinkId> all;
  for (int c = 0; c < 4; ++c) {
    for (net::LinkId id : by_color[c]) {
      EXPECT_TRUE(all.insert(id).second) << "link in two colors";
      EXPECT_EQ(geom::SquareGrid::ColorOf(grid.CellOf(links.Receiver(id))), c);
    }
  }
}

TEST(ArgMaxRateTest, PicksHighestTotal) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{5, 0}, {6, 0}, 2.0});
  links.Add(net::Link{{9, 0}, {10, 0}, 4.0});
  const std::vector<net::Schedule> candidates{{0, 1}, {2}, {0}};
  EXPECT_EQ(ArgMaxRate(links, candidates), 1u);  // rate 4 beats 3 and 1
}

TEST(ArgMaxRateTest, TieGoesToFirst) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 2.0});
  links.Add(net::Link{{5, 0}, {6, 0}, 2.0});
  const std::vector<net::Schedule> candidates{{0}, {1}};
  EXPECT_EQ(ArgMaxRate(links, candidates), 0u);
}

}  // namespace
}  // namespace fadesched::sched
