// Differential coverage for the PR 3 far-field cutoff path
// (EngineOptions::cutoff_radius + SpatialHash-pruned matrix build +
// CertifiedSlack): across the same 54-scenario sweep as the backend
// differential test, every engine-driven scheduler must emit the
// *identical* schedule with the cutoff on and off. The cutoff sits far
// beyond the interference-relevant range, so the neglected mass (bounded
// by CertifiedSlack) is orders of magnitude below every feasibility
// margin — and the suite pins that this stays true as the kernel evolves.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "channel/batch_interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "util/thread_pool.hpp"

namespace fadesched::sched {
namespace {

// Mirrors differential_test.cpp: 18 seeds × 3 parameter regimes with
// sizes cycling through {20, 45, 80} in a 500×500 region.
struct CutoffScenario {
  std::uint64_t seed = 0;
  std::size_t num_links = 0;
  channel::ChannelParams params;
};

std::vector<CutoffScenario> MakeScenarios() {
  std::vector<CutoffScenario> scenarios;
  for (std::uint64_t seed = 1; seed <= 18; ++seed) {
    for (int regime = 0; regime < 3; ++regime) {
      CutoffScenario s;
      s.seed = seed * 1000 + static_cast<std::uint64_t>(regime);
      s.num_links = 20 + 25 * ((seed + static_cast<std::uint64_t>(regime)) % 3);
      if (regime == 1) {
        s.params.alpha = 4.0;
        s.params.gamma_th = 2.0;
        s.params.epsilon = 0.003;
      } else if (regime == 2) {
        s.params.alpha = 2.5;
        s.params.noise_power = 1e-7;
      }
      scenarios.push_back(s);
    }
  }
  return scenarios;
}

net::LinkSet MakeLinks(const CutoffScenario& s) {
  rng::Xoshiro256 gen(s.seed);
  return net::MakeUniformScenario(s.num_links, {}, gen);
}

// Far field for a 500×500 region (corner-to-corner ≈ 707 + link length):
// pairs beyond this exist in the sweep, so slack is exercised, while the
// per-pair factor out there is ≤ γ_th·(20/600)^2.5 ≈ 2e-4 — far below
// the γ_ε thresholds the regimes use.
constexpr double kCutoffRadius = 600.0;

const char* const kEngineSchedulers[] = {
    "rle", "fading_greedy", "ldp", "approx_logn", "approx_diversity"};

TEST(DifferentialCutoffTest, SchedulesIdenticalWithCutoffOnAndOff) {
  util::ThreadPool pool(3);
  const std::vector<CutoffScenario> scenarios = MakeScenarios();
  ASSERT_EQ(scenarios.size(), 54u);
  std::size_t scenarios_with_slack = 0;
  for (const CutoffScenario& scenario : scenarios) {
    const net::LinkSet links = MakeLinks(scenario);

    // Non-vacuity probe: the cutoff must actually drop entries somewhere
    // in the sweep, otherwise the agreement below tests nothing.
    channel::EngineOptions probe;
    probe.backend = channel::FactorBackend::kMatrix;
    probe.cutoff_radius = kCutoffRadius;
    const channel::InterferenceEngine probe_engine(links, scenario.params,
                                                   probe);
    if (probe_engine.CertifiedSlack() > 0.0) ++scenarios_with_slack;

    for (const char* name : kEngineSchedulers) {
      channel::EngineOptions exact;
      exact.backend = channel::FactorBackend::kMatrix;
      const net::Schedule reference =
          MakeScheduler(name, exact)->Schedule(links, scenario.params).schedule;

      channel::EngineOptions cut = exact;
      cut.cutoff_radius = kCutoffRadius;
      EXPECT_EQ(MakeScheduler(name, cut)
                    ->Schedule(links, scenario.params)
                    .schedule,
                reference)
          << name << " diverged under cutoff on seed " << scenario.seed
          << " n=" << scenario.num_links;

      // The pooled tiled build with a cutoff must agree too — the
      // SpatialHash pruning is per-tile, so tiling must not change it.
      channel::EngineOptions pooled_cut = cut;
      pooled_cut.pool = &pool;
      pooled_cut.tile_rows = 16;
      EXPECT_EQ(MakeScheduler(name, pooled_cut)
                    ->Schedule(links, scenario.params)
                    .schedule,
                reference)
          << name << " diverged under pooled cutoff on seed "
          << scenario.seed;
    }
  }
  EXPECT_GE(scenarios_with_slack, 1u)
      << "cutoff radius " << kCutoffRadius
      << " never dropped an entry — the agreement test is vacuous";
}

TEST(DifferentialCutoffTest, TightCutoffReportsSlackButStaysSound) {
  // A deliberately aggressive cutoff on one pinned scenario: the slack
  // must be strictly positive and every dropped entry accounted for, even
  // though such a radius is not schedule-preserving in general.
  const CutoffScenario s{7007, 80, {}};
  const net::LinkSet links = MakeLinks(s);
  channel::EngineOptions cut;
  cut.backend = channel::FactorBackend::kMatrix;
  cut.cutoff_radius = 120.0;
  const channel::InterferenceEngine engine(links, s.params, cut);
  EXPECT_GT(engine.CertifiedSlack(), 0.0);

  channel::EngineOptions exact;
  exact.backend = channel::FactorBackend::kMatrix;
  const channel::InterferenceEngine reference(links, s.params, exact);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    for (net::LinkId j = 0; j < links.Size(); ++j) {
      const double dropped = reference.Factor(i, j) - engine.Factor(i, j);
      EXPECT_GE(dropped, -1e-12) << "cutoff added interference at " << i
                                 << "," << j;
      EXPECT_LE(dropped, engine.CertifiedSlack() + 1e-12);
    }
  }
}

}  // namespace
}  // namespace fadesched::sched
