#include "sched/aloha.hpp"

#include <gtest/gtest.h>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/dls.hpp"
#include "sim/exact_metrics.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

TEST(AlohaTest, EmptyInstance) {
  EXPECT_TRUE(
      AlohaScheduler().Schedule(net::LinkSet{}, PaperParams()).schedule.empty());
}

TEST(AlohaTest, FixedProbabilityOneTransmitsEverything) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(50, {}, gen);
  AlohaOptions options;
  options.transmit_probability = 1.0;
  const auto result = AlohaScheduler(options).Schedule(links, PaperParams());
  EXPECT_EQ(result.schedule.size(), links.Size());
}

TEST(AlohaTest, FixedProbabilityRoughlyProportional) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(1000, {}, gen);
  AlohaOptions options;
  options.transmit_probability = 0.3;
  const auto result = AlohaScheduler(options).Schedule(links, PaperParams());
  EXPECT_NEAR(static_cast<double>(result.schedule.size()), 300.0, 60.0);
}

TEST(AlohaTest, DeterministicForSeed) {
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const AlohaScheduler aloha;
  EXPECT_EQ(aloha.Schedule(links, PaperParams()).schedule,
            aloha.Schedule(links, PaperParams()).schedule);
}

TEST(AlohaTest, AutoProbabilityShrinksWithDensity) {
  // Denser networks → larger conflict degree → fewer links transmit
  // (as a fraction of N).
  AlohaOptions options;  // auto mode
  rng::Xoshiro256 gen(4);
  net::UniformScenarioParams sparse;
  sparse.region_size = 2000.0;
  net::UniformScenarioParams dense;
  dense.region_size = 120.0;
  const net::LinkSet sparse_links =
      net::MakeUniformScenario(300, sparse, gen);
  const net::LinkSet dense_links = net::MakeUniformScenario(300, dense, gen);
  const AlohaScheduler aloha(options);
  const double sparse_frac =
      static_cast<double>(
          aloha.Schedule(sparse_links, PaperParams()).schedule.size()) /
      300.0;
  const double dense_frac =
      static_cast<double>(
          aloha.Schedule(dense_links, PaperParams()).schedule.size()) /
      300.0;
  EXPECT_GT(sparse_frac, dense_frac);
}

TEST(AlohaTest, ReliabilityFloorBelowDls) {
  // ALOHA is the uncoordinated floor: on the paper workload its expected
  // failures exceed DLS's (which coordinates via sensing) by a wide
  // margin.
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
  const auto params = PaperParams();
  const auto aloha = AlohaScheduler().Schedule(links, params);
  const auto dls = DlsScheduler().Schedule(links, params);
  const double aloha_failed =
      sim::ComputeExpectedMetrics(links, params, aloha.schedule)
          .expected_failed;
  const double dls_failed =
      sim::ComputeExpectedMetrics(links, params, dls.schedule).expected_failed;
  EXPECT_GT(aloha_failed, 3.0 * std::max(dls_failed, 1e-3));
}

TEST(AlohaTest, InvalidOptionsRejected) {
  AlohaOptions bad;
  bad.transmit_probability = 1.5;
  EXPECT_THROW(AlohaScheduler{bad}, util::CheckFailure);
  bad = AlohaOptions{};
  bad.auto_scale = 0.0;
  EXPECT_THROW(AlohaScheduler{bad}, util::CheckFailure);
}

TEST(DlsStatsTest, StatsPopulatedAndConsistent) {
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const DlsScheduler dls;
  DlsStats stats;
  const auto result = dls.ScheduleWithStats(links, PaperParams(), stats);
  EXPECT_GE(stats.rounds_used, 1u);
  EXPECT_LE(stats.rounds_used, DlsOptions{}.max_rounds);
  EXPECT_GT(stats.estimates, 0u);
  // Everyone not scheduled either backed off or was pruned or was never
  // violating (withdrew links = backoffs + pruned ≤ N − scheduled).
  EXPECT_LE(stats.backoffs + stats.pruned,
            links.Size() - result.schedule.size());
}

TEST(DlsStatsTest, ScheduleMatchesScheduleWithStats) {
  rng::Xoshiro256 gen(7);
  const net::LinkSet links = net::MakeUniformScenario(120, {}, gen);
  const DlsScheduler dls;
  DlsStats stats;
  EXPECT_EQ(dls.Schedule(links, PaperParams()).schedule,
            dls.ScheduleWithStats(links, PaperParams(), stats).schedule);
}

}  // namespace
}  // namespace fadesched::sched
