// Tests for the deterministic-SINR baselines (ApproxLogN [14] and
// ApproxDiversity [15]) — including the paper's central comparison claim:
// their schedules decode under the mean-power model but violate the
// fading-resistant criterion on dense instances.
#include <gtest/gtest.h>

#include <set>

#include "channel/deterministic.hpp"
#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/approx_diversity.hpp"
#include "sched/approx_logn.hpp"
#include "sched/ldp.hpp"
#include "sched/rle.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 1.0;
  params.epsilon = 0.01;
  return params;
}

TEST(ApproxLogNTest, EmptyInstance) {
  const auto result =
      ApproxLogNScheduler().Schedule(net::LinkSet{}, PaperParams());
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_EQ(result.algorithm, "approx_logn");
}

TEST(ApproxLogNTest, SingleLinkScheduled) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  const auto result = ApproxLogNScheduler().Schedule(links, PaperParams());
  EXPECT_EQ(result.schedule, net::Schedule{0});
}

TEST(ApproxLogNTest, SchedulesAreDeterministicallyFeasible) {
  // Theorem-level property of [14]: the schedule decodes under the
  // deterministic SINR model.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
    const auto params = PaperParams();
    const auto result = ApproxLogNScheduler().Schedule(links, params);
    const channel::DeterministicSinr sinr(links, params);
    EXPECT_TRUE(sinr.ScheduleIsFeasible(result.schedule)) << "seed=" << seed;
  }
}

TEST(ApproxDiversityTest, SchedulesAreDeterministicallyFeasible) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
    const auto params = PaperParams();
    const auto result = ApproxDiversityScheduler().Schedule(links, params);
    const channel::DeterministicSinr sinr(links, params);
    EXPECT_TRUE(sinr.ScheduleIsFeasible(result.schedule)) << "seed=" << seed;
  }
}

TEST(ApproxDiversityTest, EmptyAndSingle) {
  const ApproxDiversityScheduler sched;
  EXPECT_TRUE(sched.Schedule(net::LinkSet{}, PaperParams()).schedule.empty());
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  EXPECT_EQ(sched.Schedule(links, PaperParams()).schedule, net::Schedule{0});
}

TEST(ApproxDiversityTest, InvalidOptionsRejected) {
  ApproxDiversityOptions bad;
  bad.c2 = 1.5;
  EXPECT_THROW(ApproxDiversityScheduler{bad}, util::CheckFailure);
}

TEST(BaselinesTest, ScheduleMoreLinksThanFadingResistantCounterparts) {
  // The baselines ignore the outage budget, so they pack denser — that is
  // exactly why they fail under fading (paper Fig. 5 vs Fig. 6).
  rng::Xoshiro256 gen(42);
  const net::LinkSet links = net::MakeUniformScenario(400, {}, gen);
  const auto params = PaperParams();
  const auto ldp = LdpScheduler().Schedule(links, params);
  const auto rle = RleScheduler().Schedule(links, params);
  const auto logn = ApproxLogNScheduler().Schedule(links, params);
  const auto diversity = ApproxDiversityScheduler().Schedule(links, params);
  EXPECT_GT(logn.schedule.size(), ldp.schedule.size());
  EXPECT_GT(diversity.schedule.size(), rle.schedule.size());
}

TEST(BaselinesTest, FadingSusceptibleOnDenseInstances) {
  // On a dense instance the baseline schedules violate Corollary 3.1 —
  // the paper's core comparison claim.
  rng::Xoshiro256 gen(43);
  const net::LinkSet links = net::MakeUniformScenario(400, {}, gen);
  const auto params = PaperParams();
  const channel::InterferenceCalculator calc(links, params);
  const auto logn = ApproxLogNScheduler().Schedule(links, params);
  const auto diversity = ApproxDiversityScheduler().Schedule(links, params);
  EXPECT_FALSE(channel::ScheduleIsFeasible(calc, logn.schedule));
  EXPECT_FALSE(channel::ScheduleIsFeasible(calc, diversity.schedule));
}

TEST(BaselinesTest, UniqueValidIds) {
  rng::Xoshiro256 gen(44);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const ApproxLogNScheduler logn;
  const ApproxDiversityScheduler diversity;
  for (const Scheduler* scheduler :
       std::initializer_list<const Scheduler*>{&logn, &diversity}) {
    const auto result = scheduler->Schedule(links, PaperParams());
    std::set<net::LinkId> seen;
    for (net::LinkId id : result.schedule) {
      EXPECT_LT(id, links.Size());
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
}

}  // namespace
}  // namespace fadesched::sched
