#include "sched/ldp.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams MakeParams(double alpha, double epsilon) {
  channel::ChannelParams params;
  params.alpha = alpha;
  params.epsilon = epsilon;
  return params;
}

TEST(LdpTest, EmptyInstanceYieldsEmptySchedule) {
  const LdpScheduler ldp;
  const auto result = ldp.Schedule(net::LinkSet{}, MakeParams(3.0, 0.01));
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_DOUBLE_EQ(result.claimed_rate, 0.0);
  EXPECT_EQ(result.algorithm, "ldp");
}

TEST(LdpTest, SingleLinkAlwaysScheduled) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 3.0});
  const LdpScheduler ldp;
  const auto result = ldp.Schedule(links, MakeParams(3.0, 0.01));
  EXPECT_EQ(result.schedule, net::Schedule{0});
  EXPECT_DOUBLE_EQ(result.claimed_rate, 3.0);
}

TEST(LdpTest, ScheduleIdsAreValidAndUnique) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const auto result = LdpScheduler().Schedule(links, MakeParams(3.0, 0.01));
  std::set<net::LinkId> seen;
  for (net::LinkId id : result.schedule) {
    EXPECT_LT(id, links.Size());
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(LdpTest, DeterministicAcrossCalls) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const LdpScheduler ldp;
  const auto a = ldp.Schedule(links, MakeParams(3.0, 0.01));
  const auto b = ldp.Schedule(links, MakeParams(3.0, 0.01));
  EXPECT_EQ(a.schedule, b.schedule);
}

TEST(LdpTest, ClaimedRateMatchesScheduleSum) {
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeWeightedScenario(100, {}, gen);
  const auto result = LdpScheduler().Schedule(links, MakeParams(3.0, 0.01));
  EXPECT_NEAR(result.claimed_rate, links.TotalRate(result.schedule), 1e-12);
}

TEST(LdpTest, InvalidOptionsRejected) {
  LdpOptions options;
  options.beta_scale = 0.0;
  EXPECT_THROW(LdpScheduler{options}, util::CheckFailure);
}

// ---------------------------------------------------------------------------
// Theorem 4.1 (feasibility) as a property test across the parameter grid
// the paper evaluates: every LDP schedule satisfies Corollary 3.1.
// ---------------------------------------------------------------------------

using GridParam = std::tuple<std::size_t /*links*/, double /*alpha*/,
                             double /*epsilon*/, std::uint64_t /*seed*/>;

class LdpFeasibilityTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(LdpFeasibilityTest, ScheduleSatisfiesCorollary31) {
  const auto [n, alpha, epsilon, seed] = GetParam();
  rng::Xoshiro256 gen(seed);
  const net::LinkSet links = net::MakeUniformScenario(n, {}, gen);
  const auto params = MakeParams(alpha, epsilon);
  const auto result = LdpScheduler().Schedule(links, params);
  const channel::InterferenceCalculator calc(links, params);
  EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
      << "n=" << n << " alpha=" << alpha << " eps=" << epsilon
      << " seed=" << seed << " scheduled=" << result.schedule.size();
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, LdpFeasibilityTest,
    ::testing::Combine(::testing::Values(50, 150, 400),
                       ::testing::Values(2.5, 3.0, 4.0, 4.5),
                       ::testing::Values(0.01, 0.05),
                       ::testing::Values(1, 2, 3)));

TEST(LdpFeasibilityTest, HoldsOnClusteredTopologies) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeClusteredScenario(200, {}, gen);
    const auto params = MakeParams(3.0, 0.01);
    const auto result = LdpScheduler().Schedule(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
        << "seed=" << seed;
  }
}

TEST(LdpFeasibilityTest, HoldsOnDiverseLengthTopologies) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeDiverseLengthScenario(150, {}, gen);
    const auto params = MakeParams(3.0, 0.01);
    const auto result = LdpScheduler().Schedule(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
        << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// The paper's claimed improvement: one-sided classes admit at least the
// rate of the two-sided classes of [14] (every two-sided class is a subset
// of the one-sided class at the same magnitude, over the same grid).
// ---------------------------------------------------------------------------

TEST(LdpClassAblationTest, OneSidedNeverWorseThanTwoSided) {
  LdpOptions two_sided;
  two_sided.two_sided_classes = true;
  const LdpScheduler one(LdpOptions{});
  const LdpScheduler two(two_sided);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeWeightedScenario(200, {}, gen);
    const auto params = MakeParams(3.0, 0.01);
    const auto rate_one = one.Schedule(links, params).claimed_rate;
    const auto rate_two = two.Schedule(links, params).claimed_rate;
    EXPECT_GE(rate_one, rate_two - 1e-9) << "seed=" << seed;
  }
}

TEST(LdpClassAblationTest, TwoSidedVariantAlsoFeasible) {
  LdpOptions options;
  options.two_sided_classes = true;
  const LdpScheduler ldp(options);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
    const auto params = MakeParams(3.0, 0.01);
    const auto result = ldp.Schedule(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule));
  }
}

TEST(LdpTest, LargerBetaScaleSchedulesNoMoreLinks) {
  // Bigger squares ⇒ fewer same-colour cells ⇒ at most as many links.
  rng::Xoshiro256 gen(7);
  const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
  const auto params = MakeParams(3.0, 0.01);
  LdpOptions wide;
  wide.beta_scale = 2.0;
  const auto base = LdpScheduler().Schedule(links, params);
  const auto scaled = LdpScheduler(wide).Schedule(links, params);
  EXPECT_LE(scaled.schedule.size(), base.schedule.size());
}

}  // namespace
}  // namespace fadesched::sched
