// Scheduler behaviour under the ambient-noise extension: every
// fading-resistant scheduler must still emit Corollary-3.1-feasible
// schedules when N₀ > 0, must never schedule a link whose noise factor
// alone exceeds γ_ε, and must degrade gracefully as noise rises.
#include <gtest/gtest.h>

#include <tuple>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams NoisyParams(double noise_relative) {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.05;
  // Noise as a fraction of the γ_ε budget of a length-20 link (the
  // longest the paper's generator emits): noise_relative = 1 would make
  // the longest links borderline-hopeless.
  params.noise_power = noise_relative * params.GammaEpsilon() *
                       params.MeanPower(20.0) / params.gamma_th;
  return params;
}

using NoiseGrid =
    std::tuple<const char* /*algorithm*/, double /*noise_relative*/,
               std::uint64_t /*seed*/>;

class NoisyFeasibilityTest : public ::testing::TestWithParam<NoiseGrid> {};

TEST_P(NoisyFeasibilityTest, SchedulesRemainFeasible) {
  const auto [name, noise_relative, seed] = GetParam();
  rng::Xoshiro256 gen(seed);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const auto params = NoisyParams(noise_relative);
  const auto result = MakeScheduler(name)->Schedule(links, params);
  const channel::InterferenceCalculator calc(links, params);
  EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
      << name << " noise_rel=" << noise_relative << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    NoiseGridSweep, NoisyFeasibilityTest,
    ::testing::Combine(::testing::Values("ldp", "rle", "fading_greedy"),
                       ::testing::Values(0.1, 0.5, 0.9),
                       ::testing::Values(1, 2, 3)));

TEST(NoisySchedulersTest, HopelessLinksNeverScheduled) {
  // Crank noise so that every link longer than ~10 is hopeless.
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.05;
  params.noise_power =
      params.GammaEpsilon() * params.MeanPower(10.0) / params.gamma_th;
  const channel::InterferenceCalculator calc(links, params);
  for (const char* name : {"ldp", "rle", "fading_greedy", "dls"}) {
    const auto result = MakeScheduler(name)->Schedule(links, params);
    for (net::LinkId id : result.schedule) {
      EXPECT_LT(calc.NoiseFactor(id), params.GammaEpsilon())
          << name << " scheduled hopeless link " << id;
    }
  }
}

TEST(NoisySchedulersTest, ThroughputDegradesWithNoise) {
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
  for (const char* name : {"rle", "fading_greedy"}) {
    const double quiet = MakeScheduler(name)
                             ->Schedule(links, NoisyParams(0.0))
                             .claimed_rate;
    const double loud = MakeScheduler(name)
                            ->Schedule(links, NoisyParams(0.9))
                            .claimed_rate;
    EXPECT_LE(loud, quiet) << name;
  }
}

TEST(NoisySchedulersTest, ZeroNoiseReproducesPaperBehaviour) {
  // The extension must be a strict superset: N₀ = 0 gives bit-identical
  // schedules to the original implementation.
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  channel::ChannelParams base;
  base.alpha = 3.0;
  channel::ChannelParams zero_noise = base;
  zero_noise.noise_power = 0.0;
  for (const char* name : {"ldp", "rle", "approx_logn", "approx_diversity",
                           "fading_greedy", "dls"}) {
    EXPECT_EQ(MakeScheduler(name)->Schedule(links, base).schedule,
              MakeScheduler(name)->Schedule(links, zero_noise).schedule)
        << name;
  }
}

TEST(NoisySchedulersTest, ExactSolverAccountsForNoise) {
  // Two far-apart links, noise that only the longer one cannot absorb:
  // the optimum is exactly the short link.
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {4, 0}, 1.0});
  links.Add(net::Link{{1000, 0}, {1012, 0}, 5.0});  // heavier but long
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.05;
  // Noise factor of a length-12 link above γ_ε; length-4 far below.
  params.noise_power =
      1.5 * params.GammaEpsilon() * params.MeanPower(12.0) / params.gamma_th;
  const auto result = MakeScheduler("exact_bb")->Schedule(links, params);
  EXPECT_EQ(result.schedule, net::Schedule{0});
}

}  // namespace
}  // namespace fadesched::sched
