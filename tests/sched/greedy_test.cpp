#include "sched/greedy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/ldp.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

TEST(FadingGreedyTest, EmptyInstance) {
  const auto result =
      FadingGreedyScheduler().Schedule(net::LinkSet{}, PaperParams());
  EXPECT_TRUE(result.schedule.empty());
}

TEST(FadingGreedyTest, SingleLinkScheduled) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 2.0});
  const auto result = FadingGreedyScheduler().Schedule(links, PaperParams());
  EXPECT_EQ(result.schedule, net::Schedule{0});
}

TEST(FadingGreedyTest, AlwaysFeasibleByConstruction) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(250, {}, gen);
    const auto params = PaperParams();
    const auto result = FadingGreedyScheduler().Schedule(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
        << "seed=" << seed;
  }
}

TEST(FadingGreedyTest, FeasibleOnWeightedInstances) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeWeightedScenario(200, {}, gen);
    const auto params = PaperParams();
    const auto result = FadingGreedyScheduler().Schedule(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule));
  }
}

TEST(FadingGreedyTest, MaximalSchedule) {
  // No unscheduled link can be added without breaking feasibility —
  // greedy only rejects links that genuinely do not fit *at the time*;
  // since interference only grows, rejected-now is rejected-forever, so
  // the final schedule is maximal.
  rng::Xoshiro256 gen(20);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const auto params = PaperParams();
  const auto result = FadingGreedyScheduler().Schedule(links, params);
  const channel::InterferenceCalculator calc(links, params);
  const std::set<net::LinkId> chosen(result.schedule.begin(),
                                     result.schedule.end());
  for (net::LinkId candidate = 0; candidate < links.Size(); ++candidate) {
    if (chosen.count(candidate)) continue;
    net::Schedule extended = result.schedule;
    extended.push_back(candidate);
    EXPECT_FALSE(channel::ScheduleIsFeasible(calc, extended))
        << "link " << candidate << " could have been added";
  }
}

TEST(FadingGreedyTest, PrefersHighRateLinks) {
  // Two isolated clusters; within each, only one link can win. The high
  // rate link must be chosen over the overlapping low-rate one.
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  links.Add(net::Link{{0, 1}, {5, 1}, 9.0});  // same area, higher rate
  const auto result = FadingGreedyScheduler().Schedule(links, PaperParams());
  ASSERT_EQ(result.schedule.size(), 1u);
  EXPECT_EQ(result.schedule[0], 1u);
}

TEST(FadingGreedyTest, BeatsLdpOnPaperScenario) {
  // Not a theorem — an empirical regression anchor: greedy, which reasons
  // about exact budgets, should out-schedule the grid-quantized LDP.
  rng::Xoshiro256 gen(21);
  const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
  const auto params = PaperParams();
  const auto greedy = FadingGreedyScheduler().Schedule(links, params);
  const auto ldp = LdpScheduler().Schedule(links, params);
  EXPECT_GE(greedy.claimed_rate, ldp.claimed_rate);
}

TEST(FadingGreedyTest, Deterministic) {
  rng::Xoshiro256 gen(22);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const FadingGreedyScheduler greedy;
  EXPECT_EQ(greedy.Schedule(links, PaperParams()).schedule,
            greedy.Schedule(links, PaperParams()).schedule);
}

}  // namespace
}  // namespace fadesched::sched
