// Executable validation of Theorem 3.2: the Knapsack → Fading-R-LS
// reduction maps optima exactly (max throughput = 2·Σp + knapsack optimum)
// on every brute-forceable instance.
#include "sched/knapsack_reduction.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/exact.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams ReductionParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 1.0;
  params.epsilon = 0.01;
  return params;
}

TEST(KnapsackDpTest, KnownSmallInstance) {
  // Items (value, weight): (60,10), (100,20), (120,30); W = 50 -> 220.
  KnapsackInstance knap;
  knap.items = {{60, 10}, {100, 20}, {120, 30}};
  knap.capacity = 50;
  EXPECT_DOUBLE_EQ(SolveKnapsackExact(knap), 220.0);
}

TEST(KnapsackDpTest, NothingFits) {
  KnapsackInstance knap;
  knap.items = {{10, 8}, {7, 9}};
  knap.capacity = 5;
  EXPECT_DOUBLE_EQ(SolveKnapsackExact(knap), 0.0);
}

TEST(KnapsackDpTest, EverythingFits) {
  KnapsackInstance knap;
  knap.items = {{1, 1}, {2, 1}, {3, 1}};
  knap.capacity = 10;
  EXPECT_DOUBLE_EQ(SolveKnapsackExact(knap), 6.0);
}

TEST(KnapsackDpTest, NonIntegerInputsRejected) {
  KnapsackInstance knap;
  knap.items = {{1.0, 1.5}};
  knap.capacity = 5;
  EXPECT_THROW(SolveKnapsackExact(knap), util::CheckFailure);
}

TEST(ReductionTest, GeometryMatchesConstruction) {
  KnapsackInstance knap;
  knap.items = {{5, 2}, {8, 3}};
  knap.capacity = 5;
  const auto params = ReductionParams();
  const ReducedInstance reduced = ReduceKnapsackToFadingRLS(knap, params);
  ASSERT_EQ(reduced.links.Size(), 3u);
  EXPECT_EQ(reduced.probe_link, 2u);
  EXPECT_DOUBLE_EQ(reduced.probe_rate, 2.0 * 13.0);
  // Probe link: sender (0,1), receiver (0,0), length 1.
  EXPECT_DOUBLE_EQ(reduced.links.Length(reduced.probe_link), 1.0);
  // Item senders on the x-axis.
  for (net::LinkId i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(reduced.links.Sender(i).y, 0.0);
    EXPECT_GT(reduced.links.Sender(i).x, 0.0);
  }
}

TEST(ReductionTest, ItemFactorOnProbeEqualsScaledWeight) {
  // The defining property of the sender placement (Formula (23)):
  // f_{i, probe} = γ_ε · w_i / W.
  KnapsackInstance knap;
  knap.items = {{5, 2}, {8, 3}, {4, 4}};
  knap.capacity = 6;
  const auto params = ReductionParams();
  const ReducedInstance reduced = ReduceKnapsackToFadingRLS(knap, params);
  const channel::InterferenceCalculator calc(reduced.links, params);
  for (std::size_t i = 0; i < knap.items.size(); ++i) {
    const double expected =
        params.GammaEpsilon() * knap.items[i].weight / knap.capacity;
    EXPECT_NEAR(calc.Factor(i, reduced.probe_link), expected, 1e-12)
        << "item " << i;
  }
}

TEST(ReductionTest, ItemLinksDecodeUnderFullActivation) {
  // δ is chosen so every item link survives even when *all* senders are
  // active (the inequality (31) budget).
  KnapsackInstance knap;
  knap.items = {{5, 2}, {8, 3}, {4, 4}, {9, 5}};
  knap.capacity = 10;
  const auto params = ReductionParams();
  const ReducedInstance reduced = ReduceKnapsackToFadingRLS(knap, params);
  const channel::InterferenceCalculator calc(reduced.links, params);
  net::Schedule everything;
  for (net::LinkId i = 0; i < reduced.links.Size(); ++i) {
    everything.push_back(i);
  }
  for (std::size_t i = 0; i < knap.items.size(); ++i) {
    EXPECT_TRUE(channel::LinkIsInformed(calc, everything, i)) << "item " << i;
  }
}

TEST(ReductionTest, EqualWeightsRejected) {
  KnapsackInstance knap;
  knap.items = {{5, 3}, {8, 3}};  // coincident senders
  knap.capacity = 6;
  EXPECT_THROW(ReduceKnapsackToFadingRLS(knap, ReductionParams()),
               util::CheckFailure);
}

TEST(ReductionTest, OverweightItemRejected) {
  KnapsackInstance knap;
  knap.items = {{5, 11}};
  knap.capacity = 10;
  EXPECT_THROW(ReduceKnapsackToFadingRLS(knap, ReductionParams()),
               util::CheckFailure);
}

// ---------------------------------------------------------------------------
// The equivalence itself, on random brute-forceable instances.
// ---------------------------------------------------------------------------

class ReductionEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReductionEquivalenceTest, OptimaMapExactly) {
  rng::Xoshiro256 gen(GetParam());
  KnapsackInstance knap;
  const std::size_t n = 3 + rng::UniformIndex(gen, 4);  // 3..6 items
  knap.capacity = 20;
  std::set<double> used_weights;
  for (std::size_t i = 0; i < n; ++i) {
    double weight;
    do {
      weight = static_cast<double>(1 + rng::UniformIndex(gen, 15));
    } while (!used_weights.insert(weight).second);
    const double value = static_cast<double>(1 + rng::UniformIndex(gen, 30));
    knap.items.push_back({value, weight});
  }

  const auto params = ReductionParams();
  const ReducedInstance reduced = ReduceKnapsackToFadingRLS(knap, params);
  const double fading_opt =
      BranchAndBoundScheduler().Schedule(reduced.links, params).claimed_rate;
  const double knap_opt = SolveKnapsackExact(knap);

  double total_value = 0.0;
  for (const auto& item : knap.items) total_value += item.value;
  EXPECT_NEAR(fading_opt, 2.0 * total_value + knap_opt, 1e-6)
      << "seed=" << GetParam() << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Both directions of the ⇔, pointwise on random subsets (not just at the
// optimum): the probe link decodes together with item set S if and only
// if S fits the knapsack.
// ---------------------------------------------------------------------------

class ReductionIffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReductionIffTest, ProbeDecodesIffSubsetFitsCapacity) {
  rng::Xoshiro256 gen(GetParam());
  KnapsackInstance knap;
  const std::size_t n = 4 + rng::UniformIndex(gen, 4);  // 4..7 items
  knap.capacity = 25;
  std::set<double> used_weights;
  for (std::size_t i = 0; i < n; ++i) {
    double weight;
    do {
      weight = static_cast<double>(1 + rng::UniformIndex(gen, 20));
    } while (!used_weights.insert(weight).second);
    knap.items.push_back(
        {static_cast<double>(1 + rng::UniformIndex(gen, 30)), weight});
  }
  const auto params = ReductionParams();
  const ReducedInstance reduced = ReduceKnapsackToFadingRLS(knap, params);
  const channel::InterferenceCalculator calc(reduced.links, params);

  bool saw_fit = false;
  bool saw_overflow = false;
  for (int trial = 0; trial < 40; ++trial) {
    // Random item subset S (each item in with probability 1/2).
    net::Schedule schedule;
    double weight = 0.0;
    double value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng::UniformIndex(gen, 2) == 0) continue;
      schedule.push_back(i);
      weight += knap.items[i].weight;
      value += knap.items[i].value;
    }
    schedule.push_back(reduced.probe_link);
    const bool fits = weight <= knap.capacity;
    saw_fit = saw_fit || fits;
    saw_overflow = saw_overflow || !fits;

    double informed_rate = 0.0;
    bool probe_informed = false;
    bool items_informed = true;
    for (const channel::LinkFeasibility& lf :
         channel::AnalyzeSchedule(calc, schedule)) {
      if (lf.link == reduced.probe_link) {
        probe_informed = lf.informed;
      } else {
        items_informed = items_informed && lf.informed;
      }
      if (lf.informed) informed_rate += reduced.links.Rate(lf.link);
    }
    // (⇐) Item links always decode, whatever transmits alongside.
    EXPECT_TRUE(items_informed) << "seed=" << GetParam();
    // (⇔) The capacity gadget: probe informed exactly when S fits.
    EXPECT_EQ(probe_informed, fits)
        << "seed=" << GetParam() << " weight=" << weight;
    // (⇒) A fitting subset therefore realizes rate 2·Σp + value(S), the
    // schedule the optimum-mapping argument counts.
    if (fits) {
      EXPECT_NEAR(informed_rate, reduced.probe_rate + value, 1e-6);
    }
  }
  // The sampled subsets must exercise both sides of the equivalence.
  EXPECT_TRUE(saw_fit);
  EXPECT_TRUE(saw_overflow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionIffTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace fadesched::sched
