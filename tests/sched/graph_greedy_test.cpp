#include "sched/graph_greedy.hpp"

#include <gtest/gtest.h>

#include "channel/feasibility.hpp"
#include "channel/graph_model.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/approx_diversity.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

TEST(GraphGreedyTest, EmptyAndSingle) {
  const GraphGreedyScheduler sched;
  EXPECT_TRUE(sched.Schedule(net::LinkSet{}, PaperParams()).schedule.empty());
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  EXPECT_EQ(sched.Schedule(links, PaperParams()).schedule, net::Schedule{0});
}

TEST(GraphGreedyTest, OutputIsIndependentSet) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
  const GraphGreedyOptions options;
  const auto result =
      GraphGreedyScheduler(options).Schedule(links, PaperParams());
  const channel::GraphInterference graph(links, options.graph);
  EXPECT_TRUE(graph.ScheduleIsIndependent(result.schedule));
}

TEST(GraphGreedyTest, OutputIsMaximal) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const GraphGreedyOptions options;
  const auto result =
      GraphGreedyScheduler(options).Schedule(links, PaperParams());
  const channel::GraphInterference graph(links, options.graph);
  std::vector<char> chosen(links.Size(), 0);
  for (net::LinkId id : result.schedule) chosen[id] = 1;
  for (net::LinkId candidate = 0; candidate < links.Size(); ++candidate) {
    if (chosen[candidate]) continue;
    bool clashes = false;
    for (net::LinkId member : result.schedule) {
      if (graph.Conflict(candidate, member)) {
        clashes = true;
        break;
      }
    }
    EXPECT_TRUE(clashes) << "link " << candidate << " could join";
  }
}

TEST(GraphGreedyTest, PrefersHighRates) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  links.Add(net::Link{{0, 1}, {5, 1}, 9.0});  // conflicts, higher rate
  const auto result = GraphGreedyScheduler().Schedule(links, PaperParams());
  ASSERT_EQ(result.schedule.size(), 1u);
  EXPECT_EQ(result.schedule[0], 1u);
}

TEST(GraphGreedyTest, WorstFailureRateOfAllModels) {
  // The paper's model hierarchy made measurable: graph-model schedules
  // violate the fading criterion even harder than deterministic-SINR ones
  // (they ignore accumulation entirely), packing the most links.
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(400, {}, gen);
  const auto params = PaperParams();
  const channel::InterferenceCalculator calc(links, params);
  const auto graph = GraphGreedyScheduler().Schedule(links, params);
  const auto sinr = ApproxDiversityScheduler().Schedule(links, params);
  EXPECT_GT(graph.schedule.size(), sinr.schedule.size());
  EXPECT_FALSE(channel::ScheduleIsFeasible(calc, graph.schedule));
}

TEST(GraphGreedyTest, Deterministic) {
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const GraphGreedyScheduler sched;
  EXPECT_EQ(sched.Schedule(links, PaperParams()).schedule,
            sched.Schedule(links, PaperParams()).schedule);
}

}  // namespace
}  // namespace fadesched::sched
