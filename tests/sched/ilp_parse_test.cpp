#include "sched/ilp_parse.hpp"

#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/exact.hpp"
#include "sched/ilp_export.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

TEST(IlpParseTest, ParsesHandWrittenProgram) {
  const std::string lp =
      "\\ comment\n"
      "Maximize\n"
      " obj: 2 x0 + 3 x1 + x2\n"
      "Subject To\n"
      " c0: 1 x0 + 1 x1 <= 1\n"
      " c1: 0.5 x2 <= 2\n"
      "Binary\n"
      " x0\n"
      " x1\n"
      " x2\n"
      "End\n";
  const ParsedIlp ilp = ParseIlpText(lp);
  EXPECT_EQ(ilp.num_variables, 3u);
  EXPECT_DOUBLE_EQ(ilp.objective[0], 2.0);
  EXPECT_DOUBLE_EQ(ilp.objective[1], 3.0);
  EXPECT_DOUBLE_EQ(ilp.objective[2], 1.0);
  ASSERT_EQ(ilp.constraints.size(), 2u);
  EXPECT_EQ(ilp.constraints[0].name, "c0");
  EXPECT_DOUBLE_EQ(ilp.constraints[0].rhs, 1.0);
  EXPECT_EQ(ilp.binaries.size(), 3u);
}

TEST(IlpParseTest, ExhaustiveSolverKnownOptimum) {
  // x0 and x1 exclusive (<=1 knapsack), x2 free: best = 3 + 1 = 4.
  const std::string lp =
      "Maximize\n obj: 2 x0 + 3 x1 + x2\n"
      "Subject To\n c0: 1 x0 + 1 x1 <= 1\n"
      "Binary\n x0\n x1\n x2\nEnd\n";
  EXPECT_DOUBLE_EQ(SolveParsedIlpExhaustive(ParseIlpText(lp)), 4.0);
}

TEST(IlpParseTest, NegativeCoefficientsSupported) {
  const std::string lp =
      "Maximize\n obj: 5 x0 + 4 x1\n"
      "Subject To\n c0: 2 x0 - 1 x1 <= 1\n"
      "Binary\n x0\n x1\nEnd\n";
  // x0 alone violates (2 > 1); x0+x1 gives lhs 1 <= 1 -> 9.
  EXPECT_DOUBLE_EQ(SolveParsedIlpExhaustive(ParseIlpText(lp)), 9.0);
}

TEST(IlpParseTest, ImplicitUnitCoefficient) {
  const std::string lp =
      "Maximize\n obj: x0\n"
      "Subject To\n c0: x0 <= 0\n"
      "Binary\n x0\nEnd\n";
  EXPECT_DOUBLE_EQ(SolveParsedIlpExhaustive(ParseIlpText(lp)), 0.0);
}

TEST(IlpParseTest, MissingEndRejected) {
  EXPECT_THROW(ParseIlpText("Maximize\n obj: x0\nBinary\n x0\n"),
               util::CheckFailure);
}

TEST(IlpParseTest, EqualityConstraintRejected) {
  EXPECT_THROW(
      ParseIlpText("Maximize\n obj: x0\nSubject To\n c0: x0 = 1\n"
                   "Binary\n x0\nEnd\n"),
      util::CheckFailure);
}

TEST(IlpParseTest, GarbageTokenRejected) {
  EXPECT_THROW(
      ParseIlpText("Maximize\n obj: banana x0\nBinary\n x0\nEnd\n"),
      util::CheckFailure);
}

class IlpRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpRoundTripTest, ExportParseSolveMatchesBranchAndBound) {
  // End-to-end validation of the exporter: the independently parsed and
  // exhaustively solved LP file must have the same optimum as our branch
  // and bound on the original instance.
  rng::Xoshiro256 gen(GetParam());
  net::UniformScenarioParams sp;
  sp.region_size = 120.0;
  const net::LinkSet links = net::MakeUniformScenario(12, sp, gen);
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.05;

  const std::string lp = FormatIlp(links, params);
  const ParsedIlp parsed = ParseIlpText(lp);
  ASSERT_EQ(parsed.num_variables, links.Size());
  const double via_lp = SolveParsedIlpExhaustive(parsed);
  const double via_bb =
      BranchAndBoundScheduler().Schedule(links, params).claimed_rate;
  EXPECT_NEAR(via_lp, via_bb, 1e-6) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpRoundTripTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(IlpParseTest, OversizedProgramRejected) {
  ParsedIlp big;
  big.num_variables = 30;
  big.objective.assign(30, 1.0);
  for (std::size_t i = 0; i < 30; ++i) big.binaries.push_back(i);
  EXPECT_THROW(SolveParsedIlpExhaustive(big, 24), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::sched
