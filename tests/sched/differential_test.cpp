// Differential tests: every scheduler must return the *identical* schedule
// whether its feasibility sums come from the reference calculator, the
// precomputed fast tables, a materialized (optionally thread-pool built)
// matrix, or the SIMD precision-ladder fast matrix build — at the native
// dispatch tier and forced scalar. This is the schedule-level guarantee
// that the batched engine is a pure optimization, checked across 50+
// seeded scenarios (and re-run by CI under FADESCHED_NO_SIMD=1).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "channel/batch_interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/approx_diversity.hpp"
#include "sched/approx_logn.hpp"
#include "sched/greedy.hpp"
#include "sched/ldp.hpp"
#include "sched/rle.hpp"
#include "util/thread_pool.hpp"

namespace fadesched::sched {
namespace {

struct Scenario {
  std::uint64_t seed = 0;
  std::size_t num_links = 0;
  channel::ChannelParams params;
};

std::vector<Scenario> MakeScenarios() {
  // 54 scenarios: 18 seeds × 3 parameter regimes, sizes cycling through
  // {20, 45, 80}. Regimes cover the paper's defaults, a high-α/strict-ε
  // channel, and an ambient-noise extension.
  std::vector<Scenario> scenarios;
  for (std::uint64_t seed = 1; seed <= 18; ++seed) {
    for (int regime = 0; regime < 3; ++regime) {
      Scenario s;
      s.seed = seed * 1000 + static_cast<std::uint64_t>(regime);
      s.num_links = 20 + 25 * ((seed + static_cast<std::uint64_t>(regime)) % 3);
      if (regime == 1) {
        s.params.alpha = 4.0;
        s.params.gamma_th = 2.0;
        s.params.epsilon = 0.003;
      } else if (regime == 2) {
        s.params.alpha = 2.5;
        s.params.noise_power = 1e-7;
      }
      scenarios.push_back(s);
    }
  }
  return scenarios;
}

net::LinkSet MakeLinks(const Scenario& s) {
  rng::Xoshiro256 gen(s.seed);
  return net::MakeUniformScenario(s.num_links, {}, gen);
}

std::vector<channel::EngineOptions> BackendSweep(util::ThreadPool* pool) {
  std::vector<channel::EngineOptions> sweep;
  channel::EngineOptions calculator;
  calculator.backend = channel::FactorBackend::kCalculator;
  sweep.push_back(calculator);
  channel::EngineOptions tables;  // the default
  sweep.push_back(tables);
  channel::EngineOptions matrix;
  matrix.backend = channel::FactorBackend::kMatrix;
  sweep.push_back(matrix);
  channel::EngineOptions pooled_matrix = matrix;
  pooled_matrix.pool = pool;
  pooled_matrix.tile_rows = 16;
  sweep.push_back(pooled_matrix);
  // Precision-ladder fast builds: once at the dispatcher's preferred SIMD
  // tier (which FADESCHED_NO_SIMD=1 pins to scalar — CI runs this suite
  // in both modes) and once at the forced-scalar tier, so a single run
  // still differentials fast-vs-scalar.
  channel::EngineOptions fast = matrix;
  fast.ladder.enabled = true;
  sweep.push_back(fast);
  channel::EngineOptions fast_scalar = fast;
  fast_scalar.ladder.force_level = channel::SimdLevel::kScalar;
  sweep.push_back(fast_scalar);
  return sweep;
}

using SchedulerFactory =
    std::unique_ptr<Scheduler> (*)(const channel::EngineOptions&);

struct NamedFactory {
  const char* name;
  SchedulerFactory make;
};

const NamedFactory kFactories[] = {
    {"rle",
     [](const channel::EngineOptions& engine) -> std::unique_ptr<Scheduler> {
       RleOptions options;
       options.interference = engine;
       return std::make_unique<RleScheduler>(options);
     }},
    {"fading_greedy",
     [](const channel::EngineOptions& engine) -> std::unique_ptr<Scheduler> {
       FadingGreedyOptions options;
       options.interference = engine;
       return std::make_unique<FadingGreedyScheduler>(options);
     }},
    {"ldp",
     [](const channel::EngineOptions& engine) -> std::unique_ptr<Scheduler> {
       LdpOptions options;
       options.interference = engine;
       return std::make_unique<LdpScheduler>(options);
     }},
    {"approx_logn",
     [](const channel::EngineOptions& engine) -> std::unique_ptr<Scheduler> {
       ApproxLogNOptions options;
       options.interference = engine;
       return std::make_unique<ApproxLogNScheduler>(options);
     }},
    {"approx_diversity",
     [](const channel::EngineOptions& engine) -> std::unique_ptr<Scheduler> {
       ApproxDiversityOptions options;
       options.interference = engine;
       return std::make_unique<ApproxDiversityScheduler>(options);
     }},
};

TEST(DifferentialTest, AllSchedulersAgreeAcrossBackends) {
  util::ThreadPool pool(3);
  const std::vector<Scenario> scenarios = MakeScenarios();
  ASSERT_GE(scenarios.size(), 50u);
  for (const Scenario& scenario : scenarios) {
    const net::LinkSet links = MakeLinks(scenario);
    for (const NamedFactory& factory : kFactories) {
      const net::Schedule reference =
          factory.make(channel::EngineOptions{})
              ->Schedule(links, scenario.params)
              .schedule;
      for (const channel::EngineOptions& engine : BackendSweep(&pool)) {
        const net::Schedule got =
            factory.make(engine)->Schedule(links, scenario.params).schedule;
        EXPECT_EQ(got, reference)
            << factory.name << " diverged on seed " << scenario.seed
            << " n=" << scenario.num_links << " backend="
            << static_cast<int>(engine.backend)
            << (engine.pool != nullptr ? " (pooled)" : "")
            << (engine.ladder.enabled ? " (ladder)" : "")
            << (engine.ladder.force_level == channel::SimdLevel::kScalar
                    ? " (forced-scalar)"
                    : "");
      }
    }
  }
}

TEST(DifferentialTest, SchedulesAreNonTrivial) {
  // Guard against the agreement above being vacuous: on the paper-default
  // regime every scheduler must actually pick links.
  const Scenario s{4242, 60, {}};
  const net::LinkSet links = MakeLinks(s);
  for (const NamedFactory& factory : kFactories) {
    const net::Schedule schedule =
        factory.make({})->Schedule(links, s.params).schedule;
    EXPECT_FALSE(schedule.empty()) << factory.name;
  }
}

}  // namespace
}  // namespace fadesched::sched
