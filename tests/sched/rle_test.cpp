#include "sched/rle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/constants.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams MakeParams(double alpha, double epsilon) {
  channel::ChannelParams params;
  params.alpha = alpha;
  params.epsilon = epsilon;
  return params;
}

TEST(RleTest, EmptyInstanceYieldsEmptySchedule) {
  const RleScheduler rle;
  const auto result = rle.Schedule(net::LinkSet{}, MakeParams(3.0, 0.01));
  EXPECT_TRUE(result.schedule.empty());
}

TEST(RleTest, SingleLinkScheduled) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  const auto result = RleScheduler().Schedule(links, MakeParams(3.0, 0.01));
  EXPECT_EQ(result.schedule, net::Schedule{0});
}

TEST(RleTest, ShortestLinkIsAlwaysPicked) {
  // The first pick is the globally shortest link; it can never be
  // eliminated before being considered.
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  net::LinkId shortest = 0;
  for (net::LinkId i = 1; i < links.Size(); ++i) {
    if (links.Length(i) < links.Length(shortest)) shortest = i;
  }
  const auto result = RleScheduler().Schedule(links, MakeParams(3.0, 0.01));
  EXPECT_NE(std::find(result.schedule.begin(), result.schedule.end(), shortest),
            result.schedule.end());
}

TEST(RleTest, DeterministicAcrossCalls) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const RleScheduler rle;
  EXPECT_EQ(rle.Schedule(links, MakeParams(3.0, 0.01)).schedule,
            rle.Schedule(links, MakeParams(3.0, 0.01)).schedule);
}

TEST(RleTest, ScheduleIdsValidAndUnique) {
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const auto result = RleScheduler().Schedule(links, MakeParams(3.0, 0.01));
  std::set<net::LinkId> seen;
  for (net::LinkId id : result.schedule) {
    EXPECT_LT(id, links.Size());
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(RleTest, InvalidOptionsRejected) {
  RleOptions bad;
  bad.c2 = 0.0;
  EXPECT_THROW(RleScheduler{bad}, util::CheckFailure);
  bad.c2 = 1.0;
  EXPECT_THROW(RleScheduler{bad}, util::CheckFailure);
  bad.c2 = 0.5;
  bad.c1_scale = -1.0;
  EXPECT_THROW(RleScheduler{bad}, util::CheckFailure);
}

// ---------------------------------------------------------------------------
// Theorem 4.3 (feasibility) as a property test over the paper's parameter
// grid and several c2 splits.
// ---------------------------------------------------------------------------

using GridParam = std::tuple<std::size_t, double /*alpha*/, double /*eps*/,
                             double /*c2*/, std::uint64_t /*seed*/>;

class RleFeasibilityTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(RleFeasibilityTest, ScheduleSatisfiesCorollary31) {
  const auto [n, alpha, epsilon, c2, seed] = GetParam();
  rng::Xoshiro256 gen(seed);
  const net::LinkSet links = net::MakeUniformScenario(n, {}, gen);
  const auto params = MakeParams(alpha, epsilon);
  RleOptions options;
  options.c2 = c2;
  const auto result = RleScheduler(options).Schedule(links, params);
  const channel::InterferenceCalculator calc(links, params);
  EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
      << "n=" << n << " alpha=" << alpha << " eps=" << epsilon
      << " c2=" << c2 << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, RleFeasibilityTest,
    ::testing::Combine(::testing::Values(50, 150, 400),
                       ::testing::Values(2.5, 3.0, 4.5),
                       ::testing::Values(0.01, 0.05),
                       ::testing::Values(0.25, 0.5, 0.75),
                       ::testing::Values(1, 2)));

TEST(RleFeasibilityTest, HoldsOnClusteredTopologies) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeClusteredScenario(200, {}, gen);
    const auto params = MakeParams(3.0, 0.01);
    const auto result = RleScheduler().Schedule(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule));
  }
}

TEST(RleFeasibilityTest, HoldsOnDiverseLengthTopologies) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeDiverseLengthScenario(150, {}, gen);
    const auto params = MakeParams(3.0, 0.01);
    const auto result = RleScheduler().Schedule(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule));
  }
}

TEST(RleTest, SmallerC1ScaleSchedulesAtLeastAsManyLinks) {
  // Shrinking the clear-out radius leaves more candidates alive. (It may
  // void the feasibility proof — that is what the ablation bench probes.)
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
  const auto params = MakeParams(3.0, 0.01);
  RleOptions tight;
  tight.c1_scale = 0.5;
  const auto base = RleScheduler().Schedule(links, params);
  const auto shrunk = RleScheduler(tight).Schedule(links, params);
  EXPECT_GE(shrunk.schedule.size(), base.schedule.size());
}

TEST(RleTest, EveryUnscheduledLinkWasEliminatedForAReason) {
  // Reconstruct the elimination trace: every link outside the schedule
  // must either be inside some picked link's clear-out radius or have
  // accumulated factor above c2·γ_ε at the time the algorithm finished.
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(120, {}, gen);
  const auto params = MakeParams(3.0, 0.01);
  RleOptions options;
  const auto result = RleScheduler(options).Schedule(links, params);
  const channel::InterferenceCalculator calc(links, params);
  const double c1 = RleC1(params, options.c2);
  std::set<net::LinkId> picked(result.schedule.begin(), result.schedule.end());
  for (net::LinkId j = 0; j < links.Size(); ++j) {
    if (picked.count(j)) continue;
    bool near_some_pick = false;
    for (net::LinkId i : result.schedule) {
      if (geom::Distance(links.Sender(j), links.Receiver(i)) <=
          c1 * links.Length(i)) {
        near_some_pick = true;
        break;
      }
    }
    const double acc = calc.SumFactor(result.schedule, j);
    EXPECT_TRUE(near_some_pick || acc > options.c2 * params.GammaEpsilon())
        << "link " << j << " was eliminated with no cause";
  }
}

}  // namespace
}  // namespace fadesched::sched
