#include "sched/exact.hpp"

#include <gtest/gtest.h>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/greedy.hpp"
#include "sched/ldp.hpp"
#include "sched/rle.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams PaperParams(double epsilon = 0.05) {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = epsilon;  // slightly loose so small optima are non-trivial
  return params;
}

net::LinkSet SmallInstance(std::uint64_t seed, std::size_t n) {
  rng::Xoshiro256 gen(seed);
  net::UniformScenarioParams sp;
  sp.region_size = 120.0;  // dense enough that conflicts actually occur
  return net::MakeUniformScenario(n, sp, gen);
}

TEST(BruteForceTest, EmptyInstance) {
  const auto result =
      BruteForceScheduler().Schedule(net::LinkSet{}, PaperParams());
  EXPECT_TRUE(result.schedule.empty());
}

TEST(BruteForceTest, SingleLink) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  const auto result = BruteForceScheduler().Schedule(links, PaperParams());
  EXPECT_EQ(result.schedule, net::Schedule{0});
}

TEST(BruteForceTest, TwoConflictingLinksPicksHeavier) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  links.Add(net::Link{{0, 2}, {5, 2}, 3.0});  // conflicts, heavier
  const auto result = BruteForceScheduler().Schedule(links, PaperParams());
  EXPECT_EQ(result.schedule, net::Schedule{1});
  EXPECT_DOUBLE_EQ(result.claimed_rate, 3.0);
}

TEST(BruteForceTest, TwoIndependentLinksPicksBoth) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{500, 0}, {501, 0}, 1.0});
  const auto result = BruteForceScheduler().Schedule(links, PaperParams());
  EXPECT_EQ(result.schedule, (net::Schedule{0, 1}));
}

TEST(BruteForceTest, OversizedInstanceRejected) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(30, {}, gen);
  ExactOptions options;
  options.max_links = 20;
  EXPECT_THROW(BruteForceScheduler(options).Schedule(links, PaperParams()),
               util::CheckFailure);
}

TEST(BruteForceTest, ResultIsFeasible) {
  const net::LinkSet links = SmallInstance(2, 12);
  const auto params = PaperParams();
  const auto result = BruteForceScheduler().Schedule(links, params);
  const channel::InterferenceCalculator calc(links, params);
  EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule));
}

class ExactAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactAgreementTest, BranchAndBoundMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const net::LinkSet links = SmallInstance(seed, 13);
  const auto params = PaperParams();
  const auto bf = BruteForceScheduler().Schedule(links, params);
  const auto bb = BranchAndBoundScheduler().Schedule(links, params);
  EXPECT_NEAR(bf.claimed_rate, bb.claimed_rate, 1e-9) << "seed=" << seed;
  const channel::InterferenceCalculator calc(links, params);
  EXPECT_TRUE(channel::ScheduleIsFeasible(calc, bb.schedule));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(ExactAgreementTest, BranchAndBoundMatchesOnWeightedInstances) {
  const std::uint64_t seed = GetParam();
  rng::Xoshiro256 gen(seed + 100);
  net::WeightedScenarioParams wp;
  wp.base.region_size = 120.0;
  const net::LinkSet links = net::MakeWeightedScenario(12, wp, gen);
  const auto params = PaperParams();
  const auto bf = BruteForceScheduler().Schedule(links, params);
  const auto bb = BranchAndBoundScheduler().Schedule(links, params);
  EXPECT_NEAR(bf.claimed_rate, bb.claimed_rate, 1e-9);
}

TEST(ExactOptimalityTest, DominatesEveryHeuristic) {
  // The optimum upper-bounds the claimed rate of every *feasible*
  // heuristic schedule.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const net::LinkSet links = SmallInstance(seed, 14);
    const auto params = PaperParams();
    const auto optimal = BranchAndBoundScheduler().Schedule(links, params);
    const auto ldp = LdpScheduler().Schedule(links, params);
    const auto rle = RleScheduler().Schedule(links, params);
    const auto greedy = FadingGreedyScheduler().Schedule(links, params);
    EXPECT_GE(optimal.claimed_rate, ldp.claimed_rate - 1e-9);
    EXPECT_GE(optimal.claimed_rate, rle.claimed_rate - 1e-9);
    EXPECT_GE(optimal.claimed_rate, greedy.claimed_rate - 1e-9);
  }
}

TEST(BranchAndBoundTest, HandlesAllLinksCompatible) {
  // Widely separated links: the optimum is everything.
  net::LinkSet links;
  for (int i = 0; i < 10; ++i) {
    const double x = 1000.0 * i;
    links.Add(net::Link{{x, 0}, {x + 1, 0}, 1.0});
  }
  const auto result = BranchAndBoundScheduler().Schedule(links, PaperParams());
  EXPECT_EQ(result.schedule.size(), 10u);
}

TEST(BranchAndBoundTest, HandlesAllLinksMutuallyExclusive) {
  // Links stacked on top of each other: only one survives, the heaviest.
  net::LinkSet links;
  for (int i = 0; i < 8; ++i) {
    links.Add(net::Link{{0, static_cast<double>(i)},
                        {5, static_cast<double>(i)},
                        1.0 + i});
  }
  const auto result = BranchAndBoundScheduler().Schedule(links, PaperParams());
  ASSERT_EQ(result.schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(result.claimed_rate, 8.0);
}

}  // namespace
}  // namespace fadesched::sched
