#include "sched/dls.hpp"

#include <gtest/gtest.h>

#include <set>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

TEST(DlsTest, EmptyInstance) {
  EXPECT_TRUE(
      DlsScheduler().Schedule(net::LinkSet{}, PaperParams()).schedule.empty());
}

TEST(DlsTest, SingleLinkScheduled) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  EXPECT_EQ(DlsScheduler().Schedule(links, PaperParams()).schedule,
            net::Schedule{0});
}

TEST(DlsTest, UnlimitedSensingGuaranteesFeasibility) {
  DlsOptions options;
  options.sensing_radius_factor = 0.0;  // genie configuration
  const DlsScheduler dls(options);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
    const auto params = PaperParams();
    const auto result = dls.Schedule(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
        << "seed=" << seed;
  }
}

TEST(DlsTest, WideSensingRadiusIsNearlyFeasible) {
  // With a generous (finite) sensing radius, the unseen far-field tail is
  // small; allow a tiny relative violation.
  DlsOptions options;
  options.sensing_radius_factor = 40.0;
  const DlsScheduler dls(options);
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(250, {}, gen);
  const auto params = PaperParams();
  const auto result = dls.Schedule(links, params);
  const channel::InterferenceCalculator calc(links, params);
  for (net::LinkId j : result.schedule) {
    EXPECT_LE(calc.SumFactor(result.schedule, j),
              params.GammaEpsilon() * 1.25)
        << "link " << j;
  }
}

TEST(DlsTest, DeterministicForFixedSeed) {
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const DlsScheduler dls;
  EXPECT_EQ(dls.Schedule(links, PaperParams()).schedule,
            dls.Schedule(links, PaperParams()).schedule);
}

TEST(DlsTest, DifferentProtocolSeedsMayDiffer) {
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  DlsOptions a;
  a.seed = 1;
  DlsOptions b;
  b.seed = 2;
  const auto sched_a = DlsScheduler(a).Schedule(links, PaperParams());
  const auto sched_b = DlsScheduler(b).Schedule(links, PaperParams());
  // Randomized backoff: schedules are valid either way; sizes should be in
  // the same ballpark (within 3x).
  EXPECT_GT(sched_a.schedule.size(), 0u);
  EXPECT_GT(sched_b.schedule.size(), 0u);
  EXPECT_LT(sched_a.schedule.size(), 3 * sched_b.schedule.size() + 3);
}

TEST(DlsTest, UniqueValidIds) {
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(120, {}, gen);
  const auto result = DlsScheduler().Schedule(links, PaperParams());
  std::set<net::LinkId> seen;
  for (net::LinkId id : result.schedule) {
    EXPECT_LT(id, links.Size());
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(DlsTest, InvalidOptionsRejected) {
  DlsOptions bad;
  bad.backoff_probability = 0.0;
  EXPECT_THROW(DlsScheduler{bad}, util::CheckFailure);
  bad.backoff_probability = 0.5;
  bad.max_rounds = 0;
  EXPECT_THROW(DlsScheduler{bad}, util::CheckFailure);
}

TEST(DlsTest, IsolatedLinksAllSurvive) {
  net::LinkSet links;
  for (int i = 0; i < 12; ++i) {
    const double x = 2000.0 * i;
    links.Add(net::Link{{x, 0}, {x + 1, 0}, 1.0});
  }
  const auto result = DlsScheduler().Schedule(links, PaperParams());
  EXPECT_EQ(result.schedule.size(), 12u);
}

}  // namespace
}  // namespace fadesched::sched
