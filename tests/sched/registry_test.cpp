#include "sched/registry.hpp"

#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

TEST(RegistryTest, AllKnownNamesConstruct) {
  for (const std::string& name : KnownSchedulers()) {
    const SchedulerPtr scheduler = MakeScheduler(name);
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_EQ(scheduler->Name(), name);
  }
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(MakeScheduler("definitely_not_a_scheduler"),
               util::CheckFailure);
  EXPECT_THROW(MakeScheduler(""), util::CheckFailure);
}

TEST(RegistryTest, KnownListIsNonTrivial) {
  const auto names = KnownSchedulers();
  EXPECT_GE(names.size(), 8u);
}

TEST(RegistryTest, EveryRegisteredSchedulerRunsOnSmallInstance) {
  rng::Xoshiro256 gen(1);
  net::UniformScenarioParams sp;
  sp.region_size = 200.0;
  const net::LinkSet links = net::MakeUniformScenario(12, sp, gen);
  channel::ChannelParams params;
  for (const std::string& name : KnownSchedulers()) {
    const auto result = MakeScheduler(name)->Schedule(links, params);
    EXPECT_EQ(result.algorithm, name);
    EXPECT_GE(result.claimed_rate, 0.0) << name;
    for (net::LinkId id : result.schedule) {
      EXPECT_LT(id, links.Size()) << name;
    }
  }
}

TEST(RegistryTest, SchedulersAreStatelessAcrossCalls) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet a = net::MakeUniformScenario(30, {}, gen);
  const net::LinkSet b = net::MakeUniformScenario(30, {}, gen);
  channel::ChannelParams params;
  const SchedulerPtr ldp = MakeScheduler("ldp");
  const auto first_a = ldp->Schedule(a, params).schedule;
  (void)ldp->Schedule(b, params);  // interleave another instance
  EXPECT_EQ(ldp->Schedule(a, params).schedule, first_a);
}

}  // namespace
}  // namespace fadesched::sched
