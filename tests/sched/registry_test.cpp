#include "sched/registry.hpp"

#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

TEST(RegistryTest, AllKnownNamesConstruct) {
  for (const std::string& name : KnownSchedulers()) {
    const SchedulerPtr scheduler = MakeScheduler(name);
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_EQ(scheduler->Name(), name);
  }
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(MakeScheduler("definitely_not_a_scheduler"),
               util::CheckFailure);
  EXPECT_THROW(MakeScheduler(""), util::CheckFailure);
}

TEST(RegistryTest, KnownListIsNonTrivial) {
  const auto names = KnownSchedulers();
  EXPECT_GE(names.size(), 8u);
}

TEST(RegistryTest, EveryRegisteredSchedulerRunsOnSmallInstance) {
  rng::Xoshiro256 gen(1);
  net::UniformScenarioParams sp;
  sp.region_size = 200.0;
  const net::LinkSet links = net::MakeUniformScenario(12, sp, gen);
  channel::ChannelParams params;
  for (const std::string& name : KnownSchedulers()) {
    const auto result = MakeScheduler(name)->Schedule(links, params);
    EXPECT_EQ(result.algorithm, name);
    EXPECT_GE(result.claimed_rate, 0.0) << name;
    for (net::LinkId id : result.schedule) {
      EXPECT_LT(id, links.Size()) << name;
    }
  }
}

SchedulerFactory DummyFactory(const std::string& name) {
  return [name](const channel::EngineOptions&) -> SchedulerPtr {
    class Dummy final : public Scheduler {
     public:
      explicit Dummy(std::string n) : name_(std::move(n)) {}
      [[nodiscard]] std::string Name() const override { return name_; }
      [[nodiscard]] ScheduleResult Schedule(
          const net::LinkSet& links,
          const channel::ChannelParams&) const override {
        return FinalizeResult(links, {}, name_);
      }

     private:
      std::string name_;
    };
    return std::make_unique<Dummy>(name);
  };
}

TEST(RegistryTest, DuplicateBuiltinNameFailsLoudly) {
  SchedulerContract contract;
  contract.name = "rle";  // shadowing a built-in must be impossible
  try {
    RegisterScheduler(contract, DummyFactory("rle"));
    FAIL() << "duplicate registration was accepted";
  } catch (const util::CheckFailure& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("duplicate scheduler name 'rle'"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("shadowing is forbidden"), std::string::npos)
        << message;
  }
  // The built-in is untouched by the failed attempt.
  EXPECT_EQ(MakeScheduler("rle")->Name(), "rle");
}

TEST(RegistryTest, DuplicateExtensionNameFailsLoudly) {
  ScopedSchedulerRegistration first({.name = "ext_dup_test"},
                                    DummyFactory("ext_dup_test"));
  SchedulerContract contract;
  contract.name = "ext_dup_test";
  EXPECT_THROW(RegisterScheduler(contract, DummyFactory("ext_dup_test")),
               util::CheckFailure);
  // Exactly one registration exists despite the failed duplicate.
  std::size_t count = 0;
  for (const std::string& name : KnownSchedulers()) {
    if (name == "ext_dup_test") ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(RegistryTest, EmptyNameIsRejected) {
  EXPECT_THROW(RegisterScheduler(SchedulerContract{}, DummyFactory("")),
               util::CheckFailure);
}

TEST(RegistryTest, ScopedRegistrationUnregistersOnDestruction) {
  EXPECT_FALSE(IsRegisteredScheduler("ext_scoped_test"));
  {
    ScopedSchedulerRegistration scoped({.name = "ext_scoped_test"},
                                       DummyFactory("ext_scoped_test"));
    EXPECT_TRUE(IsRegisteredScheduler("ext_scoped_test"));
    EXPECT_EQ(MakeScheduler("ext_scoped_test")->Name(), "ext_scoped_test");
    EXPECT_EQ(ContractFor("ext_scoped_test").name, "ext_scoped_test");
  }
  EXPECT_FALSE(IsRegisteredScheduler("ext_scoped_test"));
  EXPECT_THROW(MakeScheduler("ext_scoped_test"), util::CheckFailure);
}

TEST(RegistryTest, UnregisterRefusesBuiltins) {
  EXPECT_THROW(UnregisterScheduler("rle"), util::CheckFailure);
  EXPECT_THROW(UnregisterScheduler("never_registered"), util::CheckFailure);
  EXPECT_TRUE(IsRegisteredScheduler("rle"));
}

TEST(RegistryTest, EngineOptionsReachTheScheduler) {
  channel::EngineOptions options;
  options.backend = channel::FactorBackend::kMatrix;
  // The engine-aware factories thread the options through; the scheduler
  // must still produce the same schedule (pinned broadly by the
  // differential suite — here we just prove the plumbing constructs).
  const SchedulerPtr scheduler = MakeScheduler("rle", options);
  ASSERT_NE(scheduler, nullptr);
  EXPECT_EQ(scheduler->Name(), "rle");
}

TEST(RegistryTest, SchedulersAreStatelessAcrossCalls) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet a = net::MakeUniformScenario(30, {}, gen);
  const net::LinkSet b = net::MakeUniformScenario(30, {}, gen);
  channel::ChannelParams params;
  const SchedulerPtr ldp = MakeScheduler("ldp");
  const auto first_a = ldp->Schedule(a, params).schedule;
  (void)ldp->Schedule(b, params);  // interleave another instance
  EXPECT_EQ(ldp->Schedule(a, params).schedule, first_a);
}

}  // namespace
}  // namespace fadesched::sched
