#include "sched/feedback.hpp"

#include <gtest/gtest.h>

#include "channel/params.hpp"
#include "net/link_set.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

net::LinkSet IsolatedLinks(std::size_t count, double spacing) {
  // Unit-length links spaced far apart: cross interference is ~spacing^-α,
  // negligible against the unit-mean direct power.
  net::LinkSet links;
  for (std::size_t i = 0; i < count; ++i) {
    const double x = static_cast<double>(i) * spacing;
    links.Add(net::Link{{x, 0.0}, {x, 1.0}, 1.0});
  }
  return links;
}

TEST(FeedbackTest, EmptyScheduleDeliversVacuously) {
  const net::LinkSet links = IsolatedLinks(3, 1e6);
  const channel::ChannelParams params;
  const auto result = RunFeedbackSchedule(links, params, {});
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_EQ(result.slots_used, 0u);
  EXPECT_EQ(result.delivered_links, 0u);
  EXPECT_DOUBLE_EQ(result.delivered_rate_fraction, 1.0);
}

TEST(FeedbackTest, LoneLinkWithoutNoiseDeliversInSlotZero) {
  const net::LinkSet links = IsolatedLinks(1, 1.0);
  channel::ChannelParams params;
  params.noise_power = 0.0;  // no interference at all => guaranteed decode
  const auto result = RunFeedbackSchedule(links, params, {0});
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.outcomes[0].delivered);
  EXPECT_EQ(result.outcomes[0].attempts, 1u);
  EXPECT_EQ(result.outcomes[0].delivery_slot, 0u);
  EXPECT_EQ(result.slots_used, 1u);
  EXPECT_DOUBLE_EQ(result.delivered_rate_fraction, 1.0);
}

TEST(FeedbackTest, WellSeparatedLinksAllDeliverImmediately) {
  const net::LinkSet links = IsolatedLinks(4, 1e6);
  const channel::ChannelParams params;
  const auto result = RunFeedbackSchedule(links, params, {0, 1, 2, 3});
  EXPECT_EQ(result.delivered_links, 4u);
  EXPECT_EQ(result.blacklisted_links, 0u);
  EXPECT_DOUBLE_EQ(result.delivered_rate_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.delay_slots.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.attempts_per_link.Mean(), 1.0);
}

TEST(FeedbackTest, HopelessLinkIsBlacklistedWithExponentialBackoff) {
  const net::LinkSet links = IsolatedLinks(1, 1.0);
  channel::ChannelParams params;
  params.noise_power = 1e12;  // unit mean power cannot beat this noise
  FeedbackOptions options;
  options.max_attempts = 4;
  const auto result = RunFeedbackSchedule(links, params, {0}, options);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_FALSE(result.outcomes[0].delivered);
  EXPECT_TRUE(result.outcomes[0].blacklisted);
  EXPECT_EQ(result.outcomes[0].attempts, options.max_attempts);
  // Attempts land at slots 0, 1, 3, 7 (gaps 1, 2, 4), so the last active
  // slot is 7 — the observable signature of the exponential backoff.
  EXPECT_EQ(result.slots_used, 8u);
  EXPECT_EQ(result.blacklisted_links, 1u);
  EXPECT_DOUBLE_EQ(result.delivered_rate_fraction, 0.0);
}

TEST(FeedbackTest, BackoffCapBoundsRetryGaps) {
  const net::LinkSet links = IsolatedLinks(1, 1.0);
  channel::ChannelParams params;
  params.noise_power = 1e12;
  FeedbackOptions options;
  options.max_attempts = 5;
  options.backoff_cap = 2;
  const auto result = RunFeedbackSchedule(links, params, {0}, options);
  // Slots 0, 1, 3, 5, 7: the gap saturates at the cap of 2.
  EXPECT_EQ(result.slots_used, 8u);
  EXPECT_TRUE(result.outcomes[0].blacklisted);
}

TEST(FeedbackTest, SlotBudgetExhaustionLeavesLinkPending) {
  const net::LinkSet links = IsolatedLinks(1, 1.0);
  channel::ChannelParams params;
  params.noise_power = 1e12;
  FeedbackOptions options;
  options.max_attempts = 100;
  options.max_slots = 4;  // attempts fire at slots 0, 1, 3 before time runs out
  const auto result = RunFeedbackSchedule(links, params, {0}, options);
  EXPECT_FALSE(result.outcomes[0].delivered);
  EXPECT_FALSE(result.outcomes[0].blacklisted);
  EXPECT_EQ(result.outcomes[0].attempts, 3u);
  EXPECT_EQ(result.delivered_links, 0u);
  EXPECT_EQ(result.blacklisted_links, 0u);
}

TEST(FeedbackTest, SameSeedIsBitReproducible) {
  // A dense clump of mutually interfering links: outcomes are genuinely
  // random draws, so agreement across runs is a determinism statement.
  net::LinkSet links;
  for (int i = 0; i < 8; ++i) {
    const double x = 0.3 * i;
    links.Add(net::Link{{x, 0.0}, {x, 1.0}, 1.0});
  }
  const channel::ChannelParams params;
  net::Schedule schedule{0, 1, 2, 3, 4, 5, 6, 7};
  FeedbackOptions options;
  options.seed = 1234;
  const auto a = RunFeedbackSchedule(links, params, schedule, options);
  const auto b = RunFeedbackSchedule(links, params, schedule, options);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].delivered, b.outcomes[i].delivered);
    EXPECT_EQ(a.outcomes[i].blacklisted, b.outcomes[i].blacklisted);
    EXPECT_EQ(a.outcomes[i].attempts, b.outcomes[i].attempts);
    EXPECT_EQ(a.outcomes[i].delivery_slot, b.outcomes[i].delivery_slot);
  }
  EXPECT_EQ(a.slots_used, b.slots_used);
  EXPECT_DOUBLE_EQ(a.delivered_rate_fraction, b.delivered_rate_fraction);
}

TEST(FeedbackTest, DeliveredRateFractionWeighsByRate) {
  net::LinkSet links;
  links.Add(net::Link{{0.0, 0.0}, {0.0, 1e-4}, 3.0});  // mean power 1e12
  links.Add(net::Link{{1e6, 0.0}, {1e6, 1.0}, 1.0});   // mean power 1
  channel::ChannelParams params;
  params.noise_power = 1e3;  // trivial for link 0, hopeless for link 1
  FeedbackOptions options;
  options.max_attempts = 3;
  const auto result = RunFeedbackSchedule(links, params, {0, 1}, options);
  EXPECT_TRUE(result.outcomes[0].delivered);
  EXPECT_TRUE(result.outcomes[1].blacklisted);
  EXPECT_DOUBLE_EQ(result.delivered_rate_fraction, 0.75);  // 3 / (3 + 1)
}

TEST(FeedbackTest, RejectsInvalidOptionsAndSchedule) {
  const net::LinkSet links = IsolatedLinks(2, 1e6);
  const channel::ChannelParams params;
  FeedbackOptions options;
  options.max_slots = 0;
  EXPECT_THROW(RunFeedbackSchedule(links, params, {0}, options),
               util::CheckFailure);
  options = FeedbackOptions{};
  options.max_attempts = 0;
  EXPECT_THROW(options.Validate(), util::CheckFailure);
  options = FeedbackOptions{};
  options.backoff_base = 0.5;
  EXPECT_THROW(options.Validate(), util::CheckFailure);
  options = FeedbackOptions{};
  options.backoff_factor = 0.9;
  EXPECT_THROW(options.Validate(), util::CheckFailure);
  options = FeedbackOptions{};
  options.backoff_cap = 0;
  EXPECT_THROW(options.Validate(), util::CheckFailure);
  options = FeedbackOptions{};
  options.fading.nakagami_m = 0.0;
  EXPECT_THROW(options.Validate(), util::CheckFailure);
  // Schedule entries must index into the link set.
  EXPECT_THROW(RunFeedbackSchedule(links, params, {5}), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::sched
