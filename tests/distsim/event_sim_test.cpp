#include "distsim/event_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace fadesched::distsim {
namespace {

/// Scripted node that records everything it observes.
class Recorder final : public Node {
 public:
  struct Observation {
    Time at;
    bool is_timer;
    std::uint64_t tag_or_timer;
    NodeId from = 0;
    std::vector<double> data;
  };

  void OnStart(Context&) override {}
  void OnMessage(Context& ctx, const Message& message) override {
    log.push_back({ctx.Now(), false, message.tag, message.from, message.data});
  }
  void OnTimer(Context& ctx, std::uint64_t timer_id) override {
    log.push_back({ctx.Now(), true, timer_id, 0, {}});
  }

  std::vector<Observation> log;
};

/// Node whose OnStart runs a caller-provided script.
class Scripted final : public Node {
 public:
  explicit Scripted(std::function<void(Context&)> on_start)
      : on_start_(std::move(on_start)) {}
  void OnStart(Context& ctx) override { on_start_(ctx); }
  void OnMessage(Context&, const Message&) override {}
  void OnTimer(Context&, std::uint64_t) override {}

 private:
  std::function<void(Context&)> on_start_;
};

TEST(EventSimTest, MessageArrivesWithPropagationDelay) {
  EventSimulator::Options options;
  options.fixed_latency = 0.5;
  options.propagation_delay_per_unit = 0.1;
  EventSimulator sim(options);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const NodeId receiver = sim.AddNode(std::move(recorder), {10.0, 0.0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 42, {1.5});
              }),
              {0.0, 0.0});
  sim.Run(100.0);
  ASSERT_EQ(rec->log.size(), 1u);
  EXPECT_FALSE(rec->log[0].is_timer);
  EXPECT_EQ(rec->log[0].tag_or_timer, 42u);
  EXPECT_EQ(rec->log[0].from, 1u);
  // delay = 0.5 + 10·0.1 = 1.5.
  EXPECT_NEAR(rec->log[0].at, 1.5, 1e-12);
  EXPECT_EQ(rec->log[0].data, std::vector<double>{1.5});
}

TEST(EventSimTest, TimerFiresAtRequestedTime) {
  EventSimulator sim;
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  // Recorder with a self-starting timer.
  class TimerNode final : public Node {
   public:
    explicit TimerNode(Recorder* sink) : sink_(sink) {}
    void OnStart(Context& ctx) override { ctx.SetTimer(2.25, 9); }
    void OnMessage(Context&, const Message&) override {}
    void OnTimer(Context& ctx, std::uint64_t id) override {
      sink_->log.push_back({ctx.Now(), true, id, 0, {}});
    }

   private:
    Recorder* sink_;
  };
  sim.AddNode(std::make_unique<TimerNode>(rec), {0, 0});
  sim.AddNode(std::move(recorder), {1, 1});
  const SimStats stats = sim.Run(10.0);
  ASSERT_EQ(rec->log.size(), 1u);
  EXPECT_TRUE(rec->log[0].is_timer);
  EXPECT_NEAR(rec->log[0].at, 2.25, 1e-12);
  EXPECT_EQ(stats.timers_fired, 1u);
}

TEST(EventSimTest, BroadcastRespectsRadius) {
  EventSimulator::Options options;
  options.broadcast_radius = 15.0;
  EventSimulator sim(options);
  auto near = std::make_unique<Recorder>();
  auto far = std::make_unique<Recorder>();
  Recorder* near_ptr = near.get();
  Recorder* far_ptr = far.get();
  sim.AddNode(std::move(near), {10.0, 0.0});
  sim.AddNode(std::move(far), {100.0, 0.0});
  sim.AddNode(std::make_unique<Scripted>([](Context& ctx) {
                ctx.BroadcastLocal(7, {});
              }),
              {0.0, 0.0});
  sim.Run(10.0);
  EXPECT_EQ(near_ptr->log.size(), 1u);
  EXPECT_TRUE(far_ptr->log.empty());
}

TEST(EventSimTest, EventOrderIsDeterministicForEqualTimes) {
  // Two zero-distance messages sent in order must arrive in order.
  EventSimulator::Options options;
  options.fixed_latency = 1.0;
  options.propagation_delay_per_unit = 0.0;
  EventSimulator sim(options);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const NodeId receiver = sim.AddNode(std::move(recorder), {0, 0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 1, {});
                ctx.Send(receiver, 2, {});
                ctx.Send(receiver, 3, {});
              }),
              {0, 0});
  sim.Run(10.0);
  ASSERT_EQ(rec->log.size(), 3u);
  EXPECT_EQ(rec->log[0].tag_or_timer, 1u);
  EXPECT_EQ(rec->log[1].tag_or_timer, 2u);
  EXPECT_EQ(rec->log[2].tag_or_timer, 3u);
}

TEST(EventSimTest, HorizonCutsOffLateEvents) {
  EventSimulator::Options options;
  options.fixed_latency = 5.0;
  EventSimulator sim(options);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const NodeId receiver = sim.AddNode(std::move(recorder), {0, 0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 1, {});
              }),
              {0, 0});
  sim.Run(1.0);  // horizon before the 5s delivery
  EXPECT_TRUE(rec->log.empty());
}

TEST(EventSimTest, StatsCountSendsAndDeliveries) {
  EventSimulator sim;
  auto recorder = std::make_unique<Recorder>();
  const NodeId receiver = sim.AddNode(std::move(recorder), {0, 0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 1, {});
                ctx.Send(receiver, 2, {});
              }),
              {0, 0});
  const SimStats stats = sim.Run(10.0);
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.messages_delivered, 2u);
  EXPECT_EQ(stats.events_processed, 2u);
}

TEST(EventSimTest, InvalidInputsRejected) {
  EventSimulator sim;
  EXPECT_THROW(sim.AddNode(nullptr, {0, 0}), util::CheckFailure);
  EventSimulator::Options bad;
  bad.broadcast_radius = 0.0;
  EXPECT_THROW(EventSimulator{bad}, util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::distsim
