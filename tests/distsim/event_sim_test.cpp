#include "distsim/event_sim.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace fadesched::distsim {
namespace {

/// Scripted node that records everything it observes.
class Recorder final : public Node {
 public:
  struct Observation {
    Time at;
    bool is_timer;
    std::uint64_t tag_or_timer;
    NodeId from = 0;
    std::vector<double> data;
  };

  void OnStart(Context&) override {}
  void OnMessage(Context& ctx, const Message& message) override {
    log.push_back({ctx.Now(), false, message.tag, message.from, message.data});
  }
  void OnTimer(Context& ctx, std::uint64_t timer_id) override {
    log.push_back({ctx.Now(), true, timer_id, 0, {}});
  }

  std::vector<Observation> log;
};

/// Node whose OnStart runs a caller-provided script.
class Scripted final : public Node {
 public:
  explicit Scripted(std::function<void(Context&)> on_start)
      : on_start_(std::move(on_start)) {}
  void OnStart(Context& ctx) override { on_start_(ctx); }
  void OnMessage(Context&, const Message&) override {}
  void OnTimer(Context&, std::uint64_t) override {}

 private:
  std::function<void(Context&)> on_start_;
};

TEST(EventSimTest, MessageArrivesWithPropagationDelay) {
  EventSimulator::Options options;
  options.fixed_latency = 0.5;
  options.propagation_delay_per_unit = 0.1;
  EventSimulator sim(options);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const NodeId receiver = sim.AddNode(std::move(recorder), {10.0, 0.0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 42, {1.5});
              }),
              {0.0, 0.0});
  sim.Run(100.0);
  ASSERT_EQ(rec->log.size(), 1u);
  EXPECT_FALSE(rec->log[0].is_timer);
  EXPECT_EQ(rec->log[0].tag_or_timer, 42u);
  EXPECT_EQ(rec->log[0].from, 1u);
  // delay = 0.5 + 10·0.1 = 1.5.
  EXPECT_NEAR(rec->log[0].at, 1.5, 1e-12);
  EXPECT_EQ(rec->log[0].data, std::vector<double>{1.5});
}

TEST(EventSimTest, TimerFiresAtRequestedTime) {
  EventSimulator sim;
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  // Recorder with a self-starting timer.
  class TimerNode final : public Node {
   public:
    explicit TimerNode(Recorder* sink) : sink_(sink) {}
    void OnStart(Context& ctx) override { ctx.SetTimer(2.25, 9); }
    void OnMessage(Context&, const Message&) override {}
    void OnTimer(Context& ctx, std::uint64_t id) override {
      sink_->log.push_back({ctx.Now(), true, id, 0, {}});
    }

   private:
    Recorder* sink_;
  };
  sim.AddNode(std::make_unique<TimerNode>(rec), {0, 0});
  sim.AddNode(std::move(recorder), {1, 1});
  const SimStats stats = sim.Run(10.0);
  ASSERT_EQ(rec->log.size(), 1u);
  EXPECT_TRUE(rec->log[0].is_timer);
  EXPECT_NEAR(rec->log[0].at, 2.25, 1e-12);
  EXPECT_EQ(stats.timers_fired, 1u);
}

TEST(EventSimTest, BroadcastRespectsRadius) {
  EventSimulator::Options options;
  options.broadcast_radius = 15.0;
  EventSimulator sim(options);
  auto near = std::make_unique<Recorder>();
  auto far = std::make_unique<Recorder>();
  Recorder* near_ptr = near.get();
  Recorder* far_ptr = far.get();
  sim.AddNode(std::move(near), {10.0, 0.0});
  sim.AddNode(std::move(far), {100.0, 0.0});
  sim.AddNode(std::make_unique<Scripted>([](Context& ctx) {
                ctx.BroadcastLocal(7, {});
              }),
              {0.0, 0.0});
  sim.Run(10.0);
  EXPECT_EQ(near_ptr->log.size(), 1u);
  EXPECT_TRUE(far_ptr->log.empty());
}

TEST(EventSimTest, EventOrderIsDeterministicForEqualTimes) {
  // Two zero-distance messages sent in order must arrive in order.
  EventSimulator::Options options;
  options.fixed_latency = 1.0;
  options.propagation_delay_per_unit = 0.0;
  EventSimulator sim(options);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const NodeId receiver = sim.AddNode(std::move(recorder), {0, 0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 1, {});
                ctx.Send(receiver, 2, {});
                ctx.Send(receiver, 3, {});
              }),
              {0, 0});
  sim.Run(10.0);
  ASSERT_EQ(rec->log.size(), 3u);
  EXPECT_EQ(rec->log[0].tag_or_timer, 1u);
  EXPECT_EQ(rec->log[1].tag_or_timer, 2u);
  EXPECT_EQ(rec->log[2].tag_or_timer, 3u);
}

TEST(EventSimTest, HorizonCutsOffLateEvents) {
  EventSimulator::Options options;
  options.fixed_latency = 5.0;
  EventSimulator sim(options);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const NodeId receiver = sim.AddNode(std::move(recorder), {0, 0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 1, {});
              }),
              {0, 0});
  sim.Run(1.0);  // horizon before the 5s delivery
  EXPECT_TRUE(rec->log.empty());
}

TEST(EventSimTest, StatsCountSendsAndDeliveries) {
  EventSimulator sim;
  auto recorder = std::make_unique<Recorder>();
  const NodeId receiver = sim.AddNode(std::move(recorder), {0, 0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 1, {});
                ctx.Send(receiver, 2, {});
              }),
              {0, 0});
  const SimStats stats = sim.Run(10.0);
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.messages_delivered, 2u);
  EXPECT_EQ(stats.events_processed, 2u);
}

TEST(EventSimTest, InvalidInputsRejected) {
  EventSimulator sim;
  EXPECT_THROW(sim.AddNode(nullptr, {0, 0}), util::CheckFailure);
  EventSimulator::Options bad;
  bad.broadcast_radius = 0.0;
  EXPECT_THROW(EventSimulator{bad}, util::CheckFailure);
  bad = EventSimulator::Options{};
  bad.fixed_latency = -1.0;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
  bad = EventSimulator::Options{};
  bad.propagation_delay_per_unit = -0.5;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
  bad = EventSimulator::Options{};
  bad.max_events = 0;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
}

/// Node that re-arms its own timer forever — a runaway protocol.
class Rearming final : public Node {
 public:
  void OnStart(Context& ctx) override { ctx.SetTimer(0.1, 0); }
  void OnMessage(Context&, const Message&) override {}
  void OnTimer(Context& ctx, std::uint64_t) override { ctx.SetTimer(0.1, 0); }
};

TEST(EventSimTest, EventCapTruncatesInsteadOfRunningAway) {
  EventSimulator::Options options;
  options.max_events = 25;
  EventSimulator sim(options);
  sim.AddNode(std::make_unique<Rearming>(), {0, 0});
  const SimStats stats = sim.Run(1e9);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.events_processed, 25u);
}

TEST(EventSimTest, WellBehavedRunIsNotTruncated) {
  EventSimulator sim;
  auto recorder = std::make_unique<Recorder>();
  const NodeId receiver = sim.AddNode(std::move(recorder), {0, 0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 1, {});
              }),
              {0, 0});
  const SimStats stats = sim.Run(10.0);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.messages_delivered, 1u);
}

TEST(EventSimTest, DropProbabilityOneLosesEveryMessage) {
  EventSimulator sim;
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const NodeId receiver = sim.AddNode(std::move(recorder), {0, 0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                for (std::uint64_t tag = 0; tag < 5; ++tag) {
                  ctx.Send(receiver, tag, {});
                }
              }),
              {0, 0});
  FaultPlan plan;
  plan.drop_probability = 1.0;
  sim.InstallFaultPlan(plan);
  const SimStats stats = sim.Run(10.0);
  EXPECT_EQ(stats.messages_sent, 5u);
  EXPECT_EQ(stats.messages_dropped, 5u);
  EXPECT_EQ(stats.messages_delivered, 0u);
  EXPECT_TRUE(rec->log.empty());
}

TEST(EventSimTest, AllZeroPlanChangesNothing) {
  const auto run = [](bool install_inert_plan) {
    EventSimulator sim;
    auto recorder = std::make_unique<Recorder>();
    Recorder* rec = recorder.get();
    const NodeId receiver = sim.AddNode(std::move(recorder), {3.0, 4.0});
    sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                  ctx.Send(receiver, 11, {2.5});
                  ctx.BroadcastLocal(12, {});
                }),
                {0, 0});
    if (install_inert_plan) sim.InstallFaultPlan(FaultPlan{});
    const SimStats stats = sim.Run(10.0);
    return std::pair{stats, rec->log.size()};
  };
  const auto [plain, plain_log] = run(false);
  const auto [inert, inert_log] = run(true);
  EXPECT_EQ(plain.messages_delivered, inert.messages_delivered);
  EXPECT_EQ(plain.events_processed, inert.events_processed);
  EXPECT_EQ(plain.end_time, inert.end_time);
  EXPECT_EQ(plain_log, inert_log);
  EXPECT_EQ(inert.messages_dropped, 0u);
}

TEST(EventSimTest, MessagesToCrashedTargetAreDropped) {
  EventSimulator::Options options;
  options.fixed_latency = 1.0;
  options.propagation_delay_per_unit = 0.0;
  EventSimulator sim(options);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const NodeId receiver = sim.AddNode(std::move(recorder), {0, 0});
  sim.AddNode(std::make_unique<Scripted>([receiver](Context& ctx) {
                ctx.Send(receiver, 1, {});  // arrives t=1, inside the outage
              }),
              {0, 0});
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{receiver, 0.5, 2.0});
  sim.InstallFaultPlan(plan);
  const SimStats stats = sim.Run(10.0);
  EXPECT_EQ(stats.messages_crash_dropped, 1u);
  EXPECT_EQ(stats.messages_delivered, 0u);
  EXPECT_TRUE(rec->log.empty());
}

/// Sets one timer at a fixed delay and records when it actually fires.
class OneTimer final : public Node {
 public:
  explicit OneTimer(double delay) : delay_(delay) {}
  void OnStart(Context& ctx) override { ctx.SetTimer(delay_, 1); }
  void OnMessage(Context&, const Message&) override {}
  void OnTimer(Context& ctx, std::uint64_t) override {
    fired_at.push_back(ctx.Now());
  }

  std::vector<Time> fired_at;

 private:
  double delay_;
};

TEST(EventSimTest, TimerOfCrashedNodeIsDeferredToRecovery) {
  EventSimulator sim;
  auto node = std::make_unique<OneTimer>(1.0);
  OneTimer* ptr = node.get();
  const NodeId owner = sim.AddNode(std::move(node), {0, 0});
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{owner, 0.5, 3.0});
  sim.InstallFaultPlan(plan);
  const SimStats stats = sim.Run(10.0);
  EXPECT_EQ(stats.timers_deferred, 1u);
  EXPECT_EQ(stats.timers_fired, 1u);
  ASSERT_EQ(ptr->fired_at.size(), 1u);
  EXPECT_NEAR(ptr->fired_at[0], 3.0, 1e-12);  // woke at the recovery instant
}

TEST(EventSimTest, TimerOfPermanentlyCrashedNodeIsDropped) {
  EventSimulator sim;
  auto node = std::make_unique<OneTimer>(1.0);
  OneTimer* ptr = node.get();
  const NodeId owner = sim.AddNode(std::move(node), {0, 0});
  FaultPlan plan;
  plan.crashes.push_back(
      CrashWindow{owner, 0.5, std::numeric_limits<double>::infinity()});
  sim.InstallFaultPlan(plan);
  const SimStats stats = sim.Run(10.0);
  EXPECT_EQ(stats.timers_dropped, 1u);
  EXPECT_EQ(stats.timers_fired, 0u);
  EXPECT_TRUE(ptr->fired_at.empty());
}

TEST(EventSimTest, TimerJitterIsBoundedAndReproducible) {
  const auto fire_time = [] {
    EventSimulator sim;
    auto node = std::make_unique<OneTimer>(1.0);
    OneTimer* ptr = node.get();
    sim.AddNode(std::move(node), {0, 0});
    FaultPlan plan;
    plan.timer_jitter = 0.5;
    sim.InstallFaultPlan(plan);
    sim.Run(10.0);
    return ptr->fired_at.at(0);
  };
  const double first = fire_time();
  EXPECT_GE(first, 1.0);
  EXPECT_LT(first, 1.5);
  EXPECT_DOUBLE_EQ(first, fire_time());
}

/// Broadcasts once at t = 0 and once from a timer at t = `later`.
class TwoBroadcasts final : public Node {
 public:
  explicit TwoBroadcasts(double later) : later_(later) {}
  void OnStart(Context& ctx) override {
    ctx.BroadcastLocal(1, {});
    ctx.SetTimer(later_, 0);
  }
  void OnMessage(Context&, const Message&) override {}
  void OnTimer(Context& ctx, std::uint64_t) override {
    ctx.BroadcastLocal(2, {});
  }

 private:
  double later_;
};

TEST(EventSimTest, BroadcastRadiusShrinksAsRoundsPass) {
  EventSimulator::Options options;
  options.broadcast_radius = 100.0;
  EventSimulator sim(options);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.AddNode(std::move(recorder), {60.0, 0.0});
  sim.AddNode(std::make_unique<TwoBroadcasts>(2.5), {0, 0});
  FaultPlan plan;
  plan.radius_shrink_per_round = 0.5;
  plan.round_period = 1.0;
  plan.min_radius_factor = 0.1;
  sim.InstallFaultPlan(plan);
  sim.Run(10.0);
  // t=0: factor 1.0 → radius 100 reaches the node at 60. t=2.5: two rounds
  // elapsed → factor max(0.1, 1 − 0.5·2) = 0.1 → radius 10 does not.
  ASSERT_EQ(rec->log.size(), 1u);
  EXPECT_EQ(rec->log[0].tag_or_timer, 1u);
}

}  // namespace
}  // namespace fadesched::distsim
