#include "distsim/dls_protocol.hpp"

#include <gtest/gtest.h>

#include <set>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/dls.hpp"
#include "util/check.hpp"

namespace fadesched::distsim {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

TEST(DlsProtocolTest, EmptyNetworkIsTrivial) {
  const DlsProtocolResult result =
      RunDlsProtocol(net::LinkSet{}, PaperParams());
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_EQ(result.sim_stats.messages_sent, 0u);
}

TEST(DlsProtocolTest, LoneLinkStaysActive) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  const DlsProtocolResult result = RunDlsProtocol(links, PaperParams());
  EXPECT_EQ(result.schedule, net::Schedule{0});
}

TEST(DlsProtocolTest, GlobalRadiusYieldsFeasibleSchedule) {
  // With a broadcast radius covering the whole region the terminal
  // self-prune guarantees Corollary 3.1 feasibility.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
    const auto params = PaperParams();
    const DlsProtocolResult result = RunDlsProtocol(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
        << "seed=" << seed;
    EXPECT_GT(result.schedule.size(), 0u);
  }
}

TEST(DlsProtocolTest, DeterministicForSeed) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const DlsProtocolResult a = RunDlsProtocol(links, PaperParams());
  const DlsProtocolResult b = RunDlsProtocol(links, PaperParams());
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.sim_stats.messages_sent, b.sim_stats.messages_sent);
}

TEST(DlsProtocolTest, MessageCostScalesWithDensityAndRounds) {
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  DlsProtocolOptions few;
  few.contention_rounds = 2;
  few.resolution_rounds = 2;
  DlsProtocolOptions many;
  many.contention_rounds = 10;
  many.resolution_rounds = 10;
  const auto cost_few =
      RunDlsProtocol(links, PaperParams(), few).sim_stats.messages_sent;
  const auto cost_many =
      RunDlsProtocol(links, PaperParams(), many).sim_stats.messages_sent;
  EXPECT_GT(cost_many, cost_few);
}

TEST(DlsProtocolTest, SmallRadiusSendsFewerMessages) {
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  DlsProtocolOptions global;
  DlsProtocolOptions local;
  local.broadcast_radius = 100.0;
  const auto global_cost =
      RunDlsProtocol(links, PaperParams(), global).sim_stats.messages_sent;
  const auto local_cost =
      RunDlsProtocol(links, PaperParams(), local).sim_stats.messages_sent;
  EXPECT_LT(local_cost, global_cost);
}

TEST(DlsProtocolTest, ValidUniqueIds) {
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(120, {}, gen);
  const DlsProtocolResult result = RunDlsProtocol(links, PaperParams());
  std::set<net::LinkId> seen;
  for (net::LinkId id : result.schedule) {
    EXPECT_LT(id, links.Size());
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(DlsProtocolTest, ComparableToModelledDls) {
  // The protocol and the aggregate model should land in the same ballpark
  // of schedule sizes (both are randomized; require within a 3x band).
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const auto params = PaperParams();
  const DlsProtocolResult protocol = RunDlsProtocol(links, params);
  sched::DlsOptions model_options;
  model_options.sensing_radius_factor = 0.0;  // genie
  const auto model =
      sched::DlsScheduler(model_options).Schedule(links, params);
  ASSERT_GT(model.schedule.size(), 0u);
  const double ratio = static_cast<double>(protocol.schedule.size()) /
                       static_cast<double>(model.schedule.size());
  EXPECT_GT(ratio, 1.0 / 3.0);
  EXPECT_LT(ratio, 3.0);
}

TEST(DlsProtocolTest, NoisyLinksSelfExclude) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {3, 0}, 1.0});       // short: survives noise
  links.Add(net::Link{{1000, 0}, {1018, 0}, 1.0}); // long: hopeless
  channel::ChannelParams params = PaperParams();
  params.epsilon = 0.05;
  params.noise_power =
      1.5 * params.GammaEpsilon() * params.MeanPower(18.0) / params.gamma_th;
  const DlsProtocolResult result = RunDlsProtocol(links, params);
  EXPECT_EQ(result.schedule, net::Schedule{0});
}

TEST(DlsProtocolTest, InvalidOptionsRejected) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  DlsProtocolOptions bad;
  bad.round_duration = 0.0;
  EXPECT_THROW(RunDlsProtocol(links, PaperParams(), bad),
               util::CheckFailure);
  bad = DlsProtocolOptions{};
  bad.contention_rounds = 0;
  bad.resolution_rounds = 0;
  EXPECT_THROW(RunDlsProtocol(links, PaperParams(), bad),
               util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::distsim
