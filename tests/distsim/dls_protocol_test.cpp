#include "distsim/dls_protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/dls.hpp"
#include "util/check.hpp"

namespace fadesched::distsim {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

TEST(DlsProtocolTest, EmptyNetworkIsTrivial) {
  const DlsProtocolResult result =
      RunDlsProtocol(net::LinkSet{}, PaperParams());
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_EQ(result.sim_stats.messages_sent, 0u);
}

TEST(DlsProtocolTest, LoneLinkStaysActive) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  const DlsProtocolResult result = RunDlsProtocol(links, PaperParams());
  EXPECT_EQ(result.schedule, net::Schedule{0});
}

TEST(DlsProtocolTest, GlobalRadiusYieldsFeasibleSchedule) {
  // With a broadcast radius covering the whole region the terminal
  // self-prune guarantees Corollary 3.1 feasibility.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
    const auto params = PaperParams();
    const DlsProtocolResult result = RunDlsProtocol(links, params);
    const channel::InterferenceCalculator calc(links, params);
    EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule))
        << "seed=" << seed;
    EXPECT_GT(result.schedule.size(), 0u);
  }
}

TEST(DlsProtocolTest, DeterministicForSeed) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const DlsProtocolResult a = RunDlsProtocol(links, PaperParams());
  const DlsProtocolResult b = RunDlsProtocol(links, PaperParams());
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.sim_stats.messages_sent, b.sim_stats.messages_sent);
}

TEST(DlsProtocolTest, MessageCostScalesWithDensityAndRounds) {
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  DlsProtocolOptions few;
  few.contention_rounds = 2;
  few.resolution_rounds = 2;
  DlsProtocolOptions many;
  many.contention_rounds = 10;
  many.resolution_rounds = 10;
  const auto cost_few =
      RunDlsProtocol(links, PaperParams(), few).sim_stats.messages_sent;
  const auto cost_many =
      RunDlsProtocol(links, PaperParams(), many).sim_stats.messages_sent;
  EXPECT_GT(cost_many, cost_few);
}

TEST(DlsProtocolTest, SmallRadiusSendsFewerMessages) {
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  DlsProtocolOptions global;
  DlsProtocolOptions local;
  local.broadcast_radius = 100.0;
  const auto global_cost =
      RunDlsProtocol(links, PaperParams(), global).sim_stats.messages_sent;
  const auto local_cost =
      RunDlsProtocol(links, PaperParams(), local).sim_stats.messages_sent;
  EXPECT_LT(local_cost, global_cost);
}

TEST(DlsProtocolTest, ValidUniqueIds) {
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(120, {}, gen);
  const DlsProtocolResult result = RunDlsProtocol(links, PaperParams());
  std::set<net::LinkId> seen;
  for (net::LinkId id : result.schedule) {
    EXPECT_LT(id, links.Size());
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(DlsProtocolTest, ComparableToModelledDls) {
  // The protocol and the aggregate model should land in the same ballpark
  // of schedule sizes (both are randomized; require within a 3x band).
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const auto params = PaperParams();
  const DlsProtocolResult protocol = RunDlsProtocol(links, params);
  sched::DlsOptions model_options;
  model_options.sensing_radius_factor = 0.0;  // genie
  const auto model =
      sched::DlsScheduler(model_options).Schedule(links, params);
  ASSERT_GT(model.schedule.size(), 0u);
  const double ratio = static_cast<double>(protocol.schedule.size()) /
                       static_cast<double>(model.schedule.size());
  EXPECT_GT(ratio, 1.0 / 3.0);
  EXPECT_LT(ratio, 3.0);
}

TEST(DlsProtocolTest, NoisyLinksSelfExclude) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {3, 0}, 1.0});       // short: survives noise
  links.Add(net::Link{{1000, 0}, {1018, 0}, 1.0}); // long: hopeless
  channel::ChannelParams params = PaperParams();
  params.epsilon = 0.05;
  params.noise_power =
      1.5 * params.GammaEpsilon() * params.MeanPower(18.0) / params.gamma_th;
  const DlsProtocolResult result = RunDlsProtocol(links, params);
  EXPECT_EQ(result.schedule, net::Schedule{0});
}

TEST(DlsProtocolTest, InvalidOptionsRejected) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  DlsProtocolOptions bad;
  bad.round_duration = 0.0;
  EXPECT_THROW(RunDlsProtocol(links, PaperParams(), bad),
               util::CheckFailure);
  bad = DlsProtocolOptions{};
  bad.contention_rounds = 0;
  bad.resolution_rounds = 0;
  EXPECT_THROW(RunDlsProtocol(links, PaperParams(), bad),
               util::CheckFailure);
  bad = DlsProtocolOptions{};
  bad.backoff_probability = 1.5;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
  bad = DlsProtocolOptions{};
  bad.broadcast_radius = 0.0;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
  bad = DlsProtocolOptions{};
  bad.estimate_decay = 1.5;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
  bad = DlsProtocolOptions{};
  bad.max_silent_rounds = 0;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
  bad = DlsProtocolOptions{};
  bad.fault.drop_probability = 2.0;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
}

// Golden outputs captured from the pre-fault-injection implementation
// (n = 80 uniform scenario, paper parameters, default protocol options).
// The fault layer must leave the fault-free path bit-identical: the same
// schedule AND the same message count, with or without an all-zero
// FaultPlan installed.
struct Golden {
  std::uint64_t scenario_seed;
  std::uint64_t messages_sent;
  net::Schedule schedule;
};

const Golden kGoldens[] = {
    {1, 38552, {3, 5, 7, 18, 20, 34, 38, 42, 49, 50, 55, 57, 63, 69, 73, 74,
                78}},
    {2, 35866, {7, 11, 13, 15, 18, 19, 22, 32, 41, 42, 44, 50, 61, 73, 78}},
    {3, 32785, {3, 5, 10, 13, 23, 29, 31, 42, 48, 50, 55, 64, 74, 77}},
};

TEST(DlsProtocolTest, FaultFreeRunMatchesPreFaultGoldens) {
  for (const Golden& golden : kGoldens) {
    rng::Xoshiro256 gen(golden.scenario_seed);
    const net::LinkSet links = net::MakeUniformScenario(80, {}, gen);

    const DlsProtocolResult plain = RunDlsProtocol(links, PaperParams());
    EXPECT_EQ(plain.schedule, golden.schedule)
        << "seed=" << golden.scenario_seed;
    EXPECT_EQ(plain.sim_stats.messages_sent, golden.messages_sent)
        << "seed=" << golden.scenario_seed;
    EXPECT_EQ(plain.beacons_lost, 0u);
    EXPECT_EQ(plain.agents_crashed, 0u);
    EXPECT_EQ(plain.agents_silent_pruned, 0u);
    EXPECT_DOUBLE_EQ(plain.residual_violation_rate, 0.0);

    // Installing an all-zero plan must change nothing, bit for bit.
    DlsProtocolOptions inert;
    inert.fault = FaultPlan{};
    const DlsProtocolResult with_plan =
        RunDlsProtocol(links, PaperParams(), inert);
    EXPECT_EQ(with_plan.schedule, golden.schedule);
    EXPECT_EQ(with_plan.sim_stats.messages_sent, golden.messages_sent);
  }
}

TEST(DlsProtocolTest, FaultedRunIsDeterministic) {
  rng::Xoshiro256 gen(7);
  const net::LinkSet links = net::MakeUniformScenario(80, {}, gen);
  DlsProtocolOptions options;
  options.fault.drop_probability = 0.25;
  options.fault.timer_jitter = 0.01;
  options.fault.crashes = SampleCrashWindows(80, 0.1, 25.0, 5.0, 99);
  const DlsProtocolResult a = RunDlsProtocol(links, PaperParams(), options);
  const DlsProtocolResult b = RunDlsProtocol(links, PaperParams(), options);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.sim_stats.messages_sent, b.sim_stats.messages_sent);
  EXPECT_EQ(a.beacons_lost, b.beacons_lost);
  EXPECT_EQ(a.agents_crashed, b.agents_crashed);
  EXPECT_EQ(a.agents_silent_pruned, b.agents_silent_pruned);
  EXPECT_DOUBLE_EQ(a.residual_violation_rate, b.residual_violation_rate);
  EXPECT_GT(a.beacons_lost, 0u);
  EXPECT_GT(a.agents_crashed, 0u);
}

TEST(DlsProtocolTest, PermanentlyCrashedAgentNeverScheduled) {
  rng::Xoshiro256 gen(8);
  const net::LinkSet links = net::MakeUniformScenario(60, {}, gen);
  // First find a link the fault-free run schedules, then crash it.
  const DlsProtocolResult healthy = RunDlsProtocol(links, PaperParams());
  ASSERT_FALSE(healthy.schedule.empty());
  const net::LinkId victim = healthy.schedule.front();
  DlsProtocolOptions options;
  options.fault.crashes.push_back(
      CrashWindow{victim, 0.0, std::numeric_limits<double>::infinity()});
  const DlsProtocolResult result =
      RunDlsProtocol(links, PaperParams(), options);
  for (const net::LinkId id : result.schedule) EXPECT_NE(id, victim);
  EXPECT_EQ(result.agents_crashed, 1u);
}

TEST(DlsProtocolTest, BeaconLossIsCountedUnderDrops) {
  rng::Xoshiro256 gen(9);
  const net::LinkSet links = net::MakeUniformScenario(60, {}, gen);
  DlsProtocolOptions options;
  options.fault.drop_probability = 0.5;
  const DlsProtocolResult result =
      RunDlsProtocol(links, PaperParams(), options);
  EXPECT_GT(result.beacons_lost, 0u);
  // Roughly half the beacons should vanish; allow a generous band.
  const double lost_fraction =
      static_cast<double>(result.beacons_lost) /
      static_cast<double>(result.sim_stats.messages_sent);
  EXPECT_GT(lost_fraction, 0.35);
  EXPECT_LT(lost_fraction, 0.65);
}

TEST(DlsProtocolTest, ForcedRobustModeStillFeasibleWithoutFaults) {
  // The hardened estimator only ever over-estimates interference (silent
  // neighbours decay instead of vanishing), so the terminal self-prune
  // argument still yields a Corollary 3.1-feasible schedule.
  rng::Xoshiro256 gen(10);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const auto params = PaperParams();
  DlsProtocolOptions options;
  options.robust = DlsProtocolOptions::RobustMode::kOn;
  const DlsProtocolResult result = RunDlsProtocol(links, params, options);
  EXPECT_GT(result.schedule.size(), 0u);
  const channel::InterferenceCalculator calc(links, params);
  EXPECT_TRUE(channel::ScheduleIsFeasible(calc, result.schedule));
  EXPECT_DOUBLE_EQ(result.residual_violation_rate, 0.0);
}

TEST(DlsProtocolTest, IsolatedAgentsSelfPruneUnderRadiusCollapse) {
  // The control channel fades hard: after a few rounds the broadcast
  // radius collapses to 1% and agents that used to hear neighbours go
  // deaf. The hardened estimator should conservatively withdraw them.
  rng::Xoshiro256 gen(11);
  const net::LinkSet links = net::MakeUniformScenario(80, {}, gen);
  DlsProtocolOptions options;
  options.fault.radius_shrink_per_round = 0.3;
  options.fault.min_radius_factor = 0.01;
  options.fault.round_period = options.round_duration;
  const DlsProtocolResult result =
      RunDlsProtocol(links, PaperParams(), options);
  EXPECT_GT(result.agents_silent_pruned, 0u);
}

}  // namespace
}  // namespace fadesched::distsim
