#include "distsim/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace fadesched::distsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FaultPlanTest, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.Enabled());
  plan.Validate();
  EXPECT_DOUBLE_EQ(plan.RadiusFactor(123.0), 1.0);
  EXPECT_FALSE(plan.CrashedAt(0, 5.0));
}

TEST(FaultPlanTest, AnyChannelEnablesThePlan) {
  FaultPlan plan;
  plan.drop_probability = 0.1;
  EXPECT_TRUE(plan.Enabled());
  plan = FaultPlan{};
  plan.radius_shrink_per_round = 0.05;
  EXPECT_TRUE(plan.Enabled());
  plan = FaultPlan{};
  plan.timer_jitter = 0.01;
  EXPECT_TRUE(plan.Enabled());
  plan = FaultPlan{};
  plan.crashes.push_back(CrashWindow{0, 1.0, 2.0});
  EXPECT_TRUE(plan.Enabled());
}

TEST(FaultPlanTest, CrashWindowsCoverHalfOpenIntervals) {
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{3, 1.0, 2.0});
  EXPECT_FALSE(plan.CrashedAt(3, 0.999));
  EXPECT_TRUE(plan.CrashedAt(3, 1.0));
  EXPECT_TRUE(plan.CrashedAt(3, 1.999));
  EXPECT_FALSE(plan.CrashedAt(3, 2.0));
  EXPECT_FALSE(plan.CrashedAt(4, 1.5));  // other nodes unaffected
  EXPECT_TRUE(plan.EverCrashedBefore(3, 1.5));
  EXPECT_FALSE(plan.EverCrashedBefore(3, 0.5));
  EXPECT_FALSE(plan.EverCrashedBefore(4, 10.0));
}

TEST(FaultPlanTest, RecoveryTimeChainsOverlappingWindows) {
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{0, 1.0, 3.0});
  plan.crashes.push_back(CrashWindow{0, 2.5, 4.0});
  EXPECT_DOUBLE_EQ(plan.RecoveryTime(0, 1.5), 4.0);
}

TEST(FaultPlanTest, PermanentCrashRecoversNever) {
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{0, 1.0, kInf});
  EXPECT_TRUE(plan.CrashedAt(0, 1e12));
  EXPECT_TRUE(std::isinf(plan.RecoveryTime(0, 2.0)));
}

TEST(FaultPlanTest, RadiusShrinksPerRoundDownToFloor) {
  FaultPlan plan;
  plan.radius_shrink_per_round = 0.25;
  plan.min_radius_factor = 0.3;
  plan.round_period = 2.0;
  EXPECT_DOUBLE_EQ(plan.RadiusFactor(0.0), 1.0);   // round 0
  EXPECT_DOUBLE_EQ(plan.RadiusFactor(1.9), 1.0);   // still round 0
  EXPECT_DOUBLE_EQ(plan.RadiusFactor(2.0), 0.75);  // round 1
  EXPECT_DOUBLE_EQ(plan.RadiusFactor(4.5), 0.5);   // round 2
  EXPECT_DOUBLE_EQ(plan.RadiusFactor(100.0), 0.3); // clamped at the floor
}

TEST(FaultPlanTest, ValidateRejectsBadFields) {
  FaultPlan plan;
  plan.drop_probability = 1.5;
  EXPECT_THROW(plan.Validate(), util::CheckFailure);
  plan = FaultPlan{};
  plan.radius_shrink_per_round = -0.1;
  EXPECT_THROW(plan.Validate(), util::CheckFailure);
  plan = FaultPlan{};
  plan.min_radius_factor = 0.0;
  EXPECT_THROW(plan.Validate(), util::CheckFailure);
  plan = FaultPlan{};
  plan.round_period = 0.0;
  EXPECT_THROW(plan.Validate(), util::CheckFailure);
  plan = FaultPlan{};
  plan.timer_jitter = -1.0;
  EXPECT_THROW(plan.Validate(), util::CheckFailure);
  plan = FaultPlan{};
  plan.crashes.push_back(CrashWindow{0, 2.0, 1.0});  // begin >= end
  EXPECT_THROW(plan.Validate(), util::CheckFailure);
}

TEST(FaultInjectorTest, ExtremeDropProbabilitiesAreDeterministic) {
  FaultPlan always;
  always.drop_probability = 1.0;
  FaultInjector drop_all(always);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(drop_all.RollMessageDrop());

  FaultPlan never;
  never.timer_jitter = 0.5;  // enabled, but dropping disabled
  FaultInjector drop_none(never);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(drop_none.RollMessageDrop());
}

TEST(FaultInjectorTest, SameSeedSameDrawSequence) {
  FaultPlan plan;
  plan.drop_probability = 0.5;
  plan.timer_jitter = 0.25;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.RollMessageDrop(), b.RollMessageDrop());
    EXPECT_DOUBLE_EQ(a.RollTimerJitter(), b.RollTimerJitter());
  }
}

TEST(FaultInjectorTest, JitterIsBounded) {
  FaultPlan plan;
  plan.timer_jitter = 0.125;
  FaultInjector injector(plan);
  for (int i = 0; i < 500; ++i) {
    const double jitter = injector.RollTimerJitter();
    EXPECT_GE(jitter, 0.0);
    EXPECT_LT(jitter, 0.125);
  }
}

TEST(SampleCrashWindowsTest, DeterministicAndFractionMonotone) {
  const auto a = SampleCrashWindows(100, 0.2, 25.0, 0.0, 7);
  const auto b = SampleCrashWindows(100, 0.2, 25.0, 0.0, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_DOUBLE_EQ(a[i].begin, b[i].begin);
  }
  EXPECT_GT(a.size(), 0u);
  EXPECT_LT(a.size(), 100u);
  // Raising the fraction only adds crashed nodes (draws are per-node).
  const auto more = SampleCrashWindows(100, 0.6, 25.0, 0.0, 7);
  EXPECT_GT(more.size(), a.size());
  std::size_t matched = 0;
  for (const auto& w : a) {
    for (const auto& m : more) {
      if (m.node == w.node) { ++matched; break; }
    }
  }
  EXPECT_EQ(matched, a.size());
}

TEST(SampleCrashWindowsTest, OutageDurationAndBounds) {
  const auto windows = SampleCrashWindows(50, 1.0, 10.0, 2.5, 3);
  ASSERT_EQ(windows.size(), 50u);
  for (const auto& w : windows) {
    EXPECT_GE(w.begin, 0.0);
    EXPECT_LT(w.begin, 10.0);
    EXPECT_DOUBLE_EQ(w.end, w.begin + 2.5);
  }
  const auto permanent = SampleCrashWindows(10, 1.0, 10.0, 0.0, 3);
  for (const auto& w : permanent) EXPECT_TRUE(std::isinf(w.end));
  EXPECT_THROW(SampleCrashWindows(10, 1.5, 10.0, 0.0, 3),
               util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::distsim
