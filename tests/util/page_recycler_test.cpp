#include "util/page_recycler.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace fadesched::util {
namespace {

constexpr std::size_t kAlign = 64;
constexpr std::size_t kBig = PageRecycler::kMinBytes * 2;

// Every test starts from an empty cache: the recycler is process-wide
// state shared with whatever allocated FactorBuffers earlier in the run.
class PageRecyclerTest : public ::testing::Test {
 protected:
  void SetUp() override { PageRecycler::Instance().Trim(); }
  void TearDown() override { PageRecycler::Instance().Trim(); }
};

TEST_F(PageRecyclerTest, RoundTripIsWritableAndAligned) {
  PageRecycler& recycler = PageRecycler::Instance();
  void* block = recycler.Acquire(kBig, kAlign);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) % kAlign, 0u);
  std::memset(block, 0x5a, kBig);
  recycler.Release(block, kAlign);
  if (recycler.Enabled()) {
    EXPECT_GE(recycler.CachedBytes(), kBig);
  } else {
    EXPECT_EQ(recycler.CachedBytes(), 0u);
  }
}

TEST_F(PageRecyclerTest, SameSizeReacquiresTheCachedBlock) {
  PageRecycler& recycler = PageRecycler::Instance();
  if (!recycler.Enabled()) GTEST_SKIP() << "recycling disabled in this build";
  void* first = recycler.Acquire(kBig, kAlign);
  recycler.Release(first, kAlign);
  void* second = recycler.Acquire(kBig, kAlign);
  EXPECT_EQ(first, second);  // the already-faulted pages, not a fresh map
  EXPECT_EQ(recycler.CachedBytes(), 0u);
  recycler.Release(second, kAlign);
}

TEST_F(PageRecyclerTest, GrossOvercapacityIsNotHandedOut) {
  PageRecycler& recycler = PageRecycler::Instance();
  if (!recycler.Enabled()) GTEST_SKIP() << "recycling disabled in this build";
  void* huge = recycler.Acquire(16 * PageRecycler::kMinBytes, kAlign);
  recycler.Release(huge, kAlign);
  // A block >4× the request stays cached rather than being pinned to a
  // small long-lived buffer.
  void* small = recycler.Acquire(PageRecycler::kMinBytes, kAlign);
  EXPECT_NE(small, huge);
  EXPECT_GE(recycler.CachedBytes(), 16 * PageRecycler::kMinBytes);
  recycler.Release(small, kAlign);
}

TEST_F(PageRecyclerTest, CacheIsBoundedByBlockBudget) {
  PageRecycler& recycler = PageRecycler::Instance();
  if (!recycler.Enabled()) GTEST_SKIP() << "recycling disabled in this build";
  std::vector<void*> blocks;
  for (std::size_t k = 0; k < PageRecycler::kMaxCachedBlocks + 2; ++k) {
    blocks.push_back(recycler.Acquire(kBig, kAlign));
  }
  for (void* block : blocks) recycler.Release(block, kAlign);
  EXPECT_LE(recycler.CachedBytes(), PageRecycler::kMaxCachedBlocks * kBig);
}

TEST_F(PageRecyclerTest, TrimReleasesEverything) {
  PageRecycler& recycler = PageRecycler::Instance();
  recycler.Release(recycler.Acquire(kBig, kAlign), kAlign);
  recycler.Trim();
  EXPECT_EQ(recycler.CachedBytes(), 0u);
}

TEST_F(PageRecyclerTest, RecyclingVectorResizeDoesNotZero) {
  // The allocator contract FactorBuffer relies on: assign() gives a
  // defined background, resize() does not — it hands back whatever the
  // recycled pages held, trading the zero-fill pass for the caller's
  // promise to overwrite every element.
  using Buffer = std::vector<double, RecyclingAlignedAllocator<double, 64>>;
  Buffer zeroed;
  zeroed.assign(1000, 0.0);
  for (double v : zeroed) ASSERT_EQ(v, 0.0);
  Buffer raw;
  raw.resize(1000);  // uninitialized on purpose: write before reading
  for (double& v : raw) v = 1.5;
  for (double v : raw) ASSERT_EQ(v, 1.5);
}

}  // namespace
}  // namespace fadesched::util
