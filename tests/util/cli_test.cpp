#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace fadesched::util {
namespace {

bool ParseArgs(CliParser& cli, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return cli.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliParserTest, DefaultsSurviveEmptyArgv) {
  CliParser cli("t", "test");
  auto& n = cli.AddInt("n", 5, "count");
  auto& x = cli.AddDouble("x", 1.5, "value");
  EXPECT_TRUE(ParseArgs(cli, {}));
  EXPECT_EQ(n, 5);
  EXPECT_DOUBLE_EQ(x, 1.5);
}

TEST(CliParserTest, EqualsFormAssigns) {
  CliParser cli("t", "test");
  auto& n = cli.AddInt("n", 0, "count");
  EXPECT_TRUE(ParseArgs(cli, {"--n=42"}));
  EXPECT_EQ(n, 42);
}

TEST(CliParserTest, SpaceFormAssigns) {
  CliParser cli("t", "test");
  auto& x = cli.AddDouble("x", 0.0, "value");
  EXPECT_TRUE(ParseArgs(cli, {"--x", "2.25"}));
  EXPECT_DOUBLE_EQ(x, 2.25);
}

TEST(CliParserTest, StringFlag) {
  CliParser cli("t", "test");
  auto& s = cli.AddString("algo", "ldp", "algorithm");
  EXPECT_TRUE(ParseArgs(cli, {"--algo=rle"}));
  EXPECT_EQ(s, "rle");
}

TEST(CliParserTest, BareBoolFlagSetsTrue) {
  CliParser cli("t", "test");
  auto& v = cli.AddBool("verbose", false, "verbosity");
  EXPECT_TRUE(ParseArgs(cli, {"--verbose"}));
  EXPECT_TRUE(v);
}

TEST(CliParserTest, BoolAcceptsExplicitValues) {
  CliParser cli("t", "test");
  auto& v = cli.AddBool("verbose", true, "verbosity");
  EXPECT_TRUE(ParseArgs(cli, {"--verbose=false"}));
  EXPECT_FALSE(v);
}

TEST(CliParserTest, UnknownFlagFails) {
  CliParser cli("t", "test");
  EXPECT_FALSE(ParseArgs(cli, {"--nope=1"}));
}

TEST(CliParserTest, MalformedIntFails) {
  CliParser cli("t", "test");
  cli.AddInt("n", 0, "count");
  EXPECT_FALSE(ParseArgs(cli, {"--n=abc"}));
}

TEST(CliParserTest, MissingValueFails) {
  CliParser cli("t", "test");
  cli.AddInt("n", 0, "count");
  EXPECT_FALSE(ParseArgs(cli, {"--n"}));
}

TEST(CliParserTest, PositionalArgumentFails) {
  CliParser cli("t", "test");
  EXPECT_FALSE(ParseArgs(cli, {"positional"}));
}

TEST(CliParserTest, HelpReturnsFalse) {
  CliParser cli("t", "test");
  EXPECT_FALSE(ParseArgs(cli, {"--help"}));
}

TEST(CliParserTest, DuplicateFlagNameRejected) {
  CliParser cli("t", "test");
  cli.AddInt("n", 0, "count");
  EXPECT_THROW(cli.AddDouble("n", 0.0, "dup"), CheckFailure);
}

TEST(CliParserTest, UsageListsFlagsWithDefaults) {
  CliParser cli("prog", "description");
  cli.AddInt("links", 100, "number of links");
  const std::string usage = cli.Usage();
  EXPECT_NE(usage.find("--links"), std::string::npos);
  EXPECT_NE(usage.find("100"), std::string::npos);
  EXPECT_NE(usage.find("number of links"), std::string::npos);
}

TEST(CliParserTest, MultipleFlagsInOneInvocation) {
  CliParser cli("t", "test");
  auto& n = cli.AddInt("n", 0, "");
  auto& x = cli.AddDouble("x", 0.0, "");
  auto& s = cli.AddString("s", "", "");
  EXPECT_TRUE(ParseArgs(cli, {"--n=1", "--x", "2", "--s=three"}));
  EXPECT_EQ(n, 1);
  EXPECT_DOUBLE_EQ(x, 2.0);
  EXPECT_EQ(s, "three");
}

TEST(CliParserTest, LaterOccurrenceWins) {
  CliParser cli("t", "test");
  auto& n = cli.AddInt("n", 0, "");
  EXPECT_TRUE(ParseArgs(cli, {"--n=1", "--n=2"}));
  EXPECT_EQ(n, 2);
}

}  // namespace
}  // namespace fadesched::util
