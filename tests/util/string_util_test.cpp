#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace fadesched::util {
namespace {

TEST(SplitTest, SplitsOnSeparator) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(SplitTest, LeadingAndTrailingSeparators) {
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitTest, EmptyStringYieldsSingleEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, NoSeparatorYieldsWholeString) {
  EXPECT_EQ(Split("hello", ','), (std::vector<std::string>{"hello"}));
}

TEST(TrimTest, StripsBothEnds) { EXPECT_EQ(Trim("  abc \t"), "abc"); }

TEST(TrimTest, AllWhitespaceBecomesEmpty) { EXPECT_EQ(Trim(" \t\n "), ""); }

TEST(TrimTest, NoWhitespaceUnchanged) { EXPECT_EQ(Trim("abc"), "abc"); }

TEST(TrimTest, InteriorWhitespacePreserved) {
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(ParseIntTest, ParsesPlainInteger) {
  EXPECT_EQ(ParseInt("42").value(), 42);
}

TEST(ParseIntTest, ParsesNegative) { EXPECT_EQ(ParseInt("-7").value(), -7); }

TEST(ParseIntTest, AllowsSurroundingWhitespace) {
  EXPECT_EQ(ParseInt(" 13 ").value(), 13);
}

TEST(ParseIntTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseInt("42x").has_value());
}

TEST(ParseIntTest, RejectsEmpty) { EXPECT_FALSE(ParseInt("").has_value()); }

TEST(ParseIntTest, RejectsFloat) { EXPECT_FALSE(ParseInt("1.5").has_value()); }

TEST(ParseDoubleTest, ParsesDecimal) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
}

TEST(ParseDoubleTest, ParsesScientific) {
  EXPECT_DOUBLE_EQ(ParseDouble("1e-3").value(), 1e-3);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").has_value());
}

TEST(ParseDoubleTest, RejectsPartialParse) {
  EXPECT_FALSE(ParseDouble("1.5kg").has_value());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(JoinTest, SingleItemNoSeparator) { EXPECT_EQ(Join({"x"}, ","), "x"); }

TEST(JoinTest, EmptyListYieldsEmpty) { EXPECT_EQ(Join({}, ","), ""); }

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.25), "1.25");
  EXPECT_EQ(FormatDouble(3.0), "3");
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
}

TEST(FormatDoubleTest, NegativeValues) {
  EXPECT_EQ(FormatDouble(-2.5), "-2.5");
}

TEST(FormatDoubleTest, ZeroIsPlainZero) { EXPECT_EQ(FormatDouble(0.0), "0"); }

}  // namespace
}  // namespace fadesched::util
