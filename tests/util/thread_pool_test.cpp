#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fadesched::util {
namespace {

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.NumThreads(), 1u);
}

TEST(ThreadPoolTest, ExplicitThreadCountHonored) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.NumThreads(), 3u);
}

TEST(ThreadPoolTest, SubmittedTaskRuns) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.Submit([&value] { value = 7; }).get();
  EXPECT_EQ(value, 7);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter, 500);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillWorkers) {
  // A task's exception belongs to its future; the worker thread must
  // survive and keep serving the queue.
  ThreadPool pool(1);
  auto bad = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter, 50);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  // WorkerLoop only exits once the queue is empty AND stop is set, so
  // every submitted task runs before the destructor returns — even tasks
  // still queued when the destructor fires.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    // Head task holds the single worker so the rest pile up in the queue.
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor joins after the drain
  EXPECT_EQ(counter, 100);
}

TEST(ParallelChunksTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1003;
  std::vector<std::atomic<int>> touched(kCount);
  ParallelChunks(pool, kCount,
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) ++touched[i];
                 });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(touched[i], 1) << "index " << i;
  }
}

TEST(ParallelChunksTest, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  ParallelChunks(pool, 0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ParallelChunksTest, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  ParallelChunks(pool, 3, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      sum += static_cast<int>(i);
    }
  });
  EXPECT_EQ(sum, 0 + 1 + 2);
}

TEST(ParallelChunksTest, ExceptionInChunkRethrown) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelChunks(pool, 10,
                              [](std::size_t, std::size_t begin, std::size_t) {
                                if (begin == 0) {
                                  throw std::runtime_error("chunk failure");
                                }
                              }),
               std::runtime_error);
}

TEST(WaitAllTest, AllTasksSucceed) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  const TaskReport report = WaitAll(futures);
  EXPECT_TRUE(report.AllOk());
  EXPECT_EQ(report.completed, 20u);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_NO_THROW(report.Rethrow());
  EXPECT_EQ(counter, 20);
}

TEST(WaitAllTest, CollectsEveryFailureWithItsIndex) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(pool.Submit([i] {
      if (i % 2 == 1) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    }));
  }
  const TaskReport report = WaitAll(futures);
  EXPECT_FALSE(report.AllOk());
  EXPECT_EQ(report.completed, 3u);
  ASSERT_EQ(report.failures.size(), 3u);
  EXPECT_EQ(report.failures[0].index, 1u);
  EXPECT_EQ(report.failures[0].message, "task 1");
  EXPECT_EQ(report.failures[1].index, 3u);
  EXPECT_EQ(report.failures[2].index, 5u);
  EXPECT_THROW(report.Rethrow(), std::runtime_error);
  EXPECT_NE(report.Summary().find("3/6"), std::string::npos)
      << report.Summary();
  EXPECT_NE(report.Summary().find("task 1"), std::string::npos);
}

TEST(WaitAllTest, ParallelChunksDrainsSiblingsBeforeRethrow) {
  // The first chunk fails instantly; the others keep writing to shared
  // state for a while. ParallelChunks must wait for ALL chunks before
  // rethrowing, or the still-running siblings would touch dead stack
  // frames. `live` counts chunks still inside the body: it must be 0
  // when the exception escapes.
  ThreadPool pool(4);
  std::atomic<int> live{0};
  std::atomic<bool> saw_nonzero_after_throw{false};
  try {
    ParallelChunks(pool, 400,
                   [&](std::size_t chunk, std::size_t, std::size_t) {
                     ++live;
                     if (chunk == 0) {
                       --live;
                       throw std::runtime_error("first chunk fails");
                     }
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(30));
                     --live;
                   });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error&) {
    if (live.load() != 0) saw_nonzero_after_throw = true;
  }
  EXPECT_FALSE(saw_nonzero_after_throw)
      << "chunks were still running when the exception escaped";
  EXPECT_EQ(live.load(), 0);
}

TEST(ParallelChunksTest, ChunkIndicesAreDense) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(3);
  ParallelChunks(pool, 300, [&](std::size_t chunk, std::size_t, std::size_t) {
    ++seen[chunk];
  });
  for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(seen[c], 1);
}

}  // namespace
}  // namespace fadesched::util
