#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace fadesched::util {
namespace {

CsvTable SampleTable() {
  CsvTable table({"name", "x", "y"});
  table.AppendRow({"a", "1", "2.5"});
  table.AppendRow({"b", "-3", "0.125"});
  return table;
}

TEST(CsvTableTest, HeaderAndShape) {
  CsvTable table = SampleTable();
  EXPECT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.NumCols(), 3u);
  EXPECT_EQ(table.Header(), (std::vector<std::string>{"name", "x", "y"}));
}

TEST(CsvTableTest, EmptyHeaderRejected) {
  EXPECT_THROW(CsvTable(std::vector<std::string>{}), CheckFailure);
}

TEST(CsvTableTest, RowWidthMismatchRejected) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.AppendRow({"only-one"}), CheckFailure);
}

TEST(CsvTableTest, ColumnIndexLookup) {
  CsvTable table = SampleTable();
  EXPECT_EQ(table.ColumnIndex("y"), 2u);
  EXPECT_TRUE(table.HasColumn("x"));
  EXPECT_FALSE(table.HasColumn("z"));
  EXPECT_THROW(table.ColumnIndex("z"), CheckFailure);
}

TEST(CsvTableTest, CellAccessByNameAndIndex) {
  CsvTable table = SampleTable();
  EXPECT_EQ(table.Cell(0, "name"), "a");
  EXPECT_EQ(table.Cell(1, 0), "b");
  EXPECT_DOUBLE_EQ(table.CellAsDouble(0, "y"), 2.5);
  EXPECT_EQ(table.CellAsInt(1, "x"), -3);
}

TEST(CsvTableTest, MalformedNumericCellThrows) {
  CsvTable table = SampleTable();
  EXPECT_THROW(table.CellAsDouble(0, "name"), CheckFailure);
  EXPECT_THROW(table.CellAsInt(0, "y"), CheckFailure);  // 2.5 is not an int
}

TEST(CsvTableTest, OutOfRangeAccessThrows) {
  CsvTable table = SampleTable();
  EXPECT_THROW(table.Cell(5, 0), CheckFailure);
  EXPECT_THROW(table.Cell(0, 9), CheckFailure);
}

TEST(CsvTableTest, WriteParseRoundTrip) {
  CsvTable table = SampleTable();
  CsvTable parsed = CsvTable::ParseString(table.ToString());
  ASSERT_EQ(parsed.NumRows(), table.NumRows());
  ASSERT_EQ(parsed.Header(), table.Header());
  for (std::size_t r = 0; r < table.NumRows(); ++r) {
    for (std::size_t c = 0; c < table.NumCols(); ++c) {
      EXPECT_EQ(parsed.Cell(r, c), table.Cell(r, c));
    }
  }
}

TEST(CsvTableTest, QuotedCellsRoundTrip) {
  CsvTable table({"text"});
  table.AppendRow({"has,comma"});
  table.AppendRow({"has\"quote"});
  CsvTable parsed = CsvTable::ParseString(table.ToString());
  EXPECT_EQ(parsed.Cell(0, "text"), "has,comma");
  EXPECT_EQ(parsed.Cell(1, "text"), "has\"quote");
}

TEST(CsvTableTest, ParseSkipsBlankLines) {
  CsvTable parsed = CsvTable::ParseString("a,b\n1,2\n\n3,4\n");
  EXPECT_EQ(parsed.NumRows(), 2u);
}

TEST(CsvTableTest, ParseHandlesCrLf) {
  CsvTable parsed = CsvTable::ParseString("a,b\r\n1,2\r\n");
  EXPECT_EQ(parsed.Cell(0, "b"), "2");
}

TEST(CsvTableTest, ParseEmptyInputThrows) {
  EXPECT_THROW(CsvTable::ParseString(""), CheckFailure);
}

TEST(CsvTableTest, ParseNamesRowOnWidthMismatch) {
  // Blank lines don't count: the short line below is data row 2.
  try {
    CsvTable::ParseString("a,b\n1,2\n\n3\n");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CSV row 2"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 2 columns, got 1"), std::string::npos)
        << what;
  }
}

TEST(CsvTableTest, PrettyStringContainsAlignedHeader) {
  const std::string pretty = SampleTable().ToPrettyString();
  EXPECT_NE(pretty.find("name"), std::string::npos);
  EXPECT_NE(pretty.find("----"), std::string::npos);
}

TEST(CsvRowBuilderTest, TypedCellsFormatted) {
  CsvTable table({"s", "d", "i", "z"});
  CsvRowBuilder(table)
      .Add(std::string("x"))
      .Add(2.5)
      .Add(static_cast<long long>(-4))
      .Add(std::size_t{7})
      .Commit();
  EXPECT_EQ(table.Cell(0, "s"), "x");
  EXPECT_EQ(table.Cell(0, "d"), "2.5");
  EXPECT_EQ(table.Cell(0, "i"), "-4");
  EXPECT_EQ(table.Cell(0, "z"), "7");
}

TEST(CsvRowBuilderTest, WidthMismatchDetectedAtCommit) {
  CsvTable table({"a", "b"});
  CsvRowBuilder builder(table);
  builder.Add(std::string("only"));
  EXPECT_THROW(builder.Commit(), CheckFailure);
}

}  // namespace
}  // namespace fadesched::util
