#include "util/error.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <stdexcept>
#include <thread>

#include "util/check.hpp"
#include "util/deadline.hpp"

namespace fadesched::util {
namespace {

std::exception_ptr Capture(const auto& thrower) {
  try {
    thrower();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

TEST(ErrorTest, KindNamesAreStable) {
  EXPECT_STREQ(ErrorKindName(ErrorKind::kTransient), "transient");
  EXPECT_STREQ(ErrorKindName(ErrorKind::kTimeout), "timeout");
  EXPECT_STREQ(ErrorKindName(ErrorKind::kInterrupted), "interrupted");
  EXPECT_STREQ(ErrorKindName(ErrorKind::kFatal), "fatal");
}

TEST(ErrorTest, ConvenienceConstructorsCarryKindAndMessage) {
  EXPECT_EQ(TransientError("x").kind(), ErrorKind::kTransient);
  EXPECT_EQ(TimeoutError("x").kind(), ErrorKind::kTimeout);
  EXPECT_EQ(InterruptedError("x").kind(), ErrorKind::kInterrupted);
  EXPECT_EQ(FatalError("x").kind(), ErrorKind::kFatal);
  EXPECT_STREQ(TimeoutError("deadline fired").what(), "deadline fired");
}

TEST(ErrorTest, ClassifyHarnessErrorReportsItsOwnKind) {
  EXPECT_EQ(ClassifyException(Capture([] { throw TimeoutError("t"); })),
            ErrorKind::kTimeout);
  EXPECT_EQ(ClassifyException(Capture([] { throw FatalError("f"); })),
            ErrorKind::kFatal);
  EXPECT_EQ(ClassifyException(Capture([] { throw InterruptedError("i"); })),
            ErrorKind::kInterrupted);
}

TEST(ErrorTest, ClassifyStandardExceptions) {
  // bad_alloc: memory pressure may clear — retry.
  EXPECT_EQ(ClassifyException(Capture([] { throw std::bad_alloc(); })),
            ErrorKind::kTransient);
  // logic_error (and CheckFailure) mark programming errors — never retry.
  EXPECT_EQ(
      ClassifyException(Capture([] { throw std::logic_error("bug"); })),
      ErrorKind::kFatal);
  EXPECT_EQ(ClassifyException(Capture([] { FS_CHECK_MSG(false, "bad"); })),
            ErrorKind::kFatal);
  // Unknown runtime errors default to transient so one odd seed cannot
  // abort a sweep.
  EXPECT_EQ(
      ClassifyException(Capture([] { throw std::runtime_error("io"); })),
      ErrorKind::kTransient);
}

TEST(ErrorTest, ExitCodesMatchTheDocumentedContract) {
  EXPECT_EQ(kExitOk, 0);
  EXPECT_EQ(kExitRuntime, 1);
  EXPECT_EQ(kExitUsage, 2);
  EXPECT_EQ(kExitInterrupted, 3);
  EXPECT_EQ(ExitCodeForError(ErrorKind::kTimeout), kExitInterrupted);
  EXPECT_EQ(ExitCodeForError(ErrorKind::kInterrupted), kExitInterrupted);
  EXPECT_EQ(ExitCodeForError(ErrorKind::kTransient), kExitRuntime);
  EXPECT_EQ(ExitCodeForError(ErrorKind::kFatal), kExitRuntime);
}

TEST(DeadlineTest, DefaultConstructedIsDisabledAndNeverExpires) {
  const Deadline deadline;
  EXPECT_FALSE(deadline.Enabled());
  EXPECT_FALSE(deadline.Expired());
}

TEST(DeadlineTest, NonPositiveBudgetDisables) {
  EXPECT_FALSE(Deadline::After(0.0).Enabled());
  EXPECT_FALSE(Deadline::After(-5.0).Enabled());
}

TEST(DeadlineTest, GenerousBudgetDoesNotExpireImmediately) {
  const Deadline deadline = Deadline::After(3600.0);
  EXPECT_TRUE(deadline.Enabled());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingSeconds(), 3000.0);
}

TEST(DeadlineTest, TinyBudgetExpires) {
  const Deadline deadline = Deadline::After(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_LE(deadline.RemainingSeconds(), 0.0);
}

}  // namespace
}  // namespace fadesched::util
