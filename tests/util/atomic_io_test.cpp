#include "util/atomic_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/error.hpp"

namespace fadesched::util {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "fadesched_atomic_io_" + name;
}

TEST(AtomicIoTest, WriteThenReadRoundTrips) {
  const std::string path = TempPath("roundtrip.txt");
  const std::string content = "x,y\n1,2\n3,4\n";
  AtomicWriteFile(path, content);
  EXPECT_EQ(ReadFileToString(path), content);
  EXPECT_TRUE(RemoveFile(path));
}

TEST(AtomicIoTest, OverwriteReplacesWholeContent) {
  const std::string path = TempPath("overwrite.txt");
  AtomicWriteFile(path, "a much longer first version of the file\n");
  AtomicWriteFile(path, "short\n");
  EXPECT_EQ(ReadFileToString(path), "short\n");
  EXPECT_TRUE(RemoveFile(path));
}

TEST(AtomicIoTest, EmptyContentProducesEmptyFile) {
  const std::string path = TempPath("empty.txt");
  AtomicWriteFile(path, "");
  EXPECT_EQ(ReadFileToString(path), "");
  EXPECT_TRUE(RemoveFile(path));
}

TEST(AtomicIoTest, NoTemporaryLeftBehindAfterSuccess) {
  const std::string path = TempPath("clean.txt");
  AtomicWriteFile(path, "payload");
  for (const auto& entry :
       std::filesystem::directory_iterator(testing::TempDir())) {
    EXPECT_EQ(entry.path().string().find("clean.txt.tmp"), std::string::npos)
        << "stale temporary: " << entry.path();
  }
  EXPECT_TRUE(RemoveFile(path));
}

TEST(AtomicIoTest, WriteIntoMissingDirectoryIsTransient) {
  const std::string path = TempPath("no_such_dir/file.txt");
  try {
    AtomicWriteFile(path, "data");
    FAIL() << "expected HarnessError";
  } catch (const HarnessError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTransient);
  }
}

TEST(AtomicIoTest, ReadMissingFileIsTransient) {
  try {
    ReadFileToString(TempPath("does_not_exist.txt"));
    FAIL() << "expected HarnessError";
  } catch (const HarnessError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTransient);
  }
}

TEST(AtomicIoTest, FileExistsAndRemove) {
  const std::string path = TempPath("exists.txt");
  EXPECT_FALSE(FileExists(path));
  AtomicWriteFile(path, "x");
  EXPECT_TRUE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path));
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(RemoveFile(path));
}

}  // namespace
}  // namespace fadesched::util
