#include "util/log.hpp"

#include <gtest/gtest.h>

namespace fadesched::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LogTest, MacroCompilesAndStreams) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);  // silence output; exercise the path
  FS_LOG(Info) << "value=" << 42 << " name=" << "x";
  SUCCEED();
}

TEST(LogTest, BelowThresholdShortCircuits) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 1;
  };
  FS_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0) << "suppressed log must not evaluate operands";
}

TEST(LogTest, AtOrAboveThresholdEvaluates) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 1;
  };
  // Redirect not needed: Debug < Off means this emits to stderr once.
  FS_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace fadesched::util
