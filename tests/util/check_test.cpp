#include "util/check.hpp"

#include <gtest/gtest.h>

namespace fadesched::util {
namespace {

TEST(CheckTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(FS_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(FS_CHECK(false), CheckFailure);
}

TEST(CheckTest, FailureMessageContainsExpression) {
  try {
    FS_CHECK(2 < 1);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
  }
}

TEST(CheckTest, FailureMessageContainsCustomMessage) {
  try {
    FS_CHECK_MSG(false, "custom context");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
  }
}

TEST(CheckTest, CheckFailureIsLogicError) {
  EXPECT_THROW(FS_CHECK(false), std::logic_error);
}

TEST(CheckTest, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return true;
  };
  FS_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace fadesched::util
