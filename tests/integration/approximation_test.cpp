// Empirical approximation-ratio checks against the exact optimum on
// brute-forceable instances — the measurable counterpart of Theorems 4.2
// (LDP is O(g(L))-approximate) and 4.4 (RLE is constant-approximate).
#include <gtest/gtest.h>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "net/topology_stats.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/exact.hpp"
#include "sched/greedy.hpp"
#include "sched/ldp.hpp"
#include "sched/rle.hpp"

namespace fadesched {
namespace {

channel::ChannelParams LooseParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.05;  // non-trivial optima at brute-forceable sizes
  return params;
}

net::LinkSet SmallDenseInstance(std::uint64_t seed, std::size_t n) {
  rng::Xoshiro256 gen(seed);
  net::UniformScenarioParams sp;
  sp.region_size = 150.0;
  return net::MakeUniformScenario(n, sp, gen);
}

class ApproximationRatioTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ApproximationRatioTest, LdpWithinTheorem42Bound) {
  const std::uint64_t seed = GetParam();
  const net::LinkSet links = SmallDenseInstance(seed, 14);
  const auto params = LooseParams();
  const double optimal =
      sched::BranchAndBoundScheduler().Schedule(links, params).claimed_rate;
  const double ldp = sched::LdpScheduler().Schedule(links, params).claimed_rate;
  ASSERT_GT(ldp, 0.0);
  const double bound = 16.0 * static_cast<double>(net::LengthDiversity(links));
  EXPECT_LE(optimal / ldp, bound) << "seed=" << seed;
}

TEST_P(ApproximationRatioTest, RleWithinModestConstantEmpirically) {
  // Theorem 4.4's analytic constant is astronomically loose; empirically
  // the gap on the paper's workload stays tiny. Anchor that behaviour so
  // regressions in RLE's selection logic surface here.
  const std::uint64_t seed = GetParam();
  const net::LinkSet links = SmallDenseInstance(seed + 50, 14);
  const auto params = LooseParams();
  const double optimal =
      sched::BranchAndBoundScheduler().Schedule(links, params).claimed_rate;
  const double rle = sched::RleScheduler().Schedule(links, params).claimed_rate;
  ASSERT_GT(rle, 0.0);
  EXPECT_LE(optimal / rle, 8.0) << "seed=" << seed;
}

TEST_P(ApproximationRatioTest, GreedyWithinModestGapEmpirically) {
  const std::uint64_t seed = GetParam();
  const net::LinkSet links = SmallDenseInstance(seed + 100, 14);
  const auto params = LooseParams();
  const double optimal =
      sched::BranchAndBoundScheduler().Schedule(links, params).claimed_rate;
  const double greedy =
      sched::FadingGreedyScheduler().Schedule(links, params).claimed_rate;
  ASSERT_GT(greedy, 0.0);
  EXPECT_LE(optimal / greedy, 3.0) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximationRatioTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ApproximationTest, RatioIsAtLeastOneByDefinition) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const net::LinkSet links = SmallDenseInstance(seed + 200, 12);
    const auto params = LooseParams();
    const double optimal =
        sched::BranchAndBoundScheduler().Schedule(links, params).claimed_rate;
    for (const char* name : {"ldp", "rle", "fading_greedy"}) {
      SCOPED_TRACE(name);
      double heuristic = 0.0;
      if (std::string(name) == "ldp") {
        heuristic = sched::LdpScheduler().Schedule(links, params).claimed_rate;
      } else if (std::string(name) == "rle") {
        heuristic = sched::RleScheduler().Schedule(links, params).claimed_rate;
      } else {
        heuristic =
            sched::FadingGreedyScheduler().Schedule(links, params).claimed_rate;
      }
      EXPECT_GE(optimal, heuristic - 1e-9);
    }
  }
}

}  // namespace
}  // namespace fadesched
