// End-to-end tests of the public facade: generate → persist → load →
// solve → evaluate → simulate, the path a downstream user follows.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/fadesched.hpp"
#include "sched/rle.hpp"
#include "util/check.hpp"

namespace fadesched {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 1.0;
  params.epsilon = 0.01;
  return params;
}

TEST(PipelineTest, VersionIsConsistent) {
  const auto v = core::LibraryVersion();
  const std::string expected = std::to_string(v.major) + "." +
                               std::to_string(v.minor) + "." +
                               std::to_string(v.patch);
  EXPECT_EQ(core::VersionString(), expected);
}

TEST(PipelineTest, SolveEvaluatesScheduleConsistently) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const core::Problem problem(links, PaperParams());
  const core::Solution solution = problem.Solve("rle");
  EXPECT_EQ(solution.algorithm, "rle");
  EXPECT_TRUE(solution.fading_feasible);
  EXPECT_GT(solution.schedule.size(), 0u);
  EXPECT_NEAR(solution.claimed_rate,
              links.TotalRate(solution.schedule), 1e-12);
  // Feasible ⇒ every link's success probability ≥ 1−ε.
  EXPECT_GE(solution.min_success_probability, 0.99 - 1e-9);
  // Expected throughput within [claimed·(1−ε), claimed].
  EXPECT_LE(solution.expected_throughput, solution.claimed_rate + 1e-9);
  EXPECT_GE(solution.expected_throughput,
            solution.claimed_rate * (1.0 - 0.011));
}

TEST(PipelineTest, SaveLoadSolveIsIdentical) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(120, {}, gen);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fadesched_pipeline.csv")
          .string();
  net::SaveLinkSet(links, path);
  const net::LinkSet loaded = net::LoadLinkSet(path);
  std::remove(path.c_str());

  const core::Problem original(links, PaperParams());
  const core::Problem reloaded(loaded, PaperParams());
  EXPECT_EQ(original.Solve("ldp").schedule, reloaded.Solve("ldp").schedule);
  EXPECT_EQ(original.Solve("rle").schedule, reloaded.Solve("rle").schedule);
}

TEST(PipelineTest, EvaluateAcceptsHandCraftedSchedule) {
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(50, {}, gen);
  const core::Problem problem(links, PaperParams());
  const core::Solution lone = problem.Evaluate({7}, "manual");
  EXPECT_EQ(lone.algorithm, "manual");
  EXPECT_TRUE(lone.fading_feasible);
  EXPECT_DOUBLE_EQ(lone.min_success_probability, 1.0);
  EXPECT_DOUBLE_EQ(lone.expected_failed, 0.0);
}

TEST(PipelineTest, SolutionAgreesWithSimulator) {
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const auto params = PaperParams();
  const core::Problem problem(links, params);
  const core::Solution solution = problem.Solve("ldp");
  sim::SimOptions options;
  options.trials = 20000;
  const sim::SimResult sim_result =
      sim::SimulateSchedule(links, params, solution.schedule, options);
  EXPECT_NEAR(sim_result.failed_per_trial.Mean(), solution.expected_failed,
              5.0 * sim_result.failed_per_trial.StdError() + 1e-6);
  EXPECT_NEAR(sim_result.throughput_per_trial.Mean(),
              solution.expected_throughput,
              5.0 * sim_result.throughput_per_trial.StdError() + 1e-6);
}

TEST(PipelineTest, SolveByExternallyConstructedScheduler) {
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(80, {}, gen);
  const core::Problem problem(links, PaperParams());
  sched::RleOptions options;
  options.c2 = 0.3;
  const sched::RleScheduler rle(options);
  const core::Solution solution = problem.Solve(rle);
  EXPECT_TRUE(solution.fading_feasible);
}

TEST(PipelineTest, InvalidChannelRejectedAtConstruction) {
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(10, {}, gen);
  channel::ChannelParams bad;
  bad.alpha = 1.5;
  EXPECT_THROW(core::Problem(links, bad), util::CheckFailure);
}

TEST(PipelineTest, BaselineSolutionReportsInfeasibility) {
  rng::Xoshiro256 gen(7);
  const net::LinkSet links = net::MakeUniformScenario(400, {}, gen);
  const core::Problem problem(links, PaperParams());
  const core::Solution solution = problem.Solve("approx_diversity");
  EXPECT_FALSE(solution.fading_feasible);
  EXPECT_LT(solution.min_success_probability, 0.99);
  EXPECT_GT(solution.expected_failed, 0.0);
}

}  // namespace
}  // namespace fadesched
