// Empirical checks of the paper's supporting lemmas on real scheduler
// output — the analysis layer between the algorithms and the main
// theorems.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "channel/feasibility.hpp"
#include "geom/grid.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "net/topology_stats.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/constants.hpp"
#include "sched/rle.hpp"
#include "sched/ldp.hpp"

namespace fadesched {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

TEST(Lemma41Test, RlePickedSendersArePairwiseSeparated) {
  // Lemma 4.1: senders picked after link i are pairwise at least
  // (c1−1)·d_ii apart. Equivalent pairwise form: any two picked links a, b
  // satisfy d(s_a, s_b) ≥ (c1−1)·min(len_a, len_b).
  const auto params = PaperParams();
  const double c1 = sched::RleC1(params, sched::RleOptions{}.c2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
    const auto schedule =
        sched::RleScheduler().Schedule(links, params).schedule;
    for (std::size_t x = 0; x < schedule.size(); ++x) {
      for (std::size_t y = x + 1; y < schedule.size(); ++y) {
        const net::LinkId a = schedule[x];
        const net::LinkId b = schedule[y];
        const double min_len = std::min(links.Length(a), links.Length(b));
        EXPECT_GE(geom::Distance(links.Sender(a), links.Sender(b)),
                  (c1 - 1.0) * min_len - 1e-9)
            << "seed=" << seed << " links " << a << "," << b;
      }
    }
  }
}

TEST(Lemma42Test, FeasibleScheduleSenderDensityBounded) {
  // Lemma 4.2: in a feasible schedule, the number of other senders within
  // distance k·d_ii of s_i is at most ((e^{γε}−1)/γ_th)·(1+k)^α.
  const auto params = PaperParams();
  const double budget_count =
      (std::exp(params.GammaEpsilon()) - 1.0) / params.gamma_th;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
    const auto schedule =
        sched::RleScheduler().Schedule(links, params).schedule;
    const channel::InterferenceCalculator calc(links, params);
    ASSERT_TRUE(channel::ScheduleIsFeasible(calc, schedule));
    for (net::LinkId i : schedule) {
      for (double k : {1.0, 2.0, 4.0, 8.0}) {
        std::size_t within = 0;
        for (net::LinkId j : schedule) {
          if (j == i) continue;
          if (geom::Distance(links.Sender(i), links.Sender(j)) <=
              k * links.Length(i)) {
            ++within;
          }
        }
        const double bound =
            budget_count * std::pow(1.0 + k, params.alpha);
        EXPECT_LE(static_cast<double>(within), bound + 1e-9)
            << "seed=" << seed << " link " << i << " k=" << k;
      }
    }
  }
}

TEST(Theorem42CountingTest, FeasibleSchedulePerSquareBound) {
  // The counting step of Theorem 4.2: a feasible schedule places at most
  // u = ⌈γ_ε / ln(1 + 1/(2^α β^α γ_th))⌉ receivers of length class k in
  // any β_k-square.
  const auto params = PaperParams();
  const double u = sched::LdpPerSquareBound(params);
  const double beta = sched::LdpBeta(params);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
    const auto params_copy = params;
    const auto schedule =
        sched::RleScheduler().Schedule(links, params_copy).schedule;
    const double delta = links.MinLength();
    for (int magnitude : net::LengthDiversitySet(links)) {
      const double cell = std::ldexp(delta, magnitude + 1) * beta;
      const geom::SquareGrid grid(links.BoundingBox().lo, cell);
      std::unordered_map<geom::CellIndex, std::size_t, geom::CellIndexHash>
          counts;
      for (net::LinkId id : schedule) {
        if (net::LengthMagnitude(links.Length(id), delta) != magnitude) {
          continue;
        }
        ++counts[grid.CellOf(links.Receiver(id))];
      }
      for (const auto& [cell_index, count] : counts) {
        EXPECT_LE(static_cast<double>(count), u)
            << "seed=" << seed << " magnitude=" << magnitude;
      }
    }
  }
}

TEST(LdpStructureTest, AtMostOneLinkPerSameColorSquare) {
  // Algorithm 1's defining structural invariant, on real output: the
  // selected links' receivers occupy pairwise distinct squares of one
  // colour in the winning class's grid. We verify the weaker
  // colour-agnostic form that is independent of which (k, j) won: all
  // receivers in distinct cells at *some* class's grid granularity.
  const auto params = PaperParams();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng::Xoshiro256 gen(seed);
    const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
    const auto schedule =
        sched::LdpScheduler().Schedule(links, params).schedule;
    const double delta = links.MinLength();
    const double beta = sched::LdpBeta(params);
    bool some_grid_separates = false;
    for (int magnitude : net::LengthDiversitySet(links)) {
      const double cell = std::ldexp(delta, magnitude + 1) * beta;
      const geom::SquareGrid grid(links.BoundingBox().lo, cell);
      std::set<std::pair<std::int64_t, std::int64_t>> cells;
      int color = -1;
      bool ok = true;
      for (net::LinkId id : schedule) {
        const auto c = grid.CellOf(links.Receiver(id));
        if (!cells.insert({c.a, c.b}).second) ok = false;
        const int this_color = geom::SquareGrid::ColorOf(c);
        if (color == -1) color = this_color;
        ok &= (color == this_color);
      }
      some_grid_separates |= ok;
    }
    EXPECT_TRUE(some_grid_separates) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace fadesched
