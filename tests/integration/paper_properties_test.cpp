// Cross-cutting tests of the paper's §V evaluation claims, at reduced
// scale so the suite stays fast. The full-scale versions are the bench
// binaries (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/exact_metrics.hpp"
#include "sim/experiment.hpp"

namespace fadesched {
namespace {

sim::ExperimentConfig QuickConfig(std::vector<std::string> algorithms) {
  sim::ExperimentConfig config;
  config.algorithms = std::move(algorithms);
  config.num_seeds = 4;
  config.trials = 400;
  return config;
}

TEST(PaperPropertiesTest, Fig5FadingResistantVsSusceptible) {
  // Fig. 5's headline: LDP/RLE have (almost) no failed transmissions,
  // the deterministic baselines have many.
  util::ThreadPool pool(2);
  sim::ExperimentPoint point;
  point.num_links = 300;
  const auto summaries = RunExperimentPoint(
      point,
      QuickConfig({"ldp", "rle", "approx_logn", "approx_diversity"}), pool);
  const double ldp_failed = summaries[0].measured_failed.Mean();
  const double rle_failed = summaries[1].measured_failed.Mean();
  const double logn_failed = summaries[2].measured_failed.Mean();
  const double diversity_failed = summaries[3].measured_failed.Mean();
  EXPECT_LT(ldp_failed, 0.2);
  EXPECT_LT(rle_failed, 0.2);
  EXPECT_GT(logn_failed, 5.0 * std::max(ldp_failed, 1e-3));
  EXPECT_GT(diversity_failed, 5.0 * std::max(rle_failed, 1e-3));
}

TEST(PaperPropertiesTest, Fig5aFailuresGrowWithLinkCount) {
  // For the fading-susceptible baselines, more links ⇒ more failures.
  util::ThreadPool pool(2);
  sim::ExperimentPoint small;
  small.num_links = 100;
  sim::ExperimentPoint large;
  large.num_links = 500;
  const auto cfg = QuickConfig({"approx_diversity"});
  const double failed_small =
      RunExperimentPoint(small, cfg, pool)[0].measured_failed.Mean();
  const double failed_large =
      RunExperimentPoint(large, cfg, pool)[0].measured_failed.Mean();
  EXPECT_GT(failed_large, failed_small);
}

TEST(PaperPropertiesTest, Fig5bFailuresShrinkWithAlpha) {
  // Higher α attenuates remote interferers faster ⇒ fewer failures for
  // the baselines (paper's observation on Fig. 5(b)).
  util::ThreadPool pool(2);
  sim::ExperimentPoint lo;
  lo.num_links = 300;
  lo.channel.alpha = 2.5;
  sim::ExperimentPoint hi;
  hi.num_links = 300;
  hi.channel.alpha = 4.5;
  const auto cfg = QuickConfig({"approx_logn"});
  const double failed_lo =
      RunExperimentPoint(lo, cfg, pool)[0].measured_failed.Mean();
  const double failed_hi =
      RunExperimentPoint(hi, cfg, pool)[0].measured_failed.Mean();
  EXPECT_GT(failed_lo, failed_hi);
}

TEST(PaperPropertiesTest, Fig6RleOutperformsLdpOnThroughput) {
  util::ThreadPool pool(2);
  sim::ExperimentPoint point;
  point.num_links = 300;
  const auto summaries =
      RunExperimentPoint(point, QuickConfig({"ldp", "rle"}), pool);
  EXPECT_GT(summaries[1].measured_throughput.Mean(),
            summaries[0].measured_throughput.Mean());
}

TEST(PaperPropertiesTest, Fig6aThroughputGrowsWithLinkCount) {
  util::ThreadPool pool(2);
  sim::ExperimentPoint small;
  small.num_links = 50;
  sim::ExperimentPoint large;
  large.num_links = 400;
  const auto cfg = QuickConfig({"rle"});
  const double tput_small =
      RunExperimentPoint(small, cfg, pool)[0].measured_throughput.Mean();
  const double tput_large =
      RunExperimentPoint(large, cfg, pool)[0].measured_throughput.Mean();
  EXPECT_GT(tput_large, tput_small);
}

TEST(PaperPropertiesTest, Fig6bThroughputGrowsWithAlpha) {
  util::ThreadPool pool(2);
  sim::ExperimentPoint lo;
  lo.num_links = 300;
  lo.channel.alpha = 2.5;
  sim::ExperimentPoint hi;
  hi.num_links = 300;
  hi.channel.alpha = 4.5;
  const auto cfg = QuickConfig({"ldp", "rle"});
  const auto at_lo = RunExperimentPoint(lo, cfg, pool);
  const auto at_hi = RunExperimentPoint(hi, cfg, pool);
  EXPECT_GT(at_hi[0].measured_throughput.Mean(),
            at_lo[0].measured_throughput.Mean());  // LDP
  EXPECT_GT(at_hi[1].measured_throughput.Mean(),
            at_lo[1].measured_throughput.Mean());  // RLE
}

TEST(PaperPropertiesTest, BaselinesClaimMoreButDeliverProportionallyLess) {
  // The deterministic baselines *schedule* more rate than LDP/RLE but
  // deliver a smaller fraction of it under fading.
  util::ThreadPool pool(2);
  sim::ExperimentPoint point;
  point.num_links = 400;
  const auto summaries = RunExperimentPoint(
      point, QuickConfig({"rle", "approx_diversity"}), pool);
  const auto& rle = summaries[0];
  const auto& diversity = summaries[1];
  EXPECT_GT(diversity.claimed_rate.Mean(), rle.claimed_rate.Mean());
  const double rle_delivery_ratio =
      rle.measured_throughput.Mean() / rle.claimed_rate.Mean();
  const double diversity_delivery_ratio =
      diversity.measured_throughput.Mean() / diversity.claimed_rate.Mean();
  EXPECT_GT(rle_delivery_ratio, 0.985);  // 1−ε with slack
  EXPECT_LT(diversity_delivery_ratio, rle_delivery_ratio);
}

}  // namespace
}  // namespace fadesched
