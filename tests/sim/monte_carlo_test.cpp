#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/exact_metrics.hpp"
#include "util/check.hpp"

namespace fadesched::sim {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.gamma_th = 1.0;
  params.epsilon = 0.01;
  return params;
}

net::LinkSet TwoLinkLine(double gap) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{gap, 0}, {gap + 1, 0}, 1.0});
  return links;
}

TEST(MonteCarloTest, EmptyScheduleHasZeroMetrics) {
  const net::LinkSet links = TwoLinkLine(10.0);
  SimOptions options;
  options.trials = 50;
  const SimResult result =
      SimulateSchedule(links, PaperParams(), {}, options);
  EXPECT_EQ(result.trials, 50u);
  EXPECT_EQ(result.scheduled_links, 0u);
  EXPECT_DOUBLE_EQ(result.failed_per_trial.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.throughput_per_trial.Mean(), 0.0);
}

TEST(MonteCarloTest, LoneLinkNeverFails) {
  // Noise is ignored (Formula (8)), so an interference-free link always
  // decodes.
  const net::LinkSet links = TwoLinkLine(10.0);
  SimOptions options;
  options.trials = 500;
  const SimResult result =
      SimulateSchedule(links, PaperParams(), {0}, options);
  EXPECT_DOUBLE_EQ(result.failed_per_trial.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.link_success_rate[0], 1.0);
  EXPECT_DOUBLE_EQ(result.throughput_per_trial.Mean(), 1.0);
}

TEST(MonteCarloTest, TwoLinkSuccessRateMatchesTheorem31) {
  // Analytic: Pr(X_0 ≥ γ) = 1/(1 + γ (d_00/d_10)^α).
  const double gap = 4.0;
  const net::LinkSet links = TwoLinkLine(gap);
  const auto params = PaperParams();
  SimOptions options;
  options.trials = 200000;
  options.seed = 9;
  const net::Schedule schedule{0, 1};
  const SimResult result = SimulateSchedule(links, params, schedule, options);
  const double d10 = gap - 1.0;
  const double expected = 1.0 / (1.0 + std::pow(1.0 / d10, 3.0));
  EXPECT_NEAR(result.link_success_rate[0], expected, 0.005);
}

TEST(MonteCarloTest, MatchesClosedFormOnRandomSchedules) {
  rng::Xoshiro256 gen(3);
  net::UniformScenarioParams sp;
  sp.region_size = 150.0;  // dense: meaningful interference
  const net::LinkSet links = net::MakeUniformScenario(20, sp, gen);
  const auto params = PaperParams();
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); i += 2) schedule.push_back(i);
  SimOptions options;
  options.trials = 50000;
  const SimResult sim = SimulateSchedule(links, params, schedule, options);
  const ExpectedMetrics expected =
      ComputeExpectedMetrics(links, params, schedule);
  // 5 sigma tolerance on the mean.
  const double tol_failed =
      5.0 * sim.failed_per_trial.StdError() + 1e-9;
  EXPECT_NEAR(sim.failed_per_trial.Mean(), expected.expected_failed,
              tol_failed);
  const double tol_tput =
      5.0 * sim.throughput_per_trial.StdError() + 1e-9;
  EXPECT_NEAR(sim.throughput_per_trial.Mean(), expected.expected_throughput,
              tol_tput);
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    EXPECT_NEAR(sim.link_success_rate[k],
                expected.link_success_probability[k], 0.02);
  }
}

TEST(MonteCarloTest, DeterministicForSeed) {
  const net::LinkSet links = TwoLinkLine(5.0);
  const net::Schedule schedule{0, 1};
  SimOptions options;
  options.trials = 1000;
  options.seed = 77;
  const SimResult a = SimulateSchedule(links, PaperParams(), schedule, options);
  const SimResult b = SimulateSchedule(links, PaperParams(), schedule, options);
  EXPECT_DOUBLE_EQ(a.failed_per_trial.Mean(), b.failed_per_trial.Mean());
  EXPECT_DOUBLE_EQ(a.link_success_rate[0], b.link_success_rate[0]);
}

TEST(MonteCarloTest, DifferentSeedsDiffer) {
  const net::LinkSet links = TwoLinkLine(3.0);
  const net::Schedule schedule{0, 1};
  SimOptions a;
  a.trials = 200;
  a.seed = 1;
  SimOptions b = a;
  b.seed = 2;
  const SimResult ra = SimulateSchedule(links, PaperParams(), schedule, a);
  const SimResult rb = SimulateSchedule(links, PaperParams(), schedule, b);
  EXPECT_NE(ra.failed_per_trial.Mean(), rb.failed_per_trial.Mean());
}

TEST(MonteCarloTest, ThreadCountInvariantPerLinkCounts) {
  // Per-trial streams are keyed by trial index, so the per-link success
  // *counts* are identical for any pool size.
  rng::Xoshiro256 gen(4);
  net::UniformScenarioParams sp;
  sp.region_size = 150.0;
  const net::LinkSet links = net::MakeUniformScenario(12, sp, gen);
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); ++i) schedule.push_back(i);
  SimOptions options;
  options.trials = 2000;
  util::ThreadPool one(1);
  util::ThreadPool four(4);
  const SimResult r1 =
      SimulateSchedule(links, PaperParams(), schedule, options, one);
  const SimResult r4 =
      SimulateSchedule(links, PaperParams(), schedule, options, four);
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    EXPECT_DOUBLE_EQ(r1.link_success_rate[k], r4.link_success_rate[k]);
  }
  EXPECT_NEAR(r1.failed_per_trial.Mean(), r4.failed_per_trial.Mean(), 1e-12);
}

TEST(MonteCarloTest, CloseInterfererFailsOften) {
  const net::LinkSet links = TwoLinkLine(1.5);
  SimOptions options;
  options.trials = 20000;
  const SimResult result =
      SimulateSchedule(links, PaperParams(), {0, 1}, options);
  // d_10 = 0.5 < d_00 = 1 ⇒ interferer usually stronger than signal.
  EXPECT_LT(result.link_success_rate[0], 0.25);
}

TEST(MonteCarloTest, FailedPlusDeliveredIsConsistent) {
  // failures + successes == schedule size per trial; in expectation:
  // E[failed] + E[throughput] == m for unit rates.
  rng::Xoshiro256 gen(5);
  net::UniformScenarioParams sp;
  sp.region_size = 200.0;
  const net::LinkSet links = net::MakeUniformScenario(10, sp, gen);
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); ++i) schedule.push_back(i);
  SimOptions options;
  options.trials = 5000;
  const SimResult result =
      SimulateSchedule(links, PaperParams(), schedule, options);
  EXPECT_NEAR(result.failed_per_trial.Mean() +
                  result.throughput_per_trial.Mean(),
              static_cast<double>(schedule.size()), 1e-9);
}

TEST(MonteCarloTest, ZeroTrialsRejected) {
  const net::LinkSet links = TwoLinkLine(5.0);
  SimOptions options;
  options.trials = 0;
  EXPECT_THROW(SimulateSchedule(links, PaperParams(), {0}, options),
               util::CheckFailure);
}

TEST(MonteCarloTest, InvalidScheduleIdRejected) {
  const net::LinkSet links = TwoLinkLine(5.0);
  SimOptions options;
  options.trials = 10;
  EXPECT_THROW(SimulateSchedule(links, PaperParams(), {7}, options),
               util::CheckFailure);
}

TEST(MonteCarloTest, OptionsValidateCatchesBadFields) {
  SimOptions options;
  options.Validate();  // defaults are fine
  options.trials = 0;
  EXPECT_THROW(options.Validate(), util::CheckFailure);
  options = SimOptions{};
  options.fading.nakagami_m = -1.0;
  EXPECT_THROW(options.Validate(), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::sim
