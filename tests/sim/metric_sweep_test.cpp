// RunMetricSweep — the generic crash-safe driver the dynamics benches run
// on. Mirrors sweep_test's drills (kill-and-resume, stale checkpoint,
// watchdog degradation) against the caller-supplied-measurement variant.
#include "sim/sweep.hpp"

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <map>
#include <stdexcept>
#include <string>
#include <unistd.h>

#include "util/atomic_io.hpp"
#include "util/error.hpp"
#include "util/signal_guard.hpp"

namespace fadesched::sim {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "fadesched_msweep_" + name;
}

// A pure arithmetic sweep: every cell is a closed-form function of its
// indices, so the expected aggregates are exact and every resume path
// must land on the same bytes.
MetricSweepSpec TinySpec() {
  MetricSweepSpec spec;
  spec.name = "metric_sweep_test_tiny";
  spec.x_name = "x";
  spec.xs = {1.0, 2.0};
  spec.series = {"a", "b"};
  spec.metrics = {"value", "twice"};
  spec.num_seeds = 3;
  spec.config_fingerprint = 0x1234;
  spec.run_seed = [](std::size_t point, std::size_t series,
                     std::size_t seed_index, const util::Deadline&) {
    const double v = static_cast<double>(100 * point + 10 * series +
                                         seed_index);
    return std::vector<double>{v, 2.0 * v};
  };
  return spec;
}

std::string BaselineTable() {
  static const std::string baseline =
      RunMetricSweep(TinySpec(), {}).table.ToString();
  return baseline;
}

TEST(MetricSweepTest, AggregatesSeedsIntoExactMeans) {
  const MetricSweepResult result = RunMetricSweep(TinySpec(), {});
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.ExitCode(), util::kExitOk);
  EXPECT_EQ(result.points_total, 2u);
  EXPECT_EQ(result.points_completed, 2u);
  ASSERT_EQ(result.table.NumRows(), 4u);  // 2 points × 2 series

  // Row order is point-major; seeds {v, v+1, v+2} average to v+1.
  for (std::size_t point = 0; point < 2; ++point) {
    for (std::size_t series = 0; series < 2; ++series) {
      const std::size_t row = 2 * point + series;
      const double expected =
          static_cast<double>(100 * point + 10 * series) + 1.0;
      EXPECT_EQ(result.table.Cell(row, "series"), series == 0 ? "a" : "b");
      EXPECT_DOUBLE_EQ(result.table.CellAsDouble(row, "x"),
                       static_cast<double>(point + 1));
      EXPECT_DOUBLE_EQ(result.table.CellAsDouble(row, "value_mean"),
                       expected);
      EXPECT_DOUBLE_EQ(result.table.CellAsDouble(row, "twice_mean"),
                       2.0 * expected);
      EXPECT_GT(result.table.CellAsDouble(row, "value_ci95"), 0.0);
    }
  }
}

TEST(MetricSweepTest, RepeatRunsAreByteIdentical) {
  EXPECT_EQ(RunMetricSweep(TinySpec(), {}).table.ToString(),
            BaselineTable());
}

// The golden kill-and-resume drill, metric-sweep edition: the child dies
// by SIGKILL right after point 0 checkpoints complete; the parent resumes
// and must (a) reproduce the baseline byte for byte and (b) not re-run
// any checkpointed seed.
TEST(MetricSweepTest, KillAndResumeReproducesBaselineByteForByte) {
  const std::string ck_path = TempPath("kill_resume.ck");
  const std::string out_path = TempPath("kill_resume.csv");
  util::RemoveFile(ck_path);
  util::RemoveFile(out_path);
  const std::string baseline = BaselineTable();

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    MetricSweepOptions options;
    options.checkpoint_path = ck_path;
    options.after_checkpoint = [](std::size_t point, std::size_t,
                                  bool complete) {
      if (complete && point == 0) std::raise(SIGKILL);
    };
    RunMetricSweep(TinySpec(), options);
    _exit(7);  // not reached if the drill worked
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  ASSERT_TRUE(util::FileExists(ck_path)) << "no checkpoint left behind";

  MetricSweepSpec spec = TinySpec();
  std::size_t live_runs = 0;
  const auto inner = spec.run_seed;
  spec.run_seed = [&](std::size_t point, std::size_t series,
                      std::size_t seed_index, const util::Deadline& dl) {
    ++live_runs;
    return inner(point, series, seed_index, dl);
  };
  MetricSweepOptions options;
  options.checkpoint_path = ck_path;
  options.resume = true;
  options.out_path = out_path;
  const MetricSweepResult resumed = RunMetricSweep(spec, options);

  EXPECT_EQ(resumed.points_resumed, 1u);
  EXPECT_EQ(resumed.seeds_resumed, 3u);  // a seed spans every series
  EXPECT_EQ(resumed.points_completed, 2u);
  // Point 1 alone reruns: 3 seeds × 2 series run_seed calls.
  EXPECT_EQ(live_runs, 6u) << "resumed seeds must not re-run";
  EXPECT_EQ(resumed.table.ToString(), baseline);
  EXPECT_EQ(util::ReadFileToString(out_path), baseline);
  EXPECT_FALSE(util::FileExists(ck_path));
  util::RemoveFile(out_path);
}

TEST(MetricSweepTest, ChangedFingerprintRefusesStaleCheckpoint) {
  const std::string ck_path = TempPath("stale.ck");
  util::RemoveFile(ck_path);

  MetricSweepOptions options;
  options.checkpoint_path = ck_path;
  options.keep_checkpoint = true;
  RunMetricSweep(TinySpec(), options);
  ASSERT_TRUE(util::FileExists(ck_path));

  MetricSweepSpec changed = TinySpec();
  changed.config_fingerprint = 0x5678;  // any config drift must refuse
  options.resume = true;
  try {
    RunMetricSweep(changed, options);
    FAIL() << "expected HarnessError";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kFatal);
  }
  util::RemoveFile(ck_path);
}

TEST(MetricSweepTest, TransientFailuresRetryAndSucceed) {
  MetricSweepSpec spec = TinySpec();
  std::map<std::size_t, std::size_t> attempts;
  const auto inner = spec.run_seed;
  spec.run_seed = [&](std::size_t point, std::size_t series,
                      std::size_t seed_index, const util::Deadline& dl) {
    const std::size_t key = 100 * point + 10 * series + seed_index;
    if (++attempts[key] == 1 && key == 11) {
      throw std::runtime_error("flaky once");
    }
    return inner(point, series, seed_index, dl);
  };
  const MetricSweepResult result = RunMetricSweep(spec, {});
  EXPECT_EQ(result.retried_seeds, 1u);
  EXPECT_EQ(result.failed_seeds, 0u);
  EXPECT_EQ(result.table.ToString(), BaselineTable());
}

TEST(MetricSweepTest, TimeoutsDegradeWithoutRetrying) {
  MetricSweepSpec spec = TinySpec();
  std::size_t calls = 0;
  spec.run_seed = [&](std::size_t, std::size_t, std::size_t,
                      const util::Deadline&) -> std::vector<double> {
    ++calls;
    throw util::TimeoutError("too slow");
  };
  const MetricSweepResult result = RunMetricSweep(spec, {});
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.ExitCode(), util::kExitOk);
  // A seed spans every series, so 2 points × 3 seeds degrade, and each
  // dies on its first series call with no retry.
  EXPECT_EQ(result.failed_seeds, 6u);
  EXPECT_EQ(result.timed_out_seeds, 6u);
  EXPECT_EQ(result.retried_seeds, 0u);
  EXPECT_EQ(calls, 6u) << "timeouts must not burn retry attempts";
  EXPECT_EQ(result.points_completed, 2u);  // complete, just degraded
}

TEST(MetricSweepTest, ShutdownRequestCheckpointsAndResumesToBaseline) {
  const std::string ck_path = TempPath("interrupt.ck");
  const std::string out_path = TempPath("interrupt.csv");
  util::RemoveFile(ck_path);
  util::RemoveFile(out_path);

  MetricSweepOptions options;
  options.checkpoint_path = ck_path;
  options.out_path = out_path;
  options.after_checkpoint = [](std::size_t, std::size_t, bool) {
    util::RequestShutdown();
  };
  const MetricSweepResult result = RunMetricSweep(TinySpec(), options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.ExitCode(), util::kExitInterrupted);
  EXPECT_TRUE(util::FileExists(ck_path)) << "interrupt must checkpoint";
  EXPECT_TRUE(util::FileExists(out_path)) << "interrupt must flush CSV";
  util::ClearShutdownRequest();

  MetricSweepOptions resume_options;
  resume_options.checkpoint_path = ck_path;
  resume_options.out_path = out_path;
  resume_options.resume = true;
  const MetricSweepResult resumed =
      RunMetricSweep(TinySpec(), resume_options);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_GT(resumed.seeds_resumed, 0u);
  EXPECT_EQ(resumed.table.ToString(), BaselineTable());
  EXPECT_EQ(util::ReadFileToString(out_path), BaselineTable());
  EXPECT_FALSE(util::FileExists(ck_path));
  util::RemoveFile(out_path);
}

}  // namespace
}  // namespace fadesched::sim
