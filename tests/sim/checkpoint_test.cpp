#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "mathx/stats.hpp"
#include "util/atomic_io.hpp"
#include "util/error.hpp"

namespace fadesched::sim {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "fadesched_checkpoint_" + name;
}

// Awkward, non-representable doubles so the hex-float round trip is
// actually exercised.
mathx::RunningStats AwkwardStats(double scale) {
  mathx::RunningStats stats;
  stats.Add(scale / 3.0);
  stats.Add(scale * 0.1);
  stats.Add(-scale / 7.0);
  return stats;
}

bool BitIdentical(const mathx::RunningStats& a,
                  const mathx::RunningStats& b) {
  return a.Count() == b.Count() &&
         std::memcmp(&a, &b, sizeof(mathx::RunningStats)) == 0;
}

SweepCheckpoint MakeCheckpoint() {
  SweepCheckpoint ck;
  ck.fingerprint = 0xdeadbeefcafef00dULL;
  for (int p = 0; p < 2; ++p) {
    PointCheckpoint point;
    point.x = 100.0 * (p + 1) + 1.0 / 3.0;
    point.seeds_done = 3 + static_cast<std::size_t>(p);
    point.failed_seeds = static_cast<std::size_t>(p);
    point.timed_out_seeds = static_cast<std::size_t>(p);
    point.complete = p == 0;
    for (const char* algo : {"ldp", "rle"}) {
      AlgoSummary summary;
      summary.algorithm = algo;
      const double scale = algo[0] == 'l' ? 17.0 : 0.003;
      summary.scheduled_links = AwkwardStats(scale);
      summary.claimed_rate = AwkwardStats(scale * 2);
      summary.measured_failed = AwkwardStats(scale * 3);
      summary.measured_throughput = AwkwardStats(scale * 5);
      summary.expected_failed = AwkwardStats(scale * 7);
      summary.expected_throughput = AwkwardStats(scale * 11);
      summary.runtime_ms = AwkwardStats(scale * 13);
      point.summaries.push_back(summary);
    }
    ck.points.push_back(point);
  }
  return ck;
}

TEST(CheckpointTest, SerializeDeserializeIsExact) {
  const SweepCheckpoint original = MakeCheckpoint();
  const SweepCheckpoint restored =
      SweepCheckpoint::Deserialize(original.Serialize());

  EXPECT_EQ(restored.fingerprint, original.fingerprint);
  ASSERT_EQ(restored.points.size(), original.points.size());
  for (std::size_t p = 0; p < original.points.size(); ++p) {
    const PointCheckpoint& a = original.points[p];
    const PointCheckpoint& b = restored.points[p];
    EXPECT_EQ(a.x, b.x);  // exact, not NEAR: hex floats round-trip bits
    EXPECT_EQ(a.seeds_done, b.seeds_done);
    EXPECT_EQ(a.failed_seeds, b.failed_seeds);
    EXPECT_EQ(a.timed_out_seeds, b.timed_out_seeds);
    EXPECT_EQ(a.complete, b.complete);
    ASSERT_EQ(a.summaries.size(), b.summaries.size());
    for (std::size_t s = 0; s < a.summaries.size(); ++s) {
      EXPECT_EQ(a.summaries[s].algorithm, b.summaries[s].algorithm);
      EXPECT_TRUE(BitIdentical(a.summaries[s].measured_failed,
                               b.summaries[s].measured_failed));
      EXPECT_TRUE(BitIdentical(a.summaries[s].measured_throughput,
                               b.summaries[s].measured_throughput));
      EXPECT_TRUE(BitIdentical(a.summaries[s].runtime_ms,
                               b.summaries[s].runtime_ms));
    }
  }
}

TEST(CheckpointTest, SerializationIsDeterministic) {
  const SweepCheckpoint ck = MakeCheckpoint();
  EXPECT_EQ(ck.Serialize(), SweepCheckpoint::Deserialize(
                                ck.Serialize()).Serialize());
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip.ck");
  const SweepCheckpoint original = MakeCheckpoint();
  original.Save(path);

  SweepCheckpoint loaded;
  ASSERT_TRUE(SweepCheckpoint::Load(path, original.fingerprint, loaded));
  EXPECT_EQ(loaded.Serialize(), original.Serialize());
  util::RemoveFile(path);
}

TEST(CheckpointTest, LoadMissingFileReturnsFalse) {
  SweepCheckpoint loaded;
  EXPECT_FALSE(SweepCheckpoint::Load(TempPath("absent.ck"), 1, loaded));
}

TEST(CheckpointTest, LoadRefusesFingerprintMismatch) {
  const std::string path = TempPath("stale.ck");
  const SweepCheckpoint original = MakeCheckpoint();
  original.Save(path);

  SweepCheckpoint loaded;
  try {
    SweepCheckpoint::Load(path, original.fingerprint + 1, loaded);
    FAIL() << "expected HarnessError";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kFatal);
  }
  util::RemoveFile(path);
}

TEST(CheckpointTest, CorruptInputIsFatal) {
  for (const std::string text :
       {std::string("not a checkpoint at all"), std::string(""),
        std::string("fadesched-checkpoint v99\nfingerprint "
                    "0000000000000000\npoints 0\nend\n"),
        MakeCheckpoint().Serialize().substr(0, 80)}) {
    try {
      SweepCheckpoint::Deserialize(text);
      FAIL() << "expected HarnessError for: " << text.substr(0, 40);
    } catch (const util::HarnessError& e) {
      EXPECT_EQ(e.kind(), util::ErrorKind::kFatal);
    }
  }
}

TEST(CheckpointTest, FingerprintIsSensitiveToEveryConfigKnob) {
  ExperimentConfig config;
  config.algorithms = {"ldp", "rle"};
  config.num_seeds = 5;
  config.trials = 1000;
  std::vector<double> xs = {100, 200};
  std::vector<ExperimentPoint> points(2);
  points[0].num_links = 100;
  points[1].num_links = 200;

  const std::uint64_t base = FingerprintSweep("sweep", xs, config, points);
  EXPECT_EQ(base, FingerprintSweep("sweep", xs, config, points));

  EXPECT_NE(base, FingerprintSweep("other", xs, config, points));

  auto tweaked = config;
  tweaked.trials = 2000;
  EXPECT_NE(base, FingerprintSweep("sweep", xs, tweaked, points));

  tweaked = config;
  tweaked.algorithms = {"rle", "ldp"};  // order matters
  EXPECT_NE(base, FingerprintSweep("sweep", xs, tweaked, points));

  tweaked = config;
  tweaked.num_seeds = 6;
  EXPECT_NE(base, FingerprintSweep("sweep", xs, tweaked, points));

  auto other_points = points;
  other_points[1].channel.alpha += 0.5;
  EXPECT_NE(base, FingerprintSweep("sweep", xs, config, other_points));
}

TEST(CheckpointTest, StatsRestoreContinuesWelfordExactly) {
  // Folding samples into restored moments must equal never having
  // serialized at all — this is what makes resume bit-identical.
  mathx::RunningStats live = AwkwardStats(3.7);
  mathx::RunningStats restored = mathx::RunningStats::FromRawMoments(
      live.Count(), live.RawMean(), live.RawM2(), live.Min(), live.Max());
  for (double x : {0.9, -2.4, 1.0 / 9.0}) {
    live.Add(x);
    restored.Add(x);
  }
  EXPECT_TRUE(BitIdentical(live, restored));
}

}  // namespace
}  // namespace fadesched::sim
