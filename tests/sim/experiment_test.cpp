#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace fadesched::sim {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.algorithms = {"ldp", "rle"};
  config.num_seeds = 3;
  config.trials = 200;
  return config;
}

TEST(ExperimentTest, ProducesOneSummaryPerAlgorithm) {
  util::ThreadPool pool(2);
  ExperimentPoint point;
  point.num_links = 50;
  const auto summaries = RunExperimentPoint(point, SmallConfig(), pool);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].algorithm, "ldp");
  EXPECT_EQ(summaries[1].algorithm, "rle");
}

TEST(ExperimentTest, EverySeedContributesOneSample) {
  util::ThreadPool pool(1);
  ExperimentPoint point;
  point.num_links = 40;
  const auto summaries = RunExperimentPoint(point, SmallConfig(), pool);
  for (const auto& s : summaries) {
    EXPECT_EQ(s.scheduled_links.Count(), 3u);
    EXPECT_EQ(s.measured_failed.Count(), 3u);
    EXPECT_EQ(s.runtime_ms.Count(), 3u);
  }
}

TEST(ExperimentTest, FadingResistantAlgorithmsNearZeroFailures) {
  util::ThreadPool pool(2);
  ExperimentPoint point;
  point.num_links = 150;
  const auto summaries = RunExperimentPoint(point, SmallConfig(), pool);
  for (const auto& s : summaries) {
    // Feasible ⇒ per-link failure ≤ ε = 1% ⇒ expected failures well under
    // 1 per slot for the handful of scheduled links.
    EXPECT_LT(s.expected_failed.Mean(), 0.5) << s.algorithm;
  }
}

TEST(ExperimentTest, DeterministicForBaseSeed) {
  util::ThreadPool pool(2);
  ExperimentPoint point;
  point.num_links = 60;
  const auto a = RunExperimentPoint(point, SmallConfig(), pool);
  const auto b = RunExperimentPoint(point, SmallConfig(), pool);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].scheduled_links.Mean(), b[i].scheduled_links.Mean());
    EXPECT_DOUBLE_EQ(a[i].measured_failed.Mean(), b[i].measured_failed.Mean());
  }
}

TEST(ExperimentTest, EmptyAlgorithmListRejected) {
  util::ThreadPool pool(1);
  ExperimentPoint point;
  ExperimentConfig config;
  config.algorithms = {};
  EXPECT_THROW(RunExperimentPoint(point, config, pool), util::CheckFailure);
}

TEST(ExperimentTest, UnknownAlgorithmRejected) {
  util::ThreadPool pool(1);
  ExperimentPoint point;
  ExperimentConfig config;
  config.algorithms = {"made_up"};
  EXPECT_THROW(RunExperimentPoint(point, config, pool), util::CheckFailure);
}

TEST(SummaryTableTest, HeaderShape) {
  const util::CsvTable table = MakeSummaryTable("num_links");
  EXPECT_EQ(table.Header()[0], "num_links");
  EXPECT_TRUE(table.HasColumn("algorithm"));
  EXPECT_TRUE(table.HasColumn("failed_mean"));
  EXPECT_TRUE(table.HasColumn("throughput_mean"));
  EXPECT_TRUE(table.HasColumn("expected_failed"));
}

TEST(SummaryTableTest, AppendRowsOnePerAlgorithm) {
  util::ThreadPool pool(2);
  ExperimentPoint point;
  point.num_links = 30;
  const auto summaries = RunExperimentPoint(point, SmallConfig(), pool);
  util::CsvTable table = MakeSummaryTable("x");
  AppendSummaryRows(table, 30.0, summaries);
  ASSERT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.Cell(0, "x"), "30");
  EXPECT_EQ(table.Cell(0, "algorithm"), "ldp");
  EXPECT_NO_THROW(table.CellAsDouble(0, "failed_mean"));
  EXPECT_NO_THROW(table.CellAsDouble(1, "throughput_mean"));
}

}  // namespace
}  // namespace fadesched::sim
