#include "sim/fading_models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mathx/ks_test.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/rle.hpp"
#include "sim/monte_carlo.hpp"
#include "util/check.hpp"

namespace fadesched::sim {
namespace {

constexpr int kSamples = 100000;

TEST(GammaSampleTest, MeanIsShapeTimesScale) {
  rng::Xoshiro256 gen(1);
  for (double shape : {0.5, 1.0, 2.5, 8.0}) {
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      sum += rng::GammaSample(gen, shape, 1.5);
    }
    EXPECT_NEAR(sum / kSamples, shape * 1.5, 0.05 * shape * 1.5)
        << "shape=" << shape;
  }
}

TEST(GammaSampleTest, VarianceIsShapeTimesScaleSquared) {
  rng::Xoshiro256 gen(2);
  const double shape = 3.0;
  const double scale = 0.7;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng::GammaSample(gen, shape, scale);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(var, shape * scale * scale, 0.1);
}

TEST(GammaSampleTest, ShapeOneIsExponential) {
  // Gamma(1, θ) == Exp(θ): compare survival at θ.
  rng::Xoshiro256 gen(3);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng::GammaSample(gen, 1.0, 2.0) > 2.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kSamples, std::exp(-1.0), 0.01);
}

TEST(DrawFadedPowerTest, AllModelsPreserveTheMean) {
  rng::Xoshiro256 gen(4);
  const double mean = 3.25;
  for (FadingOptions options :
       {FadingOptions{},
        FadingOptions{FadingModel::kNakagami, 4.0, 6.0},
        FadingOptions{FadingModel::kNakagami, 0.5, 6.0},
        FadingOptions{FadingModel::kShadowedRayleigh, 1.0, 8.0}}) {
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      sum += DrawFadedPower(gen, mean, options);
    }
    EXPECT_NEAR(sum / kSamples, mean, 0.1)
        << FadingModelName(options.model);
  }
}

TEST(DrawFadedPowerTest, HigherNakagamiMLessVariance) {
  rng::Xoshiro256 gen(5);
  auto variance = [&gen](double m) {
    FadingOptions options;
    options.model = FadingModel::kNakagami;
    options.nakagami_m = m;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      const double x = DrawFadedPower(gen, 1.0, options);
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / kSamples;
    return sum_sq / kSamples - mean * mean;
  };
  EXPECT_GT(variance(0.5), variance(1.0));
  EXPECT_GT(variance(1.0), variance(4.0));
}

TEST(DrawFadedPowerTest, InvalidOptionsRejected) {
  FadingOptions bad;
  bad.nakagami_m = 0.0;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
  bad = FadingOptions{};
  bad.shadowing_sigma_db = -1.0;
  EXPECT_THROW(bad.Validate(), util::CheckFailure);
}

TEST(DrawFadedPowerTest, NakagamiMeanIsExactAcrossShapes) {
  // All models are normalized to E[power] = mean; pin it per shape with a
  // standard-error-scaled tolerance instead of one shared loose bound.
  rng::Xoshiro256 gen(9);
  const double mean = 2.0;
  for (double m : {0.5, 1.0, 4.0}) {
    FadingOptions options;
    options.model = FadingModel::kNakagami;
    options.nakagami_m = m;
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      sum += DrawFadedPower(gen, mean, options);
    }
    // Var = mean²/m ⇒ SE = mean/√(m·n); allow 4 SE.
    const double se = mean / std::sqrt(m * kSamples);
    EXPECT_NEAR(sum / kSamples, mean, 4.0 * se) << "m=" << m;
  }
}

TEST(DrawFadedPowerTest, ShadowedRayleighMeanIsExactAcrossSigmas) {
  rng::Xoshiro256 gen(10);
  const double mean = 2.0;
  for (double sigma_db : {0.0, 6.0, 12.0}) {
    FadingOptions options;
    options.model = FadingModel::kShadowedRayleigh;
    options.shadowing_sigma_db = sigma_db;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      const double x = DrawFadedPower(gen, mean, options);
      sum += x;
      sum_sq += x * x;
    }
    const double sample_mean = sum / kSamples;
    const double sample_var =
        sum_sq / kSamples - sample_mean * sample_mean;
    const double se = std::sqrt(sample_var / kSamples);
    EXPECT_NEAR(sample_mean, mean, 5.0 * se + 1e-12)
        << "sigma_db=" << sigma_db;
  }
}

TEST(DrawFadedPowerTest, NakagamiOneIsExponentialByKsTest) {
  // Moment checks can't catch shape errors; KS against the full
  // exponential CDF can. Nakagami m = 1 must *be* Rayleigh power.
  rng::Xoshiro256 gen(11);
  FadingOptions options;
  options.model = FadingModel::kNakagami;
  options.nakagami_m = 1.0;
  const double mean = 1.7;
  std::vector<double> sample(20000);
  for (double& x : sample) x = DrawFadedPower(gen, mean, options);
  EXPECT_TRUE(mathx::KsTestPasses(
      sample, [mean](double x) { return 1.0 - std::exp(-x / mean); }));
}

TEST(DrawFadedPowerTest, RayleighPassesItsOwnKsTest) {
  rng::Xoshiro256 gen(12);
  const double mean = 0.8;
  std::vector<double> sample(20000);
  for (double& x : sample) x = DrawFadedPower(gen, mean, FadingOptions{});
  EXPECT_TRUE(mathx::KsTestPasses(
      sample, [mean](double x) { return 1.0 - std::exp(-x / mean); }));
}

TEST(DrawFadedPowerTest, SevereNakagamiIsNotExponential) {
  // Negative control: the KS machinery must reject a genuinely different
  // shape, otherwise the two tests above prove nothing.
  rng::Xoshiro256 gen(13);
  FadingOptions options;
  options.model = FadingModel::kNakagami;
  options.nakagami_m = 0.5;
  const double mean = 1.0;
  std::vector<double> sample(20000);
  for (double& x : sample) x = DrawFadedPower(gen, mean, options);
  EXPECT_FALSE(mathx::KsTestPasses(
      sample, [mean](double x) { return 1.0 - std::exp(-x / mean); }));
}

TEST(FadingRobustnessTest, NakagamiOneMatchesRayleighClosedForm) {
  rng::Xoshiro256 gen(6);
  net::UniformScenarioParams sp;
  sp.region_size = 150.0;
  const net::LinkSet links = net::MakeUniformScenario(10, sp, gen);
  channel::ChannelParams params;
  params.alpha = 3.0;
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); ++i) schedule.push_back(i);

  SimOptions rayleigh;
  rayleigh.trials = 40000;
  SimOptions nakagami1 = rayleigh;
  nakagami1.fading.model = FadingModel::kNakagami;
  nakagami1.fading.nakagami_m = 1.0;
  const SimResult a = SimulateSchedule(links, params, schedule, rayleigh);
  const SimResult b = SimulateSchedule(links, params, schedule, nakagami1);
  EXPECT_NEAR(a.failed_per_trial.Mean(), b.failed_per_trial.Mean(),
              5.0 * (a.failed_per_trial.StdError() +
                     b.failed_per_trial.StdError()) + 1e-9);
}

TEST(FadingRobustnessTest, MilderFadingHelpsFeasibleSchedules) {
  // A Rayleigh-feasible schedule has per-link success ≥ 1−ε; with milder
  // Nakagami fading (m = 4) the outage should not get worse.
  rng::Xoshiro256 gen(7);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  channel::ChannelParams params;
  params.alpha = 3.0;
  const net::Schedule schedule =
      sched::RleScheduler().Schedule(links, params).schedule;
  ASSERT_GE(schedule.size(), 2u);

  SimOptions rayleigh;
  rayleigh.trials = 30000;
  SimOptions mild = rayleigh;
  mild.fading.model = FadingModel::kNakagami;
  mild.fading.nakagami_m = 4.0;
  const SimResult r = SimulateSchedule(links, params, schedule, rayleigh);
  const SimResult n = SimulateSchedule(links, params, schedule, mild);
  EXPECT_LE(n.failed_per_trial.Mean(),
            r.failed_per_trial.Mean() +
                5.0 * r.failed_per_trial.StdError() + 1e-3);
}

TEST(FadingRobustnessTest, ShadowingIncreasesOutageOfTightSchedules) {
  // Log-normal shadowing fattens both tails; for a schedule engineered
  // right at the ε boundary the extra variability costs reliability.
  rng::Xoshiro256 gen(8);
  net::UniformScenarioParams sp;
  sp.region_size = 200.0;
  const net::LinkSet links = net::MakeUniformScenario(60, sp, gen);
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.05;
  // A deliberately dense hand-made schedule (every 4th link).
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); i += 4) schedule.push_back(i);

  SimOptions rayleigh;
  rayleigh.trials = 30000;
  SimOptions shadowed = rayleigh;
  shadowed.fading.model = FadingModel::kShadowedRayleigh;
  shadowed.fading.shadowing_sigma_db = 8.0;
  const SimResult r = SimulateSchedule(links, params, schedule, rayleigh);
  const SimResult s = SimulateSchedule(links, params, schedule, shadowed);
  EXPECT_GE(s.failed_per_trial.Mean(), r.failed_per_trial.Mean() * 0.8);
}

}  // namespace
}  // namespace fadesched::sim
