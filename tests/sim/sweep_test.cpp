#include "sim/sweep.hpp"

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <string>
#include <unistd.h>

#include "sim/checkpoint.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/signal_guard.hpp"

namespace fadesched::sim {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "fadesched_sweep_" + name;
}

// A deliberately tiny sweep so the whole suite stays fast: 2 points ×
// 2 algorithms × 2 seeds × 80 fading trials.
SweepSpec TinySpec() {
  SweepSpec spec;
  spec.name = "sweep_test_tiny";
  spec.x_name = "num_links";
  spec.xs = {30, 45};
  spec.make_point = [](double x) {
    ExperimentPoint point;
    point.num_links = static_cast<std::size_t>(x);
    point.channel.alpha = 3.0;
    point.scenario.region_size = 200.0;
    return point;
  };
  return spec;
}

SweepOptions TinyOptions() {
  SweepOptions options;
  options.config.algorithms = {"ldp", "rle"};
  options.config.num_seeds = 2;
  options.config.trials = 80;
  options.config.threads = 2;
  options.deterministic = true;  // byte-identical tables across runs
  return options;
}

std::string BaselineTable() {
  // Computed once; every resume scenario must reproduce it byte for byte.
  static const std::string baseline =
      RunExperimentSweep(TinySpec(), TinyOptions()).table.ToString();
  return baseline;
}

TEST(SweepTest, UninterruptedRunProducesFullTable) {
  const SweepResult result = RunExperimentSweep(TinySpec(), TinyOptions());
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.ExitCode(), util::kExitOk);
  EXPECT_EQ(result.points_total, 2u);
  EXPECT_EQ(result.points_completed, 2u);
  EXPECT_EQ(result.points_resumed, 0u);
  EXPECT_EQ(result.failed_seeds, 0u);
  // points × algorithms data rows
  EXPECT_EQ(result.table.NumRows(), 4u);
  EXPECT_EQ(result.table.ToString(), BaselineTable());
}

TEST(SweepTest, DeterministicRunsAreByteIdentical) {
  const SweepResult again = RunExperimentSweep(TinySpec(), TinyOptions());
  EXPECT_EQ(again.table.ToString(), BaselineTable());
}

// The golden kill-and-resume drill: fork, let the child SIGKILL itself
// right after the first point's checkpoint lands, then resume in the
// parent and demand a byte-identical final table. fork() is safe here
// because RunExperimentSweep creates (and joins) its thread pool
// internally — no threads are alive in this process at fork time.
TEST(SweepTest, KillAndResumeReproducesBaselineByteForByte) {
  const std::string ck_path = TempPath("kill_resume.ck");
  const std::string out_path = TempPath("kill_resume.csv");
  util::RemoveFile(ck_path);
  util::RemoveFile(out_path);
  const std::string baseline = BaselineTable();

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: crash as soon as point 0 is checkpointed as complete.
    SweepOptions options = TinyOptions();
    options.checkpoint_path = ck_path;
    options.after_checkpoint = [](std::size_t point, std::size_t,
                                  bool complete) {
      if (complete && point == 0) std::raise(SIGKILL);
    };
    RunExperimentSweep(TinySpec(), options);
    _exit(7);  // not reached if the drill worked
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  ASSERT_TRUE(util::FileExists(ck_path)) << "no checkpoint left behind";

  SweepOptions options = TinyOptions();
  options.checkpoint_path = ck_path;
  options.resume = true;
  options.out_path = out_path;
  const SweepResult resumed = RunExperimentSweep(TinySpec(), options);

  EXPECT_EQ(resumed.points_resumed, 1u);
  EXPECT_EQ(resumed.seeds_resumed, 2u);
  EXPECT_EQ(resumed.points_completed, 2u);
  EXPECT_EQ(resumed.table.ToString(), baseline);
  // The atomic CSV on disk matches too, and the checkpoint is cleaned up.
  EXPECT_EQ(util::ReadFileToString(out_path), baseline);
  EXPECT_FALSE(util::FileExists(ck_path));
  util::RemoveFile(out_path);
}

TEST(SweepTest, ResumingACompleteCheckpointRunsNothing) {
  const std::string ck_path = TempPath("complete.ck");
  util::RemoveFile(ck_path);

  SweepOptions options = TinyOptions();
  options.checkpoint_path = ck_path;
  options.keep_checkpoint = true;
  RunExperimentSweep(TinySpec(), options);
  ASSERT_TRUE(util::FileExists(ck_path));

  options.resume = true;
  const SweepResult resumed = RunExperimentSweep(TinySpec(), options);
  EXPECT_EQ(resumed.points_resumed, 2u);
  EXPECT_EQ(resumed.seeds_resumed, 4u);
  EXPECT_EQ(resumed.table.ToString(), BaselineTable());
  util::RemoveFile(ck_path);
}

TEST(SweepTest, ChangedConfigRefusesStaleCheckpoint) {
  const std::string ck_path = TempPath("stale.ck");
  util::RemoveFile(ck_path);

  SweepOptions options = TinyOptions();
  options.checkpoint_path = ck_path;
  options.keep_checkpoint = true;
  RunExperimentSweep(TinySpec(), options);
  ASSERT_TRUE(util::FileExists(ck_path));

  SweepOptions changed = options;
  changed.resume = true;
  changed.config.trials = 81;  // any config drift must refuse to resume
  try {
    RunExperimentSweep(TinySpec(), changed);
    FAIL() << "expected HarnessError";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kFatal);
  }
  util::RemoveFile(ck_path);
}

TEST(SweepTest, WatchdogDegradesSeedsInsteadOfAborting) {
  SweepOptions options = TinyOptions();
  options.retry.seed_deadline_seconds = 1e-9;  // every seed times out
  const SweepResult result = RunExperimentSweep(TinySpec(), options);
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.ExitCode(), util::kExitOk);
  EXPECT_EQ(result.failed_seeds, 4u);
  EXPECT_EQ(result.timed_out_seeds, 4u);
  EXPECT_EQ(result.points_completed, 2u);  // complete, just degraded
  EXPECT_EQ(result.table.NumRows(), 4u);
}

TEST(SweepTest, UnknownAlgorithmIsFatal) {
  SweepOptions options = TinyOptions();
  options.config.algorithms = {"no_such_scheduler"};
  EXPECT_THROW(RunExperimentSweep(TinySpec(), options), util::CheckFailure);
}

TEST(SweepTest, ShutdownRequestCheckpointsFlushesAndReportsInterrupted) {
  const std::string ck_path = TempPath("interrupt.ck");
  const std::string out_path = TempPath("interrupt.csv");
  util::RemoveFile(ck_path);
  util::RemoveFile(out_path);

  SweepOptions options = TinyOptions();
  options.checkpoint_path = ck_path;
  options.out_path = out_path;
  // Simulate Ctrl-C landing right after the first seed is checkpointed.
  options.after_checkpoint = [](std::size_t, std::size_t, bool) {
    util::RequestShutdown();
  };
  const SweepResult result = RunExperimentSweep(TinySpec(), options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.ExitCode(), util::kExitInterrupted);
  EXPECT_LT(result.points_completed, result.points_total);
  EXPECT_TRUE(util::FileExists(ck_path)) << "interrupt must checkpoint";
  EXPECT_TRUE(util::FileExists(out_path)) << "interrupt must flush CSV";
  util::ClearShutdownRequest();

  // The interrupted run's checkpoint resumes to the exact baseline.
  SweepOptions resume_options = TinyOptions();
  resume_options.checkpoint_path = ck_path;
  resume_options.out_path = out_path;
  resume_options.resume = true;
  const SweepResult resumed =
      RunExperimentSweep(TinySpec(), resume_options);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_GT(resumed.seeds_resumed, 0u);
  EXPECT_EQ(resumed.table.ToString(), BaselineTable());
  EXPECT_EQ(util::ReadFileToString(out_path), BaselineTable());
  EXPECT_FALSE(util::FileExists(ck_path));
  util::RemoveFile(out_path);
}

}  // namespace
}  // namespace fadesched::sim
