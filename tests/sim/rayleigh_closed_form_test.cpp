// Monte-Carlo cross-check of Theorem 3.1: the empirical Rayleigh success
// frequency of each scheduled link must sit within a 3σ binomial bound of
// the closed-form product Pr(X_j ≥ γ_th) = exp(−Σ f_ij). This ties the
// simulator's fading draws, the interference engine's mean-power table,
// and the analytical formula together end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/greedy.hpp"
#include "sim/monte_carlo.hpp"

namespace fadesched::sim {
namespace {

void CheckScheduleAgainstClosedForm(const net::LinkSet& links,
                                    const channel::ChannelParams& params,
                                    const net::Schedule& schedule,
                                    std::uint64_t sim_seed) {
  ASSERT_FALSE(schedule.empty());
  SimOptions options;
  options.trials = 6000;
  options.seed = sim_seed;
  const SimResult result = SimulateSchedule(links, params, schedule, options);

  const channel::InterferenceCalculator calc(links, params);
  const double trials = static_cast<double>(options.trials);
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    const double p =
        channel::SuccessProbability(calc, schedule, schedule[k]);
    // 3σ binomial bound with a tiny floor so p ≈ 1 keeps a usable margin.
    const double sigma = std::sqrt(p * (1.0 - p) / trials);
    EXPECT_NEAR(result.link_success_rate[k], p, 3.0 * sigma + 2e-3)
        << "link " << schedule[k] << " (position " << k << ")";
  }
}

TEST(RayleighClosedFormTest, GreedyScheduleMatchesTheorem31) {
  rng::Xoshiro256 gen(31);
  const net::LinkSet links = net::MakeUniformScenario(40, {}, gen);
  channel::ChannelParams params;  // paper defaults: α=3, γ_th=1, ε=0.01
  const net::Schedule schedule =
      sched::FadingGreedyScheduler().Schedule(links, params).schedule;
  CheckScheduleAgainstClosedForm(links, params, schedule, 777);
}

TEST(RayleighClosedFormTest, DenseScheduleWithRealOutageMatches) {
  // A deliberately over-packed schedule (every fourth link, no feasibility
  // filter) so success probabilities sit well below 1 and the binomial
  // bound is exercised away from the boundary.
  rng::Xoshiro256 gen(32);
  const net::LinkSet links = net::MakeUniformScenario(60, {}, gen);
  channel::ChannelParams params;
  params.gamma_th = 0.5;
  net::Schedule schedule;
  for (net::LinkId id = 0; id < links.Size(); id += 4) {
    schedule.push_back(id);
  }
  CheckScheduleAgainstClosedForm(links, params, schedule, 778);
}

TEST(RayleighClosedFormTest, HighAlphaChannelMatches) {
  rng::Xoshiro256 gen(33);
  const net::LinkSet links = net::MakeUniformScenario(50, {}, gen);
  channel::ChannelParams params;
  params.alpha = 4.0;
  params.gamma_th = 2.0;
  net::Schedule schedule;
  for (net::LinkId id = 0; id < links.Size(); id += 5) {
    schedule.push_back(id);
  }
  CheckScheduleAgainstClosedForm(links, params, schedule, 779);
}

}  // namespace
}  // namespace fadesched::sim
