#include "sim/queue_sim.hpp"

#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sched/rle.hpp"
#include "util/check.hpp"

namespace fadesched::sim {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

TEST(QueueSimTest, EmptyLinkSetIsTrivial) {
  const sched::RleScheduler rle;
  const QueueSimResult result =
      RunQueueSimulation(net::LinkSet{}, PaperParams(), rle, {});
  EXPECT_EQ(result.arrivals, 0u);
  EXPECT_EQ(result.delivered, 0u);
}

TEST(QueueSimTest, ZeroArrivalsNothingHappens) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(50, {}, gen);
  QueueSimOptions options;
  options.arrival_probability = 0.0;
  options.num_slots = 200;
  const sched::RleScheduler rle;
  const QueueSimResult result =
      RunQueueSimulation(links, PaperParams(), rle, options);
  EXPECT_EQ(result.arrivals, 0u);
  EXPECT_EQ(result.scheduled_transmissions, 0u);
  EXPECT_DOUBLE_EQ(result.backlog.Mean(), 0.0);
}

TEST(QueueSimTest, ConservationOfPackets) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  QueueSimOptions options;
  options.num_slots = 400;
  options.arrival_probability = 0.02;
  const sched::RleScheduler rle;
  const QueueSimResult result =
      RunQueueSimulation(links, PaperParams(), rle, options);
  EXPECT_EQ(result.arrivals, result.delivered + result.residual_backlog);
}

TEST(QueueSimTest, DeterministicForSeed) {
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(60, {}, gen);
  QueueSimOptions options;
  options.num_slots = 300;
  const sched::RleScheduler rle;
  const QueueSimResult a =
      RunQueueSimulation(links, PaperParams(), rle, options);
  const QueueSimResult b =
      RunQueueSimulation(links, PaperParams(), rle, options);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.backlog.Mean(), b.backlog.Mean());
  EXPECT_DOUBLE_EQ(a.delay_slots.Mean(), b.delay_slots.Mean());
}

TEST(QueueSimTest, FadingResistantSchedulerRarelyFails) {
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  QueueSimOptions options;
  options.num_slots = 500;
  options.arrival_probability = 0.01;
  const sched::RleScheduler rle;
  const QueueSimResult result =
      RunQueueSimulation(links, PaperParams(), rle, options);
  ASSERT_GT(result.scheduled_transmissions, 0u);
  EXPECT_LT(result.FailureRate(), 0.02);  // per-transmission failure ≤~ε
}

TEST(QueueSimTest, BaselineFailsMoreOftenThanRle) {
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  QueueSimOptions options;
  options.num_slots = 400;
  options.arrival_probability = 0.05;
  const auto rle = sched::MakeScheduler("rle");
  const auto baseline = sched::MakeScheduler("approx_diversity");
  const QueueSimResult r_rle =
      RunQueueSimulation(links, PaperParams(), *rle, options);
  const QueueSimResult r_base =
      RunQueueSimulation(links, PaperParams(), *baseline, options);
  EXPECT_GT(r_base.FailureRate(), 3.0 * std::max(r_rle.FailureRate(), 1e-4));
}

TEST(QueueSimTest, HigherLoadMeansLongerQueues) {
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const sched::RleScheduler rle;
  QueueSimOptions light;
  light.num_slots = 400;
  light.arrival_probability = 0.005;
  QueueSimOptions heavy = light;
  heavy.arrival_probability = 0.08;
  const QueueSimResult r_light =
      RunQueueSimulation(links, PaperParams(), rle, light);
  const QueueSimResult r_heavy =
      RunQueueSimulation(links, PaperParams(), rle, heavy);
  EXPECT_GT(r_heavy.backlog.Mean(), r_light.backlog.Mean());
}

TEST(QueueSimTest, BetterSchedulerGivesShorterDelay) {
  // fading_greedy schedules ~3x the links per slot vs LDP; under the same
  // load its queues must drain faster.
  rng::Xoshiro256 gen(7);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  QueueSimOptions options;
  options.num_slots = 500;
  options.arrival_probability = 0.03;
  const auto greedy = sched::MakeScheduler("fading_greedy");
  const auto ldp = sched::MakeScheduler("ldp");
  const QueueSimResult r_greedy =
      RunQueueSimulation(links, PaperParams(), *greedy, options);
  const QueueSimResult r_ldp =
      RunQueueSimulation(links, PaperParams(), *ldp, options);
  EXPECT_LT(r_greedy.backlog.Mean(), r_ldp.backlog.Mean());
}

TEST(QueueSimTest, InvalidOptionsRejected) {
  rng::Xoshiro256 gen(8);
  const net::LinkSet links = net::MakeUniformScenario(10, {}, gen);
  const sched::RleScheduler rle;
  QueueSimOptions bad;
  bad.arrival_probability = 1.5;
  EXPECT_THROW(RunQueueSimulation(links, PaperParams(), rle, bad),
               util::CheckFailure);
  bad = QueueSimOptions{};
  bad.warmup_slots = bad.num_slots;
  EXPECT_THROW(RunQueueSimulation(links, PaperParams(), rle, bad),
               util::CheckFailure);
}

TEST(QueueSimTest, DelayAtLeastZeroAndBoundedBySimLength) {
  rng::Xoshiro256 gen(9);
  const net::LinkSet links = net::MakeUniformScenario(80, {}, gen);
  QueueSimOptions options;
  options.num_slots = 300;
  const sched::RleScheduler rle;
  const QueueSimResult result =
      RunQueueSimulation(links, PaperParams(), rle, options);
  if (result.delay_slots.Count() > 0) {
    EXPECT_GE(result.delay_slots.Min(), 0.0);
    EXPECT_LT(result.delay_slots.Max(),
              static_cast<double>(options.num_slots));
  }
}

}  // namespace
}  // namespace fadesched::sim
