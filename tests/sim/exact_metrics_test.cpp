#include "sim/exact_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/rle.hpp"

namespace fadesched::sim {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

net::LinkSet TwoLinkLine(double gap) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{gap, 0}, {gap + 1, 0}, 2.0});
  return links;
}

TEST(ExactMetricsTest, EmptySchedule) {
  const net::LinkSet links = TwoLinkLine(10.0);
  const ExpectedMetrics m = ComputeExpectedMetrics(links, PaperParams(), {});
  EXPECT_DOUBLE_EQ(m.expected_failed, 0.0);
  EXPECT_DOUBLE_EQ(m.expected_throughput, 0.0);
  EXPECT_TRUE(m.link_success_probability.empty());
}

TEST(ExactMetricsTest, LoneLinkIsCertain) {
  const net::LinkSet links = TwoLinkLine(10.0);
  const ExpectedMetrics m = ComputeExpectedMetrics(links, PaperParams(), {1});
  ASSERT_EQ(m.link_success_probability.size(), 1u);
  EXPECT_DOUBLE_EQ(m.link_success_probability[0], 1.0);
  EXPECT_DOUBLE_EQ(m.expected_failed, 0.0);
  EXPECT_DOUBLE_EQ(m.expected_throughput, 2.0);
}

TEST(ExactMetricsTest, TwoLinkClosedForm) {
  const double gap = 6.0;
  const net::LinkSet links = TwoLinkLine(gap);
  const auto params = PaperParams();
  const net::Schedule schedule{0, 1};
  const ExpectedMetrics m = ComputeExpectedMetrics(links, params, schedule);
  const double p0 = 1.0 / (1.0 + std::pow(1.0 / (gap - 1.0), 3.0));
  const double p1 = 1.0 / (1.0 + std::pow(1.0 / (gap + 1.0), 3.0));
  EXPECT_NEAR(m.link_success_probability[0], p0, 1e-12);
  EXPECT_NEAR(m.link_success_probability[1], p1, 1e-12);
  EXPECT_NEAR(m.expected_failed, (1.0 - p0) + (1.0 - p1), 1e-12);
  EXPECT_NEAR(m.expected_throughput, 1.0 * p0 + 2.0 * p1, 1e-12);
}

TEST(ExactMetricsTest, ThroughputBoundedByClaimedRate) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeWeightedScenario(30, {}, gen);
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); i += 3) schedule.push_back(i);
  const ExpectedMetrics m =
      ComputeExpectedMetrics(links, PaperParams(), schedule);
  EXPECT_LE(m.expected_throughput, links.TotalRate(schedule) + 1e-12);
  EXPECT_GE(m.expected_throughput, 0.0);
}

TEST(ExactMetricsTest, FeasibleScheduleHasExpectedFailureBelowEpsilonEach) {
  // Corollary 3.1: informed ⇒ per-link failure ≤ ε, so E[#failed] ≤ ε·m.
  // RLE's output is feasible by Theorem 4.3, so it supplies the schedule.
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const auto params = PaperParams();
  const channel::InterferenceCalculator calc(links, params);
  const net::Schedule schedule =
      sched::RleScheduler().Schedule(links, params).schedule;
  ASSERT_TRUE(channel::ScheduleIsFeasible(calc, schedule));
  ASSERT_GE(schedule.size(), 2u);
  const ExpectedMetrics m = ComputeExpectedMetrics(links, params, schedule);
  EXPECT_LE(m.expected_failed,
            params.epsilon * static_cast<double>(schedule.size()) + 1e-9);
}

TEST(ExactMetricsTest, AddingInterfererNeverHelps) {
  // Monotonicity: success probabilities only drop when the schedule grows.
  rng::Xoshiro256 gen(3);
  net::UniformScenarioParams sp;
  sp.region_size = 150.0;
  const net::LinkSet links = net::MakeUniformScenario(10, sp, gen);
  const auto params = PaperParams();
  net::Schedule small{0, 1, 2};
  net::Schedule big{0, 1, 2, 3, 4};
  const ExpectedMetrics ms = ComputeExpectedMetrics(links, params, small);
  const ExpectedMetrics mb = ComputeExpectedMetrics(links, params, big);
  for (std::size_t k = 0; k < small.size(); ++k) {
    EXPECT_LE(mb.link_success_probability[k],
              ms.link_success_probability[k] + 1e-12);
  }
}

}  // namespace
}  // namespace fadesched::sim
