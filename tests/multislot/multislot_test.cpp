#include "multislot/multislot.hpp"

#include <gtest/gtest.h>

#include <set>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/rle.hpp"
#include "util/check.hpp"

namespace fadesched::multislot {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.01;
  return params;
}

TEST(MultiSlotTest, EmptyLinkSetYieldsEmptyFrame) {
  const Frame frame =
      ScheduleAllLinks(net::LinkSet{}, PaperParams(), "rle");
  EXPECT_EQ(frame.NumSlots(), 0u);
  EXPECT_EQ(frame.algorithm, "rle");
}

TEST(MultiSlotTest, SingleLinkOneSlot) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {5, 0}, 1.0});
  const Frame frame = ScheduleAllLinks(links, PaperParams(), "rle");
  ASSERT_EQ(frame.NumSlots(), 1u);
  EXPECT_EQ(frame.slots[0], net::Schedule{0});
}

TEST(MultiSlotTest, EveryLinkScheduledExactlyOnce) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const Frame frame = ScheduleAllLinks(links, PaperParams(), "rle");
  std::set<net::LinkId> seen;
  for (const auto& slot : frame.slots) {
    for (net::LinkId id : slot) {
      EXPECT_TRUE(seen.insert(id).second) << "link scheduled twice: " << id;
    }
  }
  EXPECT_EQ(seen.size(), links.Size());
}

class MultiSlotFeasibilityTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(MultiSlotFeasibilityTest, AllSlotsFeasibleAndFrameValid) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const auto params = PaperParams();
  const Frame frame = ScheduleAllLinks(links, params, GetParam());
  EXPECT_TRUE(FrameIsValid(links, params, frame)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(FadingResistantSchedulers, MultiSlotFeasibilityTest,
                         ::testing::Values("ldp", "rle", "fading_greedy",
                                           "dls"));

TEST(MultiSlotTest, BaselineFrameFlaggedInvalidUnderFading) {
  // Deterministic-SINR slots violate Corollary 3.1 on dense instances, and
  // FrameIsValid must say so.
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(400, {}, gen);
  const auto params = PaperParams();
  const Frame frame = ScheduleAllLinks(links, params, "approx_diversity");
  EXPECT_FALSE(FrameIsValid(links, params, frame));
}

TEST(MultiSlotTest, FewerSlotsThanLinks) {
  // Any scheduler that packs more than one link per slot on average beats
  // the trivial one-link-per-slot frame.
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const Frame frame = ScheduleAllLinks(links, PaperParams(), "rle");
  EXPECT_LT(frame.NumSlots(), links.Size());
  EXPECT_GT(frame.NumSlots(), 1u);
}

TEST(MultiSlotTest, GreedyNeedsFewerSlotsThanLdp) {
  // Empirical anchor mirroring the one-shot throughput ordering.
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const auto params = PaperParams();
  const Frame greedy = ScheduleAllLinks(links, params, "fading_greedy");
  const Frame ldp = ScheduleAllLinks(links, params, "ldp");
  EXPECT_LT(greedy.NumSlots(), ldp.NumSlots());
}

TEST(MultiSlotTest, RateWeightedCompletionBasics) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  links.Add(net::Link{{100, 0}, {101, 0}, 3.0});
  Frame frame;
  frame.slots = {{0}, {1}};
  // Completion: link 0 at slot 1 (rate 1), link 1 at slot 2 (rate 3):
  // (1·1 + 3·2)/4 = 1.75.
  EXPECT_DOUBLE_EQ(frame.RateWeightedCompletion(links), 1.75);
}

TEST(MultiSlotTest, CompletionOfEmptyFrameIsZero) {
  net::LinkSet links;
  links.Add(net::Link{{0, 0}, {1, 0}, 1.0});
  const Frame frame;
  EXPECT_DOUBLE_EQ(frame.RateWeightedCompletion(links), 0.0);
}

TEST(MultiSlotTest, MaxSlotsGuardThrows) {
  rng::Xoshiro256 gen(6);
  const net::LinkSet links = net::MakeUniformScenario(50, {}, gen);
  MultiSlotOptions options;
  options.max_slots = 2;  // cannot possibly drain 50 links in 2 slots here
  EXPECT_THROW(ScheduleAllLinks(links, PaperParams(), "ldp", options),
               util::CheckFailure);
}

TEST(MultiSlotTest, DeterministicPerSchedulerAndInstance) {
  rng::Xoshiro256 gen(7);
  const net::LinkSet links = net::MakeUniformScenario(100, {}, gen);
  const auto params = PaperParams();
  const Frame a = ScheduleAllLinks(links, params, "rle");
  const Frame b = ScheduleAllLinks(links, params, "rle");
  ASSERT_EQ(a.NumSlots(), b.NumSlots());
  for (std::size_t s = 0; s < a.NumSlots(); ++s) {
    EXPECT_EQ(a.slots[s], b.slots[s]);
  }
}

TEST(MultiSlotTest, ExternallyConstructedSchedulerOverload) {
  rng::Xoshiro256 gen(8);
  const net::LinkSet links = net::MakeUniformScenario(60, {}, gen);
  sched::RleOptions options;
  options.c2 = 0.2;
  const sched::RleScheduler rle(options);
  const Frame frame = ScheduleAllLinks(links, PaperParams(), rle);
  EXPECT_TRUE(FrameIsValid(links, PaperParams(), frame));
}

}  // namespace
}  // namespace fadesched::multislot
