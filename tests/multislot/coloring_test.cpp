#include "multislot/coloring.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"

namespace fadesched::multislot {
namespace {

channel::ChannelParams PaperParams() {
  channel::ChannelParams params;
  params.alpha = 3.0;
  return params;
}

TEST(ColoringTest, EmptyLinkSet) {
  const Frame frame = ColorConflictGraph(net::LinkSet{}, PaperParams());
  EXPECT_EQ(frame.NumSlots(), 0u);
  EXPECT_EQ(frame.algorithm, "graph_coloring");
}

TEST(ColoringTest, IsolatedLinksShareOneSlot) {
  net::LinkSet links;
  for (int i = 0; i < 8; ++i) {
    const double x = 5000.0 * i;
    links.Add(net::Link{{x, 0}, {x + 1, 0}, 1.0});
  }
  const Frame frame = ColorConflictGraph(links, PaperParams());
  ASSERT_EQ(frame.NumSlots(), 1u);
  EXPECT_EQ(frame.slots[0].size(), 8u);
}

TEST(ColoringTest, CliqueNeedsOneSlotEach) {
  // Stacked links all conflict pairwise: slots == links.
  net::LinkSet links;
  for (int i = 0; i < 5; ++i) {
    links.Add(net::Link{{0, 0.1 * i}, {5, 0.1 * i}, 1.0});
  }
  const Frame frame = ColorConflictGraph(links, PaperParams());
  EXPECT_EQ(frame.NumSlots(), 5u);
}

TEST(ColoringTest, EveryLinkExactlyOnce) {
  rng::Xoshiro256 gen(1);
  const net::LinkSet links = net::MakeUniformScenario(250, {}, gen);
  const Frame frame = ColorConflictGraph(links, PaperParams());
  std::set<net::LinkId> seen;
  for (const auto& slot : frame.slots) {
    for (net::LinkId id : slot) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), links.Size());
}

TEST(ColoringTest, SlotsAreIndependentSets) {
  rng::Xoshiro256 gen(2);
  const net::LinkSet links = net::MakeUniformScenario(200, {}, gen);
  const channel::GraphModelParams graph_params;
  const Frame frame =
      ColorConflictGraph(links, PaperParams(), graph_params);
  const channel::GraphInterference graph(links, graph_params);
  for (const auto& slot : frame.slots) {
    EXPECT_TRUE(graph.ScheduleIsIndependent(slot));
  }
}

TEST(ColoringTest, ColorCountBoundedByMaxDegreePlusOne) {
  rng::Xoshiro256 gen(3);
  const net::LinkSet links = net::MakeUniformScenario(150, {}, gen);
  const channel::GraphModelParams graph_params;
  const channel::GraphInterference graph(links, graph_params);
  std::size_t max_degree = 0;
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    max_degree = std::max(max_degree, graph.Degree(i));
  }
  const Frame frame =
      ColorConflictGraph(links, PaperParams(), graph_params);
  EXPECT_LE(frame.NumSlots(), max_degree + 1);
}

TEST(ColoringTest, ShorterFrameThanFadingResistantButNotFeasible) {
  // The whole point of the comparison: graph colouring drains in far
  // fewer slots, but its slots violate the fading criterion.
  rng::Xoshiro256 gen(4);
  const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
  const auto params = PaperParams();
  const Frame colored = ColorConflictGraph(links, params);
  const Frame rle = ScheduleAllLinks(links, params, "rle");
  EXPECT_LT(colored.NumSlots(), rle.NumSlots());
  EXPECT_FALSE(FrameIsValid(links, params, colored));
  EXPECT_TRUE(FrameIsValid(links, params, rle));
}

TEST(ColoringTest, SlotsSortedBySizeDescending) {
  rng::Xoshiro256 gen(5);
  const net::LinkSet links = net::MakeUniformScenario(120, {}, gen);
  const Frame frame = ColorConflictGraph(links, PaperParams());
  for (std::size_t s = 1; s < frame.NumSlots(); ++s) {
    EXPECT_GE(frame.slots[s - 1].size(), frame.slots[s].size());
  }
}

}  // namespace
}  // namespace fadesched::multislot
