// Multislot invariants under the Corollary 3.1 oracle, on seeded fuzz
// instances: frames built from fading-resistant one-shot schedulers must
// be per-slot feasible, FrameIsValid must agree with a from-scratch
// oracle re-check, and colouring frames must keep their structural
// (partition) invariants even where per-slot feasibility is not promised.
#include <set>

#include <gtest/gtest.h>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "multislot/coloring.hpp"
#include "multislot/multislot.hpp"
#include "testing/fuzzer.hpp"

namespace fadesched::multislot {
namespace {

using testing::ScenarioCase;
using testing::ScenarioFuzzer;

// Oracle re-check, independent of FrameIsValid's implementation: every
// slot member informed, every link in exactly one slot.
void ExpectFrameFeasible(const net::LinkSet& links,
                         const channel::ChannelParams& params,
                         const Frame& frame, const char* label) {
  const channel::InterferenceCalculator calc(links, params);
  std::set<net::LinkId> seen;
  for (std::size_t s = 0; s < frame.slots.size(); ++s) {
    for (const channel::LinkFeasibility& lf :
         channel::AnalyzeSchedule(calc, frame.slots[s])) {
      EXPECT_TRUE(lf.informed)
          << label << ": slot " << s << " link " << lf.link << " not informed";
    }
    for (net::LinkId id : frame.slots[s]) {
      EXPECT_TRUE(seen.insert(id).second)
          << label << ": link " << id << " scheduled twice";
    }
  }
  EXPECT_EQ(seen.size(), links.Size()) << label << ": frame is not a cover";
}

void ExpectPartition(const net::LinkSet& links, const Frame& frame,
                     const char* label) {
  std::set<net::LinkId> seen;
  for (const net::Schedule& slot : frame.slots) {
    EXPECT_FALSE(slot.empty()) << label << ": empty slot";
    for (net::LinkId id : slot) {
      ASSERT_LT(id, links.Size()) << label;
      EXPECT_TRUE(seen.insert(id).second) << label << ": duplicate " << id;
    }
  }
  EXPECT_EQ(seen.size(), links.Size()) << label;
}

TEST(FrameOracleTest, FadingResistantFramesPassPerSlotOracle) {
  const ScenarioFuzzer fuzzer(31);
  for (std::uint64_t index = 0; index < 12; ++index) {
    const ScenarioCase scenario = fuzzer.Case(index);
    for (const char* name : {"ldp", "rle", "fading_greedy"}) {
      const Frame frame =
          ScheduleAllLinks(scenario.links, scenario.params, name);
      ExpectFrameFeasible(scenario.links, scenario.params, frame, name);
      EXPECT_TRUE(FrameIsValid(scenario.links, scenario.params, frame))
          << name << " case " << index;
    }
  }
}

TEST(FrameOracleTest, FrameIsValidAgreesWithOracleOnColoringFrames) {
  // Colouring frames are *not* promised feasible; what must hold is that
  // FrameIsValid's verdict equals the independent oracle re-check.
  const ScenarioFuzzer fuzzer(32);
  std::size_t infeasible_seen = 0;
  for (std::uint64_t index = 0; index < 20; ++index) {
    const ScenarioCase scenario = fuzzer.Case(index);
    const Frame frame = ColorConflictGraph(scenario.links, scenario.params);
    ExpectPartition(scenario.links, frame, "coloring");

    const channel::InterferenceCalculator calc(scenario.links,
                                               scenario.params);
    bool oracle_feasible = true;
    for (const net::Schedule& slot : frame.slots) {
      for (const channel::LinkFeasibility& lf :
           channel::AnalyzeSchedule(calc, slot)) {
        oracle_feasible = oracle_feasible && lf.informed;
      }
    }
    EXPECT_EQ(FrameIsValid(scenario.links, scenario.params, frame),
              oracle_feasible)
        << "case " << index;
    if (!oracle_feasible) ++infeasible_seen;
  }
  // The fuzzed set must actually exercise the interesting side: conflict
  // graphs ignoring accumulated interference do fail the fading oracle.
  EXPECT_GT(infeasible_seen, 0u);
}

TEST(FrameOracleTest, FrameDeterminismAcrossRebuilds) {
  const ScenarioCase scenario = ScenarioFuzzer(33).Case(4);
  for (const char* name : {"ldp", "rle"}) {
    const Frame a = ScheduleAllLinks(scenario.links, scenario.params, name);
    const Frame b = ScheduleAllLinks(scenario.links, scenario.params, name);
    ASSERT_EQ(a.slots.size(), b.slots.size()) << name;
    for (std::size_t s = 0; s < a.slots.size(); ++s) {
      EXPECT_EQ(a.slots[s], b.slots[s]) << name << " slot " << s;
    }
  }
}

}  // namespace
}  // namespace fadesched::multislot
