#include "rng/xoshiro256.hpp"

#include <gtest/gtest.h>

#include <set>

#include "rng/splitmix64.hpp"

namespace fadesched::rng {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(SplitMix64Test, KnownReferenceValue) {
  // Reference: first output of splitmix64 with seed 0 is the finalizer
  // applied to 0x9e3779b97f4a7c15.
  SplitMix64 gen(0);
  EXPECT_EQ(gen.Next(), 0xe220a8397b1dcdafULL);
}

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Xoshiro256Test, StateIsSeededNonTrivially) {
  Xoshiro256 gen(0);
  const auto state = gen.State();
  // xoshiro with an all-zero state would be stuck; SplitMix expansion must
  // make every word non-zero with overwhelming probability.
  int nonzero = 0;
  for (auto word : state) {
    if (word != 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 4);
}

TEST(Xoshiro256Test, JumpChangesSequence) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.Jump();
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Xoshiro256Test, JumpedStreamsDoNotCollideShortTerm) {
  // Draw 10k values from each of 8 jumped streams; all 80k should be
  // distinct (a collision would be a 64-bit birthday miracle).
  Xoshiro256 master(99);
  std::set<std::uint64_t> seen;
  for (int stream = 0; stream < 8; ++stream) {
    Xoshiro256 gen = master;
    for (int s = 0; s < stream; ++s) gen.Jump();
    for (int i = 0; i < 10000; ++i) {
      EXPECT_TRUE(seen.insert(gen.Next()).second) << "collision";
    }
  }
}

TEST(Xoshiro256Test, LongJumpDiffersFromJump) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  a.Jump();
  b.LongJump();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Xoshiro256Test, SplitIsDeterministicAndIndexed) {
  const Xoshiro256 master(11);
  Xoshiro256 s0 = master.Split(0);
  Xoshiro256 s0_again = master.Split(0);
  Xoshiro256 s1 = master.Split(1);
  EXPECT_EQ(s0.Next(), s0_again.Next());
  Xoshiro256 s0_fresh = master.Split(0);
  EXPECT_NE(s0_fresh.Next(), s1.Next());
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 gen(1);
  EXPECT_GE(gen(), Xoshiro256::min());
}

TEST(Xoshiro256Test, BitBalanceIsRoughlyHalf) {
  Xoshiro256 gen(1234);
  std::size_t ones = 0;
  constexpr int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(gen.Next()));
  }
  const double frac = static_cast<double>(ones) / (64.0 * kDraws);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

}  // namespace
}  // namespace fadesched::rng
