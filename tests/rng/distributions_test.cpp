#include "rng/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/xoshiro256.hpp"

namespace fadesched::rng {
namespace {

constexpr int kSamples = 200000;

TEST(UniformUnitTest, InHalfOpenUnitInterval) {
  Xoshiro256 gen(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = UniformUnit(gen);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformUnitTest, MeanAndVarianceMatchUniform) {
  Xoshiro256 gen(2);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double u = UniformUnit(gen);
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(UniformRangeTest, StaysInRange) {
  Xoshiro256 gen(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = UniformRange(gen, -2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(UniformRangeTest, DegenerateRangeReturnsLo) {
  Xoshiro256 gen(4);
  EXPECT_DOUBLE_EQ(UniformRange(gen, 3.0, 3.0), 3.0);
}

TEST(UniformIndexTest, CoversAllResidues) {
  Xoshiro256 gen(5);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[UniformIndex(gen, 7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(UniformIndexTest, BoundOneAlwaysZero) {
  Xoshiro256 gen(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(UniformIndex(gen, 1), 0u);
}

TEST(ExponentialTest, MeanMatches) {
  Xoshiro256 gen(7);
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += Exponential(gen, 2.5);
  EXPECT_NEAR(sum / kSamples, 2.5, 0.05);
}

TEST(ExponentialTest, VarianceIsMeanSquared) {
  Xoshiro256 gen(8);
  const double mean = 1.7;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = Exponential(gen, mean);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / kSamples;
  const double var = sum_sq / kSamples - m * m;
  EXPECT_NEAR(var, mean * mean, 0.1);
}

TEST(ExponentialTest, AlwaysNonNegativeAndFinite) {
  Xoshiro256 gen(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = Exponential(gen, 0.001);
    EXPECT_GE(x, 0.0);
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(ExponentialTest, SurvivalFunctionMatchesCdf) {
  // Pr(X > mean) should be e^{-1}.
  Xoshiro256 gen(10);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (Exponential(gen, 3.0) > 3.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kSamples, std::exp(-1.0), 0.005);
}

TEST(RayleighAmplitudeTest, SquaredIsExponentialWithMeanTwoSigmaSq) {
  // |h|² of a Rayleigh(σ) amplitude is Exp with mean 2σ² — the identity
  // the fading channel model is built on.
  Xoshiro256 gen(11);
  const double sigma = 0.8;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double a = RayleighAmplitude(gen, sigma);
    sum_sq += a * a;
  }
  EXPECT_NEAR(sum_sq / kSamples, 2.0 * sigma * sigma, 0.02);
}

TEST(RayleighAmplitudeTest, MeanMatchesSigmaSqrtPiOverTwo) {
  Xoshiro256 gen(12);
  const double sigma = 1.3;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += RayleighAmplitude(gen, sigma);
  EXPECT_NEAR(sum / kSamples, sigma * std::sqrt(3.14159265358979 / 2.0), 0.01);
}

TEST(StandardNormalTest, FirstTwoMoments) {
  Xoshiro256 gen(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double z = StandardNormal(gen);
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(StandardNormalTest, SymmetricTails) {
  Xoshiro256 gen(14);
  int pos = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (StandardNormal(gen) > 0.0) ++pos;
  }
  EXPECT_NEAR(static_cast<double>(pos) / kSamples, 0.5, 0.01);
}

}  // namespace
}  // namespace fadesched::rng
