// Property test for the .scenario wire format: Format -> Parse -> Format
// must be byte-identical, not just field-equal. The serving protocol
// (src/service/protocol) embeds scenario text verbatim in request frames
// and fingerprints canonical bytes, so a formatter that drifts between
// writes — or a parser that loses precision — would silently split the
// cache and break wire-level determinism. Truncation coverage pins the
// row/line numbering that operators grep when a frame arrives cut short.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "testing/corpus.hpp"
#include "testing/fuzzer.hpp"

namespace fadesched::testing {
namespace {

// Second-write idempotence over a broad seeded sweep. The fuzzer emits
// 17-significant-digit doubles, optional per-link powers, weighted rates,
// and extreme parameter corners — every case must reproduce its own bytes
// after one parse, and the reparse must be a fixed point.
TEST(ScenarioRoundTripPropertyTest, SecondWriteIsByteIdentical) {
  for (const std::uint64_t seed : {1ull, 42ull, 20260805ull}) {
    FuzzerOptions options;
    options.extreme_params = true;
    options.weighted_rates = true;
    options.with_noise = true;
    const ScenarioFuzzer fuzzer(seed, options);
    for (std::uint64_t index = 0; index < 40; ++index) {
      const ScenarioCase original = fuzzer.Case(index);
      const std::string first = FormatScenario(original);
      const ScenarioCase reparsed = ParseScenario(first);
      const std::string second = FormatScenario(reparsed);
      ASSERT_EQ(second, first) << "seed " << seed << " case " << index;
      // Fixed point: a third write adds nothing new.
      ASSERT_EQ(FormatScenario(ParseScenario(second)), second)
          << "seed " << seed << " case " << index;
    }
  }
}

// %.17g is the precision contract: a value that needs all 17 significant
// digits must survive the text round-trip exactly.
TEST(ScenarioRoundTripPropertyTest, SeventeenDigitDoublesSurvive) {
  const ScenarioFuzzer fuzzer(9);
  ScenarioCase scenario = fuzzer.Case(0);
  scenario.params.epsilon = 0.1000000000000000055511151231257827;
  scenario.params.noise_power = 4.9406564584124654e-324;  // min denormal
  const ScenarioCase reparsed = ParseScenario(FormatScenario(scenario));
  EXPECT_EQ(reparsed.params.epsilon, scenario.params.epsilon);
  EXPECT_EQ(reparsed.params.noise_power, scenario.params.noise_power);
}

std::string MessageOf(const std::string& text) {
  try {
    (void)ParseScenario(text);
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

// Truncate a well-formed scenario at every line boundary and require a
// loud, located failure — never a silently shortened topology. The only
// acceptable prefixes are those ending inside the CSV block with complete
// rows, where the text is a legitimately smaller scenario.
TEST(ScenarioRoundTripPropertyTest, EveryLineTruncationFailsLoudOrShrinks) {
  const ScenarioFuzzer fuzzer(13);
  const ScenarioCase original = fuzzer.Case(2);
  const std::string full = FormatScenario(original);

  std::vector<std::size_t> line_starts = {0};
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] == '\n' && i + 1 < full.size()) line_starts.push_back(i + 1);
  }
  ASSERT_GT(line_starts.size(), 9u);  // header + params + links: + rows

  for (std::size_t cut = 1; cut < line_starts.size(); ++cut) {
    const std::string prefix = full.substr(0, line_starts[cut]);
    try {
      const ScenarioCase parsed = ParseScenario(prefix);
      // Accepted: must be a genuine prefix-scenario — fewer (or equal)
      // links, and its own serialization must be a prefix of the full
      // text. Anything else means truncation corrupted data silently.
      EXPECT_LE(parsed.links.Size(), original.links.Size()) << cut;
      const std::string rewritten = FormatScenario(parsed);
      EXPECT_EQ(full.compare(0, rewritten.size(), rewritten), 0)
          << "cut after line " << cut;
    } catch (const std::exception& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("scenario"), std::string::npos)
          << "cut after line " << cut << ": " << message;
    }
  }
}

// A frame cut mid-row (not at a line boundary) must name the 1-based CSV
// row where parsing failed, so a truncated wire frame is diagnosable.
TEST(ScenarioRoundTripPropertyTest, MidRowTruncationNamesTheRow) {
  const std::string text =
      "# fadesched scenario v1\n"
      "alpha = 3\nepsilon = 0.01\ngamma_th = 1\ntx_power = 1\n"
      "noise_power = 0\n"
      "links:\n"
      "sx,sy,rx,ry,rate\n"
      "0,0,1,0,1\n"
      "5,5,6\n";  // row 2 lost its tail
  const std::string message = MessageOf(text);
  EXPECT_NE(message.find("row 2"), std::string::npos) << message;
}

// Truncation above the CSV block: losing the links: marker or a required
// parameter must be reported as such, never parsed as an empty topology.
TEST(ScenarioRoundTripPropertyTest, HeaderTruncationsAreNamed) {
  EXPECT_NE(MessageOf("# fadesched scenario v1\nalpha = 3\n")
                .find("missing 'links:'"),
            std::string::npos);
  EXPECT_NE(MessageOf("# fadesched scenario v1\nalpha = 3\nlinks:\n"
                      "sx,sy,rx,ry,rate\n")
                .find("missing key 'epsilon'"),
            std::string::npos);
  EXPECT_NE(MessageOf("").find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace fadesched::testing
