// Direct unit checks of the metamorphic transforms: each claimed relation
// is verified against the reference InterferenceCalculator on concrete
// instances (the oracle harness then relies on these relations at scale).
#include "testing/metamorphic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "channel/interference.hpp"
#include "mathx/ulp.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "testing/fuzzer.hpp"

namespace fadesched::testing {
namespace {

ScenarioCase BaseCase(std::uint64_t index = 3) {
  return ScenarioFuzzer(123).Case(index);
}

net::Schedule AllLinks(const ScenarioCase& scenario) {
  net::Schedule all(scenario.links.Size());
  for (net::LinkId i = 0; i < scenario.links.Size(); ++i) all[i] = i;
  return all;
}

TEST(MetamorphicTest, PermuteIsBitwiseInvariantOnFactors) {
  const ScenarioCase base = BaseCase();
  const TransformedCase t = PermuteLinks(base, 99);
  ASSERT_TRUE(t.bitwise_invariant);
  ASSERT_FALSE(t.relaxation);
  ASSERT_EQ(t.relabel.size(), base.links.Size());

  const channel::InterferenceCalculator calc_b(base.links, base.params);
  const channel::InterferenceCalculator calc_t(t.scenario.links,
                                               t.scenario.params);
  for (net::LinkId j = 0; j < base.links.Size(); ++j) {
    for (net::LinkId i = 0; i < base.links.Size(); ++i) {
      if (i == j) continue;
      // Factors are per-ordered-pair; relabeling must move them verbatim.
      EXPECT_EQ(calc_b.Factor(i, j),
                calc_t.Factor(t.relabel[i], t.relabel[j]));
    }
    EXPECT_EQ(calc_b.NoiseFactor(j), calc_t.NoiseFactor(t.relabel[j]));
  }
}

TEST(MetamorphicTest, PermuteRelabelIsAPermutation) {
  const ScenarioCase base = BaseCase(7);
  const TransformedCase t = PermuteLinks(base, 5);
  std::vector<net::LinkId> sorted = t.relabel;
  std::sort(sorted.begin(), sorted.end());
  for (net::LinkId i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(MetamorphicTest, RigidMotionPreservesFactorsToLastUlps) {
  const ScenarioCase base = BaseCase();
  const TransformedCase t = RigidMotion(base, 1.1, -40.0, 12.5);
  ASSERT_FALSE(t.relaxation);
  const channel::InterferenceCalculator calc_b(base.links, base.params);
  const channel::InterferenceCalculator calc_t(t.scenario.links,
                                               t.scenario.params);
  for (net::LinkId j = 0; j < base.links.Size(); ++j) {
    for (net::LinkId i = 0; i < base.links.Size(); ++i) {
      if (i == j) continue;
      const double fb = calc_b.Factor(i, j);
      const double ft = calc_t.Factor(i, j);
      EXPECT_LT(std::abs(fb - ft),
                1e-9 * std::max(1.0, std::abs(fb)))
          << "factor (" << i << "," << j << ")";
    }
  }
}

TEST(MetamorphicTest, UniformScaleWithPowerRescaleIsInvariant) {
  ScenarioCase base = BaseCase(12);
  const double s = 3.0;
  const TransformedCase t = UniformScale(base, s);
  // Coordinates scaled, powers scaled by s^alpha.
  EXPECT_NEAR(t.scenario.params.tx_power,
              base.params.tx_power * std::pow(s, base.params.alpha),
              1e-9 * t.scenario.params.tx_power);
  const channel::InterferenceCalculator calc_b(base.links, base.params);
  const channel::InterferenceCalculator calc_t(t.scenario.links,
                                               t.scenario.params);
  for (net::LinkId j = 0; j < base.links.Size(); ++j) {
    for (net::LinkId i = 0; i < base.links.Size(); ++i) {
      if (i == j) continue;
      const double fb = calc_b.Factor(i, j);
      EXPECT_LT(std::abs(fb - calc_t.Factor(i, j)),
                1e-9 * std::max(1.0, std::abs(fb)));
    }
    // Noise factors see P·d^{-α} with d and P^{1/α} scaled together.
    const double nb = calc_b.NoiseFactor(j);
    EXPECT_LT(std::abs(nb - calc_t.NoiseFactor(j)),
              1e-9 * std::max(1.0, std::abs(nb)));
  }
}

TEST(MetamorphicTest, RelaxEpsilonGrowsBudgetOnly) {
  const ScenarioCase base = BaseCase();
  const TransformedCase t = RelaxEpsilon(base, 3.0);
  ASSERT_TRUE(t.relaxation);
  EXPECT_GT(t.scenario.params.FeasibilityBudget(),
            base.params.FeasibilityBudget());
  const channel::InterferenceCalculator calc_b(base.links, base.params);
  const channel::InterferenceCalculator calc_t(t.scenario.links,
                                               t.scenario.params);
  const net::Schedule all = AllLinks(base);
  for (net::LinkId j : all) {
    EXPECT_EQ(calc_b.SumFactor(all, j), calc_t.SumFactor(all, j));
  }
}

TEST(MetamorphicTest, TightenGammaShrinksEveryFactor) {
  const ScenarioCase base = BaseCase();
  const TransformedCase t = TightenGamma(base, 0.25);
  ASSERT_TRUE(t.relaxation);
  EXPECT_EQ(t.scenario.params.FeasibilityBudget(),
            base.params.FeasibilityBudget());
  const channel::InterferenceCalculator calc_b(base.links, base.params);
  const channel::InterferenceCalculator calc_t(t.scenario.links,
                                               t.scenario.params);
  for (net::LinkId j = 0; j < base.links.Size(); ++j) {
    for (net::LinkId i = 0; i < base.links.Size(); ++i) {
      if (i == j) continue;
      EXPECT_LE(calc_t.Factor(i, j), calc_b.Factor(i, j));
    }
  }
}

TEST(MetamorphicTest, MapScheduleRelabelsAndSorts) {
  const std::vector<net::LinkId> relabel = {3, 0, 2, 1};
  const net::Schedule mapped = MapSchedule({0, 2, 3}, relabel);
  EXPECT_EQ(mapped, (net::Schedule{1, 2, 3}));
}

}  // namespace
}  // namespace fadesched::testing
