// Determinism audit (two layers):
//
// 1. A source-tree scan: no production code may draw entropy from the
//    environment — std::random_device, wall-clock seeding, rand()/srand().
//    Every randomized component takes an explicit seed (rng/xoshiro256),
//    which is what makes same-seed replay, the fuzzer's pure Case(index),
//    and the corpus format meaningful. steady_clock is allowed only in
//    the sanctioned timing utilities (deadlines and stopwatches), which
//    measure durations and never feed schedules.
// 2. A behavioural check: every registered scheduler, run twice from
//    fresh instances on the same input, returns byte-identical schedules.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "testing/fuzzer.hpp"

namespace fadesched {
namespace {

std::string ReadAll(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool IsSourceFile(const std::filesystem::path& path) {
  const auto ext = path.extension();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

TEST(DeterminismAuditTest, NoEnvironmentEntropyInProductionCode) {
  const std::filesystem::path root = FADESCHED_SOURCE_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(root)) << root;

  // Timing-only code; it may read the monotonic clock but is banned from
  // the entropy list below like everything else. The serving layer's
  // uses are latency histograms, queue-age deadlines, open-loop load
  // pacing, the server's slow-client read deadline, the chaos soak's
  // wall-clock report, the overload controller's queue-delay clocking,
  // the supervisor's backoff/uptime/fault-instant bookkeeping, the
  // inline fast-path latency stamp, and the shard front-end's
  // drain-grace/roll deadlines — durations that never feed a schedule
  // (the behavioural check below, the loadgen determinism comparison,
  // and the soak's byte-identical fault trace all pin that).
  const std::vector<std::string> steady_clock_allowlist = {
      "util/deadline.hpp",      "util/stopwatch.hpp",
      "service/batcher.hpp",    "service/batcher.cpp",
      "service/loadgen.cpp",    "service/server.cpp",
      "service/chaos/soak.cpp", "service/overload.hpp",
      "service/service.cpp",    "service/supervisor.hpp",
      "service/supervisor.cpp", "service/shard/shard_server.hpp",
      "service/shard/shard_server.cpp"};
  const std::vector<std::string> forbidden = {
      "std::random_device", "random_device{", "system_clock",
      "high_resolution_clock", "srand(", "time(nullptr)", "time(NULL)",
  };

  std::vector<std::string> findings;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
    const std::string rel =
        std::filesystem::relative(entry.path(), root).generic_string();
    const std::string text = ReadAll(entry.path());
    for (const std::string& token : forbidden) {
      if (text.find(token) != std::string::npos) {
        findings.push_back(rel + ": uses " + token);
      }
    }
    if (text.find("steady_clock") != std::string::npos) {
      bool allowed = false;
      for (const std::string& ok : steady_clock_allowlist) {
        allowed = allowed || rel == ok;
      }
      if (!allowed) {
        findings.push_back(rel + ": steady_clock outside timing utilities");
      }
    }
  }
  for (const std::string& finding : findings) ADD_FAILURE() << finding;
  // Sanity: the scan actually visited the tree.
  EXPECT_TRUE(std::filesystem::exists(root / "sched" / "registry.cpp"));
}

TEST(DeterminismAuditTest, SameSeedSameScheduleForEveryScheduler) {
  const testing::ScenarioFuzzer fuzzer(404);
  for (std::uint64_t index = 0; index < 6; ++index) {
    const testing::ScenarioCase scenario = fuzzer.Case(index);
    for (const sched::SchedulerContract& contract :
         sched::RegisteredSchedulers()) {
      if (contract.max_links != 0 &&
          scenario.links.Size() > contract.max_links) {
        continue;
      }
      if (contract.fuzz_cap != 0 &&
          scenario.links.Size() > contract.fuzz_cap) {
        continue;
      }
      const sched::ScheduleResult a =
          sched::MakeScheduler(contract.name)
              ->Schedule(scenario.links, scenario.params);
      const sched::ScheduleResult b =
          sched::MakeScheduler(contract.name)
              ->Schedule(scenario.links, scenario.params);
      EXPECT_EQ(a.schedule, b.schedule)
          << contract.name << " case " << index;
      EXPECT_EQ(a.claimed_rate, b.claimed_rate) << contract.name;
    }
  }
}

}  // namespace
}  // namespace fadesched
