// The dynamic fuzz family: case purity, .dynscenario round-trips, the
// warm/cold oracle, and the shrinker's contract.
#include "testing/dyn_fuzzer.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/atomic_io.hpp"
#include "util/check.hpp"

namespace fadesched::testing {
namespace {

TEST(DynamicFuzzerTest, CasesArePureInSeedAndIndex) {
  const DynamicFuzzer a(42);
  const DynamicFuzzer b(42);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(FormatDynScenario(a.Case(i)), FormatDynScenario(b.Case(i)));
  }
  // Different seeds diverge somewhere in the first few cases.
  const DynamicFuzzer c(43);
  bool diverged = false;
  for (std::uint64_t i = 0; i < 5 && !diverged; ++i) {
    diverged = FormatDynScenario(a.Case(i)) != FormatDynScenario(c.Case(i));
  }
  EXPECT_TRUE(diverged);
}

TEST(DynamicFuzzerTest, CasesStayWithinConfiguredBounds) {
  DynFuzzerOptions options;
  options.min_slots = 50;
  options.max_slots = 90;
  options.schedulers = {"ldp", "rle"};
  const DynamicFuzzer fuzzer(7, options);
  for (std::uint64_t i = 0; i < 30; ++i) {
    const DynamicCase dyn = fuzzer.Case(i);
    EXPECT_GE(dyn.dynamics.num_slots, 50u);
    EXPECT_LE(dyn.dynamics.num_slots, 90u);
    EXPECT_TRUE(dyn.scheduler == "ldp" || dyn.scheduler == "rle")
        << dyn.scheduler;
    EXPECT_NO_THROW(dyn.dynamics.Validate());
  }
}

TEST(DynScenarioFormatTest, RoundTripIsByteExact) {
  const DynamicFuzzer fuzzer(11);
  for (std::uint64_t i = 0; i < 25; ++i) {
    const DynamicCase original = fuzzer.Case(i);
    const std::string text = FormatDynScenario(original);
    const DynamicCase parsed = ParseDynScenario(text);
    // Byte-exact second format: every field survived, including the
    // full-width 64-bit seed and %.17g doubles.
    EXPECT_EQ(FormatDynScenario(parsed), text) << "case " << i;
  }
}

TEST(DynScenarioFormatTest, FileRoundTripMatches) {
  const DynamicCase original = DynamicFuzzer(13).Case(3);
  const std::string path =
      ::testing::TempDir() + "fadesched_dynfuzz_roundtrip.dynscenario";
  SaveDynScenarioFile(original, path);
  const DynamicCase loaded = LoadDynScenarioFile(path);
  EXPECT_EQ(FormatDynScenario(loaded), FormatDynScenario(original));
  util::RemoveFile(path);
}

TEST(DynScenarioFormatTest, MalformedInputNamesTheOffendingLine) {
  EXPECT_THROW(ParseDynScenario("not a dynscenario"), util::CheckFailure);
  try {
    ParseDynScenario("# fadesched dynscenario v1\nnum_slots = frog\n");
    FAIL() << "expected CheckFailure";
  } catch (const util::CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  // A header with no embedded scenario is incomplete.
  EXPECT_THROW(
      ParseDynScenario("# fadesched dynscenario v1\nscheduler = ldp\n"),
      util::CheckFailure);
}

// The oracle holds on generated cases: warm subset views are
// schedule-identical to cold rebuilds, and replays are deterministic.
// This is the in-suite smoke of the property `fuzz --dynamic` checks at
// scale.
TEST(DynOracleTest, GeneratedCasesPassTheWarmColdOracle) {
  const DynamicFuzzer fuzzer(2024);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const DynOracleOutcome outcome = CheckDynamicCase(fuzzer.Case(i));
    EXPECT_TRUE(outcome.ok) << "case " << i << ": " << outcome.check << " — "
                            << outcome.detail;
  }
}

TEST(DynOracleTest, BrokenCaseSurfacesAsCrashNotThrow) {
  DynamicCase dyn = DynamicFuzzer(5).Case(0);
  dyn.scheduler = "no_such_scheduler";
  const DynOracleOutcome outcome = CheckDynamicCase(dyn);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.check, "crash");
  EXPECT_FALSE(outcome.detail.empty());
}

TEST(DynShrinkTest, ShrinkingANonFailingCaseIsRejected) {
  const DynamicCase healthy = DynamicFuzzer(6).Case(1);
  EXPECT_THROW(ShrinkDynamicCase(healthy), util::CheckFailure);
}

// Shrinking a crashing case preserves the failure identity and never
// grows the reproducer.
TEST(DynShrinkTest, ShrunkReproducerStillFailsTheSameCheck) {
  DynamicCase failing = DynamicFuzzer(8).Case(2);
  failing.scheduler = "no_such_scheduler";  // deterministic crash
  const DynOracleOutcome before = CheckDynamicCase(failing);
  ASSERT_FALSE(before.ok);

  DynShrinkOptions options;
  options.max_evaluations = 80;
  const DynShrinkResult result = ShrinkDynamicCase(failing, options);
  EXPECT_LE(result.evaluations, options.max_evaluations);
  EXPECT_LE(result.shrunk.scenario.links.Size(),
            failing.scenario.links.Size());
  EXPECT_LE(result.shrunk.dynamics.num_slots, failing.dynamics.num_slots);

  const DynOracleOutcome after = CheckDynamicCase(result.shrunk);
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.check, before.check);
}

TEST(DynFuzzDriverTest, CleanRunReportsOk) {
  DynFuzzDriverOptions options;
  options.seed = 77;
  options.iterations = 6;
  options.fuzzer.topology.max_links = 8;
  options.fuzzer.max_slots = 60;
  const DynFuzzReport report = RunDynamicFuzz(options);
  EXPECT_TRUE(report.Ok());
  EXPECT_EQ(report.iterations_run, 6u);
  EXPECT_EQ(report.cases_with_failures, 0u);
}

}  // namespace
}  // namespace fadesched::testing
