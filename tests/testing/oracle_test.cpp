// Oracle harness behaviour: clean schedulers pass, a planted bug is
// caught and shrunk (the mutation test), and the checked-in regression
// corpus stays green.
#include "testing/oracle.hpp"

#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "sched/feasibility_repair.hpp"
#include "sched/registry.hpp"
#include "testing/fuzz_driver.hpp"
#include "testing/fuzzer.hpp"

namespace fadesched::testing {
namespace {

// The planted bug: claims to be the feasibility-gated greedy but
// schedules every link unconditionally — the gate is "mutated away".
class GateRemovedMutant final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string Name() const override { return "fading_greedy"; }
  [[nodiscard]] sched::ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& /*params*/) const override {
    net::Schedule all(links.Size());
    std::iota(all.begin(), all.end(), net::LinkId{0});
    return sched::FinalizeResult(links, std::move(all), "fading_greedy");
  }
};

TEST(OracleTest, CleanSchedulersProduceNoViolations) {
  // A miniature of the CI fuzz-smoke: every registered scheduler, full
  // check set, across a few dozen fuzzed instances.
  const OracleHarness harness;
  const ScenarioFuzzer fuzzer(2024);
  for (std::uint64_t index = 0; index < 25; ++index) {
    const std::vector<Violation> violations =
        harness.CheckCase(fuzzer.Case(index));
    ASSERT_TRUE(violations.empty())
        << violations.front().scheduler << "/" << violations.front().check
        << ": " << violations.front().detail;
  }
}

TEST(OracleTest, ViolationCarriesReplayableScenario) {
  OracleOptions options;
  options.factory = [](const std::string&) -> sched::SchedulerPtr {
    return std::make_unique<GateRemovedMutant>();
  };
  options.metamorphic = false;
  options.check_backends = false;
  const OracleHarness harness(options);

  // Find a fuzz case where scheduling everything is infeasible.
  const ScenarioFuzzer fuzzer(77);
  for (std::uint64_t index = 0; index < 100; ++index) {
    std::vector<Violation> violations;
    harness.CheckScheduler(sched::ContractFor("fading_greedy"),
                           fuzzer.Case(index), violations);
    if (violations.empty()) continue;
    const Violation& v = violations.front();
    EXPECT_EQ(v.scheduler, "fading_greedy");
    EXPECT_FALSE(v.detail.empty());
    // The embedded scenario must reproduce the violation standalone.
    std::vector<Violation> again;
    harness.CheckScheduler(sched::ContractFor("fading_greedy"), v.scenario,
                           again);
    EXPECT_FALSE(again.empty());
    return;
  }
  FAIL() << "mutant never violated in 100 cases — fuzzer too tame";
}

// Acceptance criterion of this subsystem: the planted bug is caught by
// the oracle and ddmin reduces the reproducer to at most 6 links.
TEST(OracleTest, PlantedBugIsCaughtAndShrunkToSixLinksOrFewer) {
  FuzzDriverOptions options;
  options.seed = 7;
  options.iterations = 100;
  options.max_failures = 1;
  options.oracle.schedulers = {"fading_greedy"};
  options.oracle.factory = [](const std::string&) -> sched::SchedulerPtr {
    return std::make_unique<GateRemovedMutant>();
  };
  options.oracle.metamorphic = false;
  options.oracle.check_backends = false;
  options.oracle.exact_cap = 0;  // isolate the feasibility oracle

  const FuzzReport report = RunFuzz(options);
  ASSERT_FALSE(report.Ok()) << "mutation not caught";
  const FuzzFailure& failure = report.failures.front();
  EXPECT_EQ(failure.violation.check, "feasibility");
  EXPECT_LE(failure.shrunk_links, 6u);
  EXPECT_GE(failure.shrunk_links, 2u)
      << "an interference violation needs at least a victim and an "
         "interferer (or noise, which the fuzzer keeps sub-budget)";
}

TEST(OracleTest, RegressionCorpusStaysGreen) {
  // Fuzz-found counterexamples to Theorem 4.1's Formula (37) constant —
  // fixed by the LDP feasibility backstop; must never regress.
  const std::filesystem::path dir = FADESCHED_TEST_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  const OracleHarness harness;
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".scenario") continue;
    const ScenarioCase scenario = LoadScenarioFile(entry.path().string());
    const std::vector<Violation> violations = harness.CheckCase(scenario);
    EXPECT_TRUE(violations.empty())
        << entry.path().filename() << ": " << violations.front().scheduler
        << "/" << violations.front().check << ": "
        << violations.front().detail;
    ++replayed;
  }
  EXPECT_GE(replayed, 3u) << "corpus went missing from " << dir;
}

TEST(OracleTest, RepairBackstopPrunesTheCorpusCounterexample) {
  const std::filesystem::path path =
      std::filesystem::path(FADESCHED_TEST_CORPUS_DIR) /
      "ldp-beta-stickout-4link.scenario";
  const ScenarioCase scenario = LoadScenarioFile(path.string());
  // The raw Formula (37) construction picks an infeasible pair here; the
  // repaired schedule must be Corollary-3.1 feasible and non-empty.
  const sched::ScheduleResult result =
      sched::MakeScheduler("ldp_two_sided")
          ->Schedule(scenario.links, scenario.params);
  ASSERT_FALSE(result.schedule.empty());
  const channel::InterferenceCalculator calc(scenario.links, scenario.params);
  for (const channel::LinkFeasibility& lf :
       channel::AnalyzeSchedule(calc, result.schedule)) {
    EXPECT_TRUE(lf.informed) << "link " << lf.link;
  }
  // RepairToFeasible itself: the all-links schedule on this instance is
  // infeasible and must shrink, but never to empty.
  net::Schedule all(scenario.links.Size());
  std::iota(all.begin(), all.end(), net::LinkId{0});
  const net::Schedule repaired =
      sched::RepairToFeasible(scenario.links, scenario.params, all);
  EXPECT_LT(repaired.size(), all.size());
  EXPECT_FALSE(repaired.empty());
  for (const channel::LinkFeasibility& lf :
       channel::AnalyzeSchedule(calc, repaired)) {
    EXPECT_TRUE(lf.informed);
  }
}

}  // namespace
}  // namespace fadesched::testing
