// The fuzzer's determinism and coverage contract.
#include "testing/fuzzer.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace fadesched::testing {
namespace {

TEST(FuzzerTest, CaseIsPureInSeedAndIndex) {
  const ScenarioFuzzer a(42);
  const ScenarioFuzzer b(42);
  for (std::uint64_t index : {0ULL, 1ULL, 17ULL, 999ULL}) {
    const ScenarioCase ca = a.Case(index);
    const ScenarioCase cb = b.Case(index);
    ASSERT_EQ(ca.links.Size(), cb.links.Size());
    for (net::LinkId i = 0; i < ca.links.Size(); ++i) {
      ASSERT_EQ(ca.links.Sender(i).x, cb.links.Sender(i).x);
      ASSERT_EQ(ca.links.Receiver(i).y, cb.links.Receiver(i).y);
      ASSERT_EQ(ca.links.Rate(i), cb.links.Rate(i));
    }
    ASSERT_EQ(ca.params.alpha, cb.params.alpha);
    ASSERT_EQ(ca.params.epsilon, cb.params.epsilon);
    ASSERT_EQ(ca.description, cb.description);
  }
}

TEST(FuzzerTest, DifferentSeedsDiffer) {
  const ScenarioFuzzer a(1);
  const ScenarioFuzzer b(2);
  // Same index under different master seeds must not collide (the index
  // hash folds the seed in, not just the counter).
  EXPECT_NE(a.Case(5).params.alpha, b.Case(5).params.alpha);
}

TEST(FuzzerTest, NextWalksCaseSequence) {
  ScenarioFuzzer fuzzer(9);
  const ScenarioCase first = fuzzer.Next();
  EXPECT_EQ(fuzzer.NextIndex(), 1u);
  EXPECT_EQ(first.description, ScenarioFuzzer(9).Case(0).description);
}

TEST(FuzzerTest, RespectsSizeBoundsAndValidParams) {
  FuzzerOptions options;
  options.min_links = 3;
  options.max_links = 7;
  const ScenarioFuzzer fuzzer(5, options);
  for (std::uint64_t index = 0; index < 200; ++index) {
    const ScenarioCase scenario = fuzzer.Case(index);
    ASSERT_GE(scenario.links.Size(), 3u) << index;
    ASSERT_LE(scenario.links.Size(), 7u) << index;
    ASSERT_NO_THROW(scenario.params.Validate()) << index;
    // The noise regime must never produce born-dead instances where even
    // the longest link alone busts the budget.
    if (scenario.params.noise_power > 0.0) {
      const double budget = scenario.params.FeasibilityBudget();
      ASSERT_GT(budget, 0.0) << index;
    }
  }
}

TEST(FuzzerTest, CoversEveryTopologyFamily) {
  const ScenarioFuzzer fuzzer(1);
  std::set<std::string> seen;
  for (std::uint64_t index = 0; index < 300; ++index) {
    const std::string description = fuzzer.Case(index).description;
    const auto topo = description.find("topology=");
    ASSERT_NE(topo, std::string::npos);
    seen.insert(description.substr(topo, description.find(' ', topo) - topo));
  }
  // All six families should appear within a few hundred draws.
  EXPECT_EQ(seen.size(), 6u);
}

}  // namespace
}  // namespace fadesched::testing
