// Round-trip and parse-error contract of the .scenario corpus format.
#include "testing/corpus.hpp"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "testing/fuzzer.hpp"
#include "util/check.hpp"

namespace fadesched::testing {
namespace {

ScenarioCase SampleCase() {
  ScenarioCase scenario;
  rng::Xoshiro256 gen(7);
  net::UniformScenarioParams p;
  p.region_size = 300.0;
  scenario.links = net::MakeUniformScenario(9, p, gen);
  scenario.params.alpha = 3.25;
  scenario.params.epsilon = 0.015;
  scenario.params.gamma_th = 1.5;
  scenario.params.tx_power = 2.0;
  scenario.params.noise_power = 1e-9;
  scenario.description = "corpus round-trip sample";
  return scenario;
}

TEST(CorpusTest, RoundTripIsBitIdentical) {
  const ScenarioCase original = SampleCase();
  const ScenarioCase reparsed = ParseScenario(FormatScenario(original));
  ASSERT_EQ(reparsed.links.Size(), original.links.Size());
  for (net::LinkId i = 0; i < original.links.Size(); ++i) {
    EXPECT_EQ(reparsed.links.Sender(i).x, original.links.Sender(i).x);
    EXPECT_EQ(reparsed.links.Sender(i).y, original.links.Sender(i).y);
    EXPECT_EQ(reparsed.links.Receiver(i).x, original.links.Receiver(i).x);
    EXPECT_EQ(reparsed.links.Receiver(i).y, original.links.Receiver(i).y);
    EXPECT_EQ(reparsed.links.Rate(i), original.links.Rate(i));
  }
  EXPECT_EQ(reparsed.params.alpha, original.params.alpha);
  EXPECT_EQ(reparsed.params.epsilon, original.params.epsilon);
  EXPECT_EQ(reparsed.params.gamma_th, original.params.gamma_th);
  EXPECT_EQ(reparsed.params.tx_power, original.params.tx_power);
  EXPECT_EQ(reparsed.params.noise_power, original.params.noise_power);
  EXPECT_EQ(reparsed.description, original.description);
}

TEST(CorpusTest, RoundTripsFuzzedExtremes) {
  // Fuzz-generated instances carry 17-digit doubles, per-link powers, and
  // weighted rates; every one must survive format -> parse bit-for-bit.
  const ScenarioFuzzer fuzzer(11);
  for (std::uint64_t index = 0; index < 30; ++index) {
    const ScenarioCase original = fuzzer.Case(index);
    const ScenarioCase reparsed = ParseScenario(FormatScenario(original));
    ASSERT_EQ(reparsed.links.Size(), original.links.Size()) << index;
    for (net::LinkId i = 0; i < original.links.Size(); ++i) {
      ASSERT_EQ(reparsed.links.Receiver(i).x, original.links.Receiver(i).x);
      ASSERT_EQ(reparsed.links.TxPower(i), original.links.TxPower(i));
    }
    ASSERT_EQ(reparsed.params.epsilon, original.params.epsilon) << index;
  }
}

TEST(CorpusTest, SaveLoadFile) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "fadesched_corpus_test.scenario";
  const ScenarioCase original = SampleCase();
  SaveScenarioFile(original, path.string());
  const ScenarioCase loaded = LoadScenarioFile(path.string());
  EXPECT_EQ(loaded.links.Size(), original.links.Size());
  EXPECT_EQ(loaded.params.alpha, original.params.alpha);
  std::filesystem::remove(path);
}

std::string MessageOf(const std::string& text) {
  try {
    (void)ParseScenario(text);
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

// The loader's error positions are part of the format contract: external
// tooling greps them, so the row/line numbering must stay stable.
TEST(CorpusTest, ParseErrorsAreLineNumbered) {
  EXPECT_NE(MessageOf("not a scenario\n").find("line 1"), std::string::npos);

  const std::string bad_value =
      "# fadesched scenario v1\n"
      "alpha = not_a_number\n";
  EXPECT_NE(MessageOf(bad_value).find("scenario file line 2"),
            std::string::npos);

  const std::string bad_key =
      "# fadesched scenario v1\n"
      "alpha = 3\n"
      "bogus = 1\n";
  EXPECT_NE(MessageOf(bad_key).find("scenario file line 3"),
            std::string::npos);

  const std::string missing_key =
      "# fadesched scenario v1\n"
      "alpha = 3\n"
      "links:\n"
      "sx,sy,rx,ry,rate\n";
  EXPECT_NE(MessageOf(missing_key).find("missing key 'epsilon'"),
            std::string::npos);

  // A malformed link row reports its 1-based CSV row via scenario_io.
  const std::string bad_row =
      "# fadesched scenario v1\n"
      "alpha = 3\nepsilon = 0.01\ngamma_th = 1\ntx_power = 1\n"
      "noise_power = 0\n"
      "links:\n"
      "sx,sy,rx,ry,rate\n"
      "0,0,1,0,1\n"
      "5,5,oops,5,1\n";
  const std::string message = MessageOf(bad_row);
  EXPECT_NE(message.find("row 2"), std::string::npos) << message;
}

TEST(CorpusTest, RejectsMultilineDescription) {
  ScenarioCase scenario = SampleCase();
  scenario.description = "two\nlines";
  EXPECT_THROW((void)FormatScenario(scenario), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::testing
