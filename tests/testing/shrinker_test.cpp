// ddmin shrinker behaviour on synthetic predicates with known minima.
#include "testing/shrinker.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace fadesched::testing {
namespace {

// 12 links on a line at x = 10·i; link i has length 1 + i so each keeps a
// recognisable identity through subsetting.
ScenarioCase LineCase(std::size_t n = 12) {
  ScenarioCase scenario;
  scenario.params.alpha = 3.0;
  scenario.params.epsilon = 0.01;
  scenario.params.gamma_th = 1.0;
  scenario.params.tx_power = 1.0;
  scenario.params.noise_power = 1e-6;
  for (std::size_t i = 0; i < n; ++i) {
    net::Link link;
    link.sender = {10.0 * static_cast<double>(i), 0.0};
    link.receiver = {10.0 * static_cast<double>(i),
                     1.0 + static_cast<double>(i)};
    scenario.links.Add(link);
  }
  scenario.description = "shrinker line case";
  return scenario;
}

bool HasLengths(const ScenarioCase& scenario, double a, double b) {
  bool has_a = false;
  bool has_b = false;
  for (net::LinkId i = 0; i < scenario.links.Size(); ++i) {
    const double len = scenario.links.Length(i);
    if (std::abs(len - a) < 1e-9) has_a = true;
    if (std::abs(len - b) < 1e-9) has_b = true;
  }
  return has_a && has_b;
}

TEST(ShrinkerTest, FindsTwoLinkCore) {
  const ScenarioCase failing = LineCase();
  // "Fails" iff links of length 4 and 9 are both present — the unique
  // 1-minimal core is exactly that pair.
  const auto predicate = [](const ScenarioCase& c) {
    return HasLengths(c, 4.0, 9.0);
  };
  const ShrinkResult result = ShrinkScenario(failing, predicate, {});
  EXPECT_TRUE(result.minimal);
  EXPECT_EQ(result.scenario.links.Size(), 2u);
  EXPECT_TRUE(HasLengths(result.scenario, 4.0, 9.0));
  EXPECT_EQ(result.original_links, 12u);
  // The channel parameters ride along untouched except the best-effort
  // noise zeroing (the predicate ignores noise, so it is zeroed).
  EXPECT_EQ(result.scenario.params.noise_power, 0.0);
  EXPECT_NE(result.scenario.description.find("shrunk 12->2"),
            std::string::npos);
}

TEST(ShrinkerTest, KeepsNoiseWhenItMatters) {
  const ScenarioCase failing = LineCase();
  const auto predicate = [](const ScenarioCase& c) {
    return c.params.noise_power > 0.0 && HasLengths(c, 4.0, 4.0);
  };
  const ShrinkResult result = ShrinkScenario(failing, predicate, {});
  EXPECT_EQ(result.scenario.links.Size(), 1u);
  EXPECT_GT(result.scenario.params.noise_power, 0.0);
}

TEST(ShrinkerTest, SingleLinkCoreShrinksToOne) {
  const ScenarioCase failing = LineCase();
  const auto predicate = [](const ScenarioCase& c) {
    return HasLengths(c, 7.0, 7.0);
  };
  const ShrinkResult result = ShrinkScenario(failing, predicate, {});
  EXPECT_TRUE(result.minimal);
  EXPECT_EQ(result.scenario.links.Size(), 1u);
}

TEST(ShrinkerTest, BudgetExhaustionKeepsBestSoFar) {
  const ScenarioCase failing = LineCase();
  ShrinkOptions options;
  options.max_evaluations = 3;  // enough for at most one successful chop
  const auto predicate = [](const ScenarioCase& c) {
    return HasLengths(c, 4.0, 9.0);
  };
  const ShrinkResult result = ShrinkScenario(failing, predicate, options);
  EXPECT_FALSE(result.minimal);
  EXPECT_LE(result.scenario.links.Size(), 12u);
  EXPECT_TRUE(HasLengths(result.scenario, 4.0, 9.0));
  EXPECT_LE(result.evaluations, 4u);  // 3 in the loop + the noise attempt
}

TEST(ShrinkerTest, RejectsNonReproducingInput) {
  const ScenarioCase failing = LineCase();
  const auto predicate = [](const ScenarioCase&) { return false; };
  EXPECT_THROW((void)ShrinkScenario(failing, predicate, {}),
               util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::testing
