#include "mathx/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace fadesched::mathx {
namespace {

TEST(RunningStatsTest, EmptyAccumulator) {
  RunningStats stats;
  EXPECT_EQ(stats.Count(), 0u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.StdError(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_EQ(stats.Count(), 1u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 3.0);
}

TEST(RunningStatsTest, MatchesClosedFormOnSmallSample) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  // Sample variance with n-1: Σ(x-5)² = 32, 32/7.
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  std::vector<double> values;
  rng::Xoshiro256 gen(77);
  for (int i = 0; i < 1000; ++i) values.push_back(rng::UniformUnit(gen));

  RunningStats whole;
  for (double v : values) whole.Add(v);

  RunningStats left;
  RunningStats right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 400 ? left : right).Add(values[i]);
  }
  left.Merge(right);

  EXPECT_EQ(left.Count(), whole.Count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.Min(), whole.Min());
  EXPECT_DOUBLE_EQ(left.Max(), whole.Max());
}

TEST(RunningStatsTest, MergeWithEmptySidesIsIdentity) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  RunningStats copy = a;
  copy.Merge(empty);
  EXPECT_DOUBLE_EQ(copy.Mean(), a.Mean());
  RunningStats other;
  other.Merge(a);
  EXPECT_DOUBLE_EQ(other.Mean(), a.Mean());
  EXPECT_EQ(other.Count(), a.Count());
}

TEST(RunningStatsTest, ConfidenceShrinksWithSamples) {
  rng::Xoshiro256 gen(5);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.Add(rng::UniformUnit(gen));
  for (int i = 0; i < 10000; ++i) large.Add(rng::UniformUnit(gen));
  EXPECT_LT(large.ConfidenceHalfWidth95(), small.ConfidenceHalfWidth95());
}

TEST(RunningStatsTest, NumericallyStableAroundLargeOffset) {
  // Classic Welford stress: values 1e9 + {1,2,3}; naive two-pass with
  // float accumulation of squares fails, Welford must not.
  RunningStats stats;
  stats.Add(1e9 + 1.0);
  stats.Add(1e9 + 2.0);
  stats.Add(1e9 + 3.0);
  EXPECT_NEAR(stats.Variance(), 1.0, 1e-6);
}

TEST(PercentileTest, MedianOfOddSample) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenPoints) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v{3.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, SingleElement) {
  std::vector<double> v{4.2};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.7), 4.2);
}

TEST(PercentileTest, EmptySampleThrows) {
  std::vector<double> v;
  EXPECT_THROW(Percentile(v, 0.5), util::CheckFailure);
}

TEST(BootstrapTest, CiContainsTrueMeanOfTightSample) {
  std::vector<double> values(200, 5.0);
  rng::Xoshiro256 gen(3);
  const BootstrapCi ci = BootstrapMeanCi(values, 0.95, 200, gen);
  EXPECT_DOUBLE_EQ(ci.lower, 5.0);
  EXPECT_DOUBLE_EQ(ci.upper, 5.0);
}

TEST(BootstrapTest, CiBracketsSampleMean) {
  rng::Xoshiro256 gen(4);
  std::vector<double> values;
  double sum = 0.0;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng::UniformUnit(gen));
    sum += values.back();
  }
  const double mean = sum / 500.0;
  const BootstrapCi ci = BootstrapMeanCi(values, 0.95, 500, gen);
  EXPECT_LE(ci.lower, mean);
  EXPECT_GE(ci.upper, mean);
  EXPECT_LT(ci.upper - ci.lower, 0.2);
}

TEST(BootstrapTest, InvalidArgumentsRejected) {
  std::vector<double> values{1.0};
  rng::Xoshiro256 gen(6);
  std::vector<double> empty;
  EXPECT_THROW(BootstrapMeanCi(empty, 0.95, 10, gen), util::CheckFailure);
  EXPECT_THROW(BootstrapMeanCi(values, 1.5, 10, gen), util::CheckFailure);
  EXPECT_THROW(BootstrapMeanCi(values, 0.95, 1, gen), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::mathx
