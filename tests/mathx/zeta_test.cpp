#include "mathx/zeta.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace fadesched::mathx {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(RiemannZetaTest, ZetaTwoIsPiSquaredOverSix) {
  EXPECT_NEAR(RiemannZeta(2.0), kPi * kPi / 6.0, 1e-10);
}

TEST(RiemannZetaTest, ZetaFourIsPiFourthOverNinety) {
  EXPECT_NEAR(RiemannZeta(4.0), std::pow(kPi, 4) / 90.0, 1e-10);
}

TEST(RiemannZetaTest, ZetaSixIsPiSixthOver945) {
  EXPECT_NEAR(RiemannZeta(6.0), std::pow(kPi, 6) / 945.0, 1e-10);
}

TEST(RiemannZetaTest, AperyConstant) {
  EXPECT_NEAR(RiemannZeta(3.0), 1.2020569031595942854, 1e-10);
}

TEST(RiemannZetaTest, ZetaOnePointFive) {
  EXPECT_NEAR(RiemannZeta(1.5), 2.6123753486854883, 1e-9);
}

TEST(RiemannZetaTest, NonIntegerArgument) {
  EXPECT_NEAR(RiemannZeta(2.5), 1.3414872572509171, 1e-10);
}

TEST(RiemannZetaTest, LargeArgumentApproachesOne) {
  EXPECT_NEAR(RiemannZeta(30.0), 1.0 + std::pow(2.0, -30.0), 1e-12);
}

TEST(RiemannZetaTest, StrictlyDecreasingOnDomain) {
  double prev = RiemannZeta(1.1);
  for (double s = 1.3; s < 10.0; s += 0.2) {
    const double value = RiemannZeta(s);
    EXPECT_LT(value, prev) << "at s=" << s;
    prev = value;
  }
}

TEST(RiemannZetaTest, DivergentArgumentRejected) {
  EXPECT_THROW(RiemannZeta(1.0), util::CheckFailure);
  EXPECT_THROW(RiemannZeta(0.5), util::CheckFailure);
  EXPECT_THROW(RiemannZeta(-2.0), util::CheckFailure);
}

TEST(RiemannZetaTest, NearPoleStillFinite) {
  // ζ(1+δ) ≈ 1/δ + γ; check against that expansion loosely.
  const double s = 1.001;
  const double euler_gamma = 0.5772156649015329;
  EXPECT_NEAR(RiemannZeta(s), 1.0 / (s - 1.0) + euler_gamma, 1e-3);
}

}  // namespace
}  // namespace fadesched::mathx
