#include "mathx/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace fadesched::mathx {
namespace {

TEST(RegularizedGammaPTest, ShapeOneIsExponentialCdf) {
  // P(1, x) = 1 − e^{−x}.
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaPTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.5, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(2.5, 1000.0), 1.0, 1e-12);
}

TEST(RegularizedGammaPTest, ShapeTwoClosedForm) {
  // P(2, x) = 1 − (1 + x) e^{−x}.
  for (double x : {0.5, 2.0, 6.0}) {
    EXPECT_NEAR(RegularizedGammaP(2.0, x), 1.0 - (1.0 + x) * std::exp(-x),
                1e-12);
  }
}

TEST(RegularizedGammaPTest, HalfShapeIsErf) {
  // P(1/2, x) = erf(√x).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-12);
  }
}

TEST(RegularizedGammaPTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 20.0; x += 0.3) {
    const double p = RegularizedGammaP(3.7, x);
    EXPECT_GE(p, prev - 1e-15);
    prev = p;
  }
}

TEST(RegularizedGammaPTest, InvalidInputsRejected) {
  EXPECT_THROW(RegularizedGammaP(0.0, 1.0), util::CheckFailure);
  EXPECT_THROW(RegularizedGammaP(1.0, -1.0), util::CheckFailure);
}

TEST(GammaCdfTest, ScaleHandling) {
  // Gamma(shape 2, scale 3) at x equals P(2, x/3).
  EXPECT_NEAR(GammaCdf(6.0, 2.0, 3.0), RegularizedGammaP(2.0, 2.0), 1e-14);
  EXPECT_DOUBLE_EQ(GammaCdf(-1.0, 2.0, 3.0), 0.0);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(5.0), 1.0, 1e-6);
}

TEST(NormalCdfTest, Symmetry) {
  for (double x : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(NormalCdf(x) + NormalCdf(-x), 1.0, 1e-14);
  }
}

}  // namespace
}  // namespace fadesched::mathx
