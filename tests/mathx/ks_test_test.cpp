#include "mathx/ks_test.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mathx/special.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::mathx {
namespace {

constexpr std::size_t kSample = 20000;

std::vector<double> Draw(std::function<double(rng::Xoshiro256&)> sampler,
                         std::uint64_t seed, std::size_t n = kSample) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = sampler(gen);
  return out;
}

TEST(KsStatisticTest, PerfectFitIsSmall) {
  // Deterministic quantile sample {(i+0.5)/n} against U(0,1).
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back((i + 0.5) / 1000.0);
  const double d = KsStatistic(sample, [](double x) { return x; });
  EXPECT_LT(d, 0.001);
}

TEST(KsStatisticTest, GrossMismatchIsLarge) {
  std::vector<double> sample(500, 0.9);  // point mass vs U(0,1)
  const double d = KsStatistic(sample, [](double x) { return x; });
  EXPECT_GT(d, 0.85);
}

TEST(KsPValueTest, LimitsBehave) {
  EXPECT_NEAR(KsPValue(0.0, 100), 1.0, 1e-9);
  EXPECT_LT(KsPValue(0.5, 1000), 1e-6);
  EXPECT_GT(KsPValue(0.01, 100), 0.9);
}

TEST(KsGoodnessTest, UniformDrawsPass) {
  const auto sample =
      Draw([](rng::Xoshiro256& g) { return rng::UniformUnit(g); }, 11);
  EXPECT_TRUE(KsTestPasses(sample, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  }));
}

TEST(KsGoodnessTest, ExponentialDrawsPass) {
  const double mean = 2.5;
  const auto sample = Draw(
      [mean](rng::Xoshiro256& g) { return rng::Exponential(g, mean); }, 12);
  EXPECT_TRUE(KsTestPasses(sample, [mean](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / mean);
  }));
}

TEST(KsGoodnessTest, GammaDrawsPassForSeveralShapes) {
  for (double shape : {0.5, 1.0, 3.0, 8.0}) {
    const double scale = 1.7;
    const auto sample = Draw(
        [shape, scale](rng::Xoshiro256& g) {
          return rng::GammaSample(g, shape, scale);
        },
        static_cast<std::uint64_t>(shape * 100) + 13);
    EXPECT_TRUE(KsTestPasses(sample, [shape, scale](double x) {
      return GammaCdf(x, shape, scale);
    })) << "shape=" << shape;
  }
}

TEST(KsGoodnessTest, NormalDrawsPass) {
  const auto sample =
      Draw([](rng::Xoshiro256& g) { return rng::StandardNormal(g); }, 14);
  EXPECT_TRUE(KsTestPasses(sample, [](double x) { return NormalCdf(x); }));
}

TEST(KsGoodnessTest, RayleighAmplitudePasses) {
  const double sigma = 0.8;
  const auto sample = Draw(
      [sigma](rng::Xoshiro256& g) { return rng::RayleighAmplitude(g, sigma); },
      15);
  EXPECT_TRUE(KsTestPasses(sample, [sigma](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x * x / (2.0 * sigma * sigma));
  }));
}

TEST(KsGoodnessTest, WrongDistributionIsRejected) {
  // Exponential draws tested against a uniform CDF must fail decisively.
  const auto sample = Draw(
      [](rng::Xoshiro256& g) { return rng::Exponential(g, 1.0); }, 16);
  EXPECT_FALSE(KsTestPasses(sample, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  }));
}

TEST(KsGoodnessTest, SubtlyWrongMeanIsRejected) {
  // 10% mean error is invisible to eyeball checks; KS at n=20k sees it.
  const auto sample = Draw(
      [](rng::Xoshiro256& g) { return rng::Exponential(g, 1.1); }, 17);
  EXPECT_FALSE(KsTestPasses(sample, [](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x);
  }));
}

TEST(KsTest, InvalidInputsRejected) {
  std::vector<double> empty;
  EXPECT_THROW(KsStatistic(empty, [](double) { return 0.5; }),
               util::CheckFailure);
  EXPECT_THROW(KsPValue(0.1, 0), util::CheckFailure);
  std::vector<double> sample{0.5};
  EXPECT_THROW(KsTestPasses(sample, [](double x) { return x; }, 0.0),
               util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::mathx
