#include "mathx/summation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fadesched::mathx {
namespace {

TEST(NeumaierSumTest, EmptySumIsZero) {
  NeumaierSum sum;
  EXPECT_DOUBLE_EQ(sum.Total(), 0.0);
}

TEST(NeumaierSumTest, SimpleAddition) {
  NeumaierSum sum;
  sum.Add(1.5);
  sum.Add(2.5);
  EXPECT_DOUBLE_EQ(sum.Total(), 4.0);
}

TEST(NeumaierSumTest, RecoversCancellationNaiveSumLoses) {
  // 1.0 + 1e100 + 1.0 - 1e100 = 2 exactly; naive summation returns 0.
  NeumaierSum sum;
  sum.Add(1.0);
  sum.Add(1e100);
  sum.Add(1.0);
  sum.Add(-1e100);
  EXPECT_DOUBLE_EQ(sum.Total(), 2.0);
}

TEST(NeumaierSumTest, ManySmallOntoLarge) {
  // Adding 1e8 copies of 1e-8 onto 1.0 should give ~2.0 with compensation;
  // scaled down for test speed: 1e6 copies of 1e-6.
  NeumaierSum sum;
  sum.Add(1.0);
  for (int i = 0; i < 1000000; ++i) sum.Add(1e-6);
  EXPECT_NEAR(sum.Total(), 2.0, 1e-9);
}

TEST(NeumaierSumTest, ResetClearsState) {
  NeumaierSum sum;
  sum.Add(5.0);
  sum.Reset();
  EXPECT_DOUBLE_EQ(sum.Total(), 0.0);
}

TEST(CompensatedSumTest, MatchesManualSum) {
  std::vector<double> values{0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(CompensatedSum(values.begin(), values.end()), 1.0, 1e-15);
}

TEST(CompensatedSumTest, EmptyRange) {
  std::vector<double> values;
  EXPECT_DOUBLE_EQ(CompensatedSum(values.begin(), values.end()), 0.0);
}

}  // namespace
}  // namespace fadesched::mathx
