#include "mathx/histogram.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace fadesched::mathx {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.NumBuckets(), 5u);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 8.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(4), 10.0);
}

TEST(HistogramTest, ValuesLandInCorrectBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0);   // bucket 0
  h.Add(2.0);   // bucket 1 (half-open)
  h.Add(9.99);  // bucket 4
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
  EXPECT_EQ(h.TotalCount(), 3u);
}

TEST(HistogramTest, UnderflowAndOverflowCounted) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-0.5);
  h.Add(1.0);  // hi is exclusive -> overflow
  h.Add(2.0);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 2u);
  EXPECT_EQ(h.TotalCount(), 3u);
}

TEST(HistogramTest, EmpiricalCdf) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(2.5);
  h.Add(3.5);
  EXPECT_DOUBLE_EQ(h.EmpiricalCdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(h.EmpiricalCdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(h.EmpiricalCdf(0.0), 0.0);
}

TEST(HistogramTest, AsciiRenderingMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.25);
  h.Add(0.25);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find("##"), std::string::npos);
  EXPECT_NE(art.find("2"), std::string::npos);
}

TEST(HistogramTest, InvalidConstructionRejected) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), util::CheckFailure);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), util::CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), util::CheckFailure);
}

TEST(HistogramTest, OutOfRangeBucketQueryThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.BucketCount(2), util::CheckFailure);
}

}  // namespace
}  // namespace fadesched::mathx
