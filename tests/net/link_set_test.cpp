#include "net/link_set.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace fadesched::net {
namespace {

Link MakeLink(double sx, double sy, double rx, double ry, double rate = 1.0) {
  return Link{{sx, sy}, {rx, ry}, rate};
}

TEST(LinkTest, LengthIsEuclidean) {
  EXPECT_DOUBLE_EQ(MakeLink(0, 0, 3, 4).Length(), 5.0);
}

TEST(LinkSetTest, EmptySet) {
  LinkSet links;
  EXPECT_TRUE(links.Empty());
  EXPECT_EQ(links.Size(), 0u);
  EXPECT_TRUE(links.HasUniformRates());
}

TEST(LinkSetTest, AddReturnsSequentialIds) {
  LinkSet links;
  EXPECT_EQ(links.Add(MakeLink(0, 0, 1, 0)), 0u);
  EXPECT_EQ(links.Add(MakeLink(5, 5, 6, 5)), 1u);
  EXPECT_EQ(links.Size(), 2u);
}

TEST(LinkSetTest, AccessorsMatchInput) {
  LinkSet links;
  links.Add(MakeLink(1, 2, 4, 6, 2.5));
  EXPECT_EQ(links.Sender(0), (geom::Vec2{1, 2}));
  EXPECT_EQ(links.Receiver(0), (geom::Vec2{4, 6}));
  EXPECT_DOUBLE_EQ(links.Rate(0), 2.5);
  EXPECT_DOUBLE_EQ(links.Length(0), 5.0);
  const Link round_trip = links.At(0);
  EXPECT_EQ(round_trip.sender, (geom::Vec2{1, 2}));
  EXPECT_DOUBLE_EQ(round_trip.rate, 2.5);
}

TEST(LinkSetTest, SpanViewsConsistent) {
  LinkSet links;
  links.Add(MakeLink(0, 0, 1, 0));
  links.Add(MakeLink(2, 0, 3, 0, 4.0));
  EXPECT_EQ(links.Senders().size(), 2u);
  EXPECT_EQ(links.Lengths()[1], 1.0);
  EXPECT_EQ(links.Rates()[1], 4.0);
}

TEST(LinkSetTest, ZeroLengthLinkRejected) {
  LinkSet links;
  EXPECT_THROW(links.Add(MakeLink(1, 1, 1, 1)), util::CheckFailure);
}

TEST(LinkSetTest, NonPositiveRateRejected) {
  LinkSet links;
  EXPECT_THROW(links.Add(MakeLink(0, 0, 1, 0, 0.0)), util::CheckFailure);
  EXPECT_THROW(links.Add(MakeLink(0, 0, 1, 0, -1.0)), util::CheckFailure);
}

TEST(LinkSetTest, NonFiniteEndpointRejected) {
  LinkSet links;
  EXPECT_THROW(
      links.Add(Link{{0, 0}, {std::numeric_limits<double>::infinity(), 0}, 1}),
      util::CheckFailure);
}

TEST(LinkSetTest, TotalRateOverSubset) {
  LinkSet links;
  links.Add(MakeLink(0, 0, 1, 0, 1.0));
  links.Add(MakeLink(2, 0, 3, 0, 2.0));
  links.Add(MakeLink(4, 0, 5, 0, 4.0));
  const std::vector<LinkId> subset{0, 2};
  EXPECT_DOUBLE_EQ(links.TotalRate(subset), 5.0);
}

TEST(LinkSetTest, TotalRateRejectsInvalidId) {
  LinkSet links;
  links.Add(MakeLink(0, 0, 1, 0));
  const std::vector<LinkId> bad{3};
  EXPECT_THROW(links.TotalRate(bad), util::CheckFailure);
}

TEST(LinkSetTest, UniformRateDetection) {
  LinkSet links;
  links.Add(MakeLink(0, 0, 1, 0, 2.0));
  links.Add(MakeLink(2, 0, 3, 0, 2.0));
  EXPECT_TRUE(links.HasUniformRates());
  links.Add(MakeLink(4, 0, 5, 0, 3.0));
  EXPECT_FALSE(links.HasUniformRates());
}

TEST(LinkSetTest, BoundingBoxCoversAllEndpoints) {
  LinkSet links;
  links.Add(MakeLink(0, 0, 10, -5));
  links.Add(MakeLink(-3, 7, 1, 1));
  const geom::Aabb box = links.BoundingBox();
  EXPECT_DOUBLE_EQ(box.lo.x, -3.0);
  EXPECT_DOUBLE_EQ(box.lo.y, -5.0);
  EXPECT_DOUBLE_EQ(box.hi.x, 10.0);
  EXPECT_DOUBLE_EQ(box.hi.y, 7.0);
}

TEST(LinkSetTest, MinMaxLength) {
  LinkSet links;
  links.Add(MakeLink(0, 0, 2, 0));
  links.Add(MakeLink(0, 0, 0, 7));
  links.Add(MakeLink(0, 0, 1, 0));
  EXPECT_DOUBLE_EQ(links.MinLength(), 1.0);
  EXPECT_DOUBLE_EQ(links.MaxLength(), 7.0);
}

TEST(LinkSetTest, EmptySetQueriesThrow) {
  LinkSet links;
  EXPECT_THROW(links.BoundingBox(), util::CheckFailure);
  EXPECT_THROW(links.MinLength(), util::CheckFailure);
  EXPECT_THROW(links.MaxLength(), util::CheckFailure);
}

TEST(LinkSetTest, SubsetPreservesOrderAndData) {
  LinkSet links;
  links.Add(MakeLink(0, 0, 1, 0, 1.0));
  links.Add(MakeLink(2, 0, 3, 0, 2.0));
  links.Add(MakeLink(4, 0, 5, 0, 3.0));
  const std::vector<LinkId> ids{2, 0};
  const LinkSet subset = links.Subset(ids);
  ASSERT_EQ(subset.Size(), 2u);
  EXPECT_DOUBLE_EQ(subset.Rate(0), 3.0);
  EXPECT_DOUBLE_EQ(subset.Rate(1), 1.0);
}

TEST(LinkSetTest, ConstructFromSpan) {
  const std::vector<Link> raw{MakeLink(0, 0, 1, 0), MakeLink(2, 0, 3, 0)};
  const LinkSet links(raw);
  EXPECT_EQ(links.Size(), 2u);
}

}  // namespace
}  // namespace fadesched::net
