#include "net/scenario_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace fadesched::net {
namespace {

TEST(ScenarioIoTest, CsvHasExpectedColumns) {
  LinkSet links;
  links.Add(Link{{1, 2}, {3, 4}, 5.0});
  const util::CsvTable table = ToCsv(links);
  EXPECT_EQ(table.Header(),
            (std::vector<std::string>{"sx", "sy", "rx", "ry", "rate"}));
  EXPECT_EQ(table.NumRows(), 1u);
}

TEST(ScenarioIoTest, TableRoundTripPreservesValues) {
  rng::Xoshiro256 gen(1);
  const LinkSet links = MakeUniformScenario(50, {}, gen);
  const LinkSet parsed = FromCsv(ToCsv(links));
  ASSERT_EQ(parsed.Size(), links.Size());
  for (LinkId i = 0; i < links.Size(); ++i) {
    EXPECT_NEAR(parsed.Sender(i).x, links.Sender(i).x, 1e-9);
    EXPECT_NEAR(parsed.Sender(i).y, links.Sender(i).y, 1e-9);
    EXPECT_NEAR(parsed.Receiver(i).x, links.Receiver(i).x, 1e-9);
    EXPECT_NEAR(parsed.Receiver(i).y, links.Receiver(i).y, 1e-9);
    EXPECT_NEAR(parsed.Rate(i), links.Rate(i), 1e-9);
  }
}

TEST(ScenarioIoTest, FileRoundTrip) {
  rng::Xoshiro256 gen(2);
  const LinkSet links = MakeUniformScenario(20, {}, gen);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fadesched_io_test.csv")
          .string();
  SaveLinkSet(links, path);
  const LinkSet loaded = LoadLinkSet(path);
  EXPECT_EQ(loaded.Size(), links.Size());
  std::remove(path.c_str());
}

TEST(ScenarioIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadLinkSet("/nonexistent/dir/links.csv"), util::CheckFailure);
}

TEST(ScenarioIoTest, UnwritablePathThrows) {
  rng::Xoshiro256 gen(3);
  const LinkSet links = MakeUniformScenario(2, {}, gen);
  // Atomic writes classify I/O failures as transient harness errors.
  try {
    SaveLinkSet(links, "/nonexistent/dir/links.csv");
    FAIL() << "expected HarnessError";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTransient);
  }
}

TEST(ScenarioIoTest, MalformedCsvRejected) {
  const util::CsvTable bad =
      util::CsvTable::ParseString("sx,sy,rx,ry,rate\n1,2,3,four,5\n");
  EXPECT_THROW(FromCsv(bad), util::CheckFailure);
}

TEST(ScenarioIoTest, MissingColumnRejected) {
  const util::CsvTable bad = util::CsvTable::ParseString("sx,sy\n1,2\n");
  EXPECT_THROW(FromCsv(bad), util::CheckFailure);
}

TEST(ScenarioIoTest, InvalidLinkDataRejectedOnLoad) {
  // Zero-length link (sender == receiver) must fail LinkSet validation.
  const util::CsvTable bad =
      util::CsvTable::ParseString("sx,sy,rx,ry,rate\n1,1,1,1,1\n");
  EXPECT_THROW(FromCsv(bad), util::CheckFailure);
}

TEST(ScenarioIoTest, EmptyLinkSetRoundTrips) {
  const LinkSet empty;
  const LinkSet parsed = FromCsv(ToCsv(empty));
  EXPECT_TRUE(parsed.Empty());
}

TEST(ScenarioIoTest, MalformedRowsNameTheOffendingRow) {
  // Every rejection must point at the 1-based data row so a bad line in a
  // large scenario file is findable. The first data row is row 1.
  struct Case {
    const char* name;
    const char* csv;
    const char* expected_fragment;
  };
  const Case cases[] = {
      {"malformed number",
       "sx,sy,rx,ry,rate\n0,0,1,0,1\n1,zzz,2,0,1\n",
       "scenario row 2: malformed value in column sy"},
      {"nan coordinate",
       "sx,sy,rx,ry,rate\nnan,0,1,0,1\n",
       "scenario row 1: non-finite value in column sx"},
      {"inf coordinate",
       "sx,sy,rx,ry,rate\n0,0,inf,0,1\n",
       "scenario row 1: non-finite value in column rx"},
      {"negative rate",
       "sx,sy,rx,ry,rate\n0,0,1,0,1\n0,1,1,1,-2\n",
       "scenario row 2: rate must be positive"},
      {"zero rate",
       "sx,sy,rx,ry,rate\n0,0,1,0,0\n",
       "scenario row 1: rate must be positive"},
      {"infinite rate",
       "sx,sy,rx,ry,rate\n0,0,1,0,inf\n",
       "scenario row 1: non-finite value in column rate"},
      {"zero-length link",
       "sx,sy,rx,ry,rate\n0,0,1,0,1\n0,0,1,0,1\n5,5,5,5,1\n",
       "scenario row 3"},
      {"negative tx_power",
       "sx,sy,rx,ry,rate,tx_power\n0,0,1,0,1,-3\n",
       "scenario row 1: tx_power must be non-negative"},
  };
  for (const Case& c : cases) {
    const util::CsvTable table = util::CsvTable::ParseString(c.csv);
    try {
      FromCsv(table);
      FAIL() << c.name << ": expected CheckFailure";
    } catch (const util::CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find(c.expected_fragment),
                std::string::npos)
          << c.name << ": got \"" << e.what() << '"';
    }
  }
}

}  // namespace
}  // namespace fadesched::net
