#include "net/scenario_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::net {
namespace {

TEST(ScenarioIoTest, CsvHasExpectedColumns) {
  LinkSet links;
  links.Add(Link{{1, 2}, {3, 4}, 5.0});
  const util::CsvTable table = ToCsv(links);
  EXPECT_EQ(table.Header(),
            (std::vector<std::string>{"sx", "sy", "rx", "ry", "rate"}));
  EXPECT_EQ(table.NumRows(), 1u);
}

TEST(ScenarioIoTest, TableRoundTripPreservesValues) {
  rng::Xoshiro256 gen(1);
  const LinkSet links = MakeUniformScenario(50, {}, gen);
  const LinkSet parsed = FromCsv(ToCsv(links));
  ASSERT_EQ(parsed.Size(), links.Size());
  for (LinkId i = 0; i < links.Size(); ++i) {
    EXPECT_NEAR(parsed.Sender(i).x, links.Sender(i).x, 1e-9);
    EXPECT_NEAR(parsed.Sender(i).y, links.Sender(i).y, 1e-9);
    EXPECT_NEAR(parsed.Receiver(i).x, links.Receiver(i).x, 1e-9);
    EXPECT_NEAR(parsed.Receiver(i).y, links.Receiver(i).y, 1e-9);
    EXPECT_NEAR(parsed.Rate(i), links.Rate(i), 1e-9);
  }
}

TEST(ScenarioIoTest, FileRoundTrip) {
  rng::Xoshiro256 gen(2);
  const LinkSet links = MakeUniformScenario(20, {}, gen);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fadesched_io_test.csv")
          .string();
  SaveLinkSet(links, path);
  const LinkSet loaded = LoadLinkSet(path);
  EXPECT_EQ(loaded.Size(), links.Size());
  std::remove(path.c_str());
}

TEST(ScenarioIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadLinkSet("/nonexistent/dir/links.csv"), util::CheckFailure);
}

TEST(ScenarioIoTest, UnwritablePathThrows) {
  rng::Xoshiro256 gen(3);
  const LinkSet links = MakeUniformScenario(2, {}, gen);
  EXPECT_THROW(SaveLinkSet(links, "/nonexistent/dir/links.csv"),
               util::CheckFailure);
}

TEST(ScenarioIoTest, MalformedCsvRejected) {
  const util::CsvTable bad =
      util::CsvTable::ParseString("sx,sy,rx,ry,rate\n1,2,3,four,5\n");
  EXPECT_THROW(FromCsv(bad), util::CheckFailure);
}

TEST(ScenarioIoTest, MissingColumnRejected) {
  const util::CsvTable bad = util::CsvTable::ParseString("sx,sy\n1,2\n");
  EXPECT_THROW(FromCsv(bad), util::CheckFailure);
}

TEST(ScenarioIoTest, InvalidLinkDataRejectedOnLoad) {
  // Zero-length link (sender == receiver) must fail LinkSet validation.
  const util::CsvTable bad =
      util::CsvTable::ParseString("sx,sy,rx,ry,rate\n1,1,1,1,1\n");
  EXPECT_THROW(FromCsv(bad), util::CheckFailure);
}

TEST(ScenarioIoTest, EmptyLinkSetRoundTrips) {
  const LinkSet empty;
  const LinkSet parsed = FromCsv(ToCsv(empty));
  EXPECT_TRUE(parsed.Empty());
}

}  // namespace
}  // namespace fadesched::net
