#include "net/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/scenario.hpp"
#include "util/check.hpp"

namespace fadesched::net {
namespace {

LinkSet SmallTopology(std::uint64_t seed, std::size_t n = 30) {
  rng::Xoshiro256 gen(seed);
  return MakeUniformScenario(n, {}, gen);
}

TEST(MobilityTest, LinkLengthsInvariantUnderMotion) {
  // Sender and receiver move rigidly, so every length — and with it the
  // length diversity driving LDP — must stay exactly fixed.
  const LinkSet initial = SmallTopology(1);
  RandomWaypointMobility mob(initial, {}, rng::Xoshiro256(7));
  mob.Advance(200);
  const LinkSet& moved = mob.Current();
  ASSERT_EQ(moved.Size(), initial.Size());
  for (LinkId i = 0; i < initial.Size(); ++i) {
    EXPECT_NEAR(moved.Length(i), initial.Length(i), 1e-9);
  }
}

TEST(MobilityTest, NodesActuallyMove) {
  const LinkSet initial = SmallTopology(2);
  RandomWaypointMobility mob(initial, {}, rng::Xoshiro256(8));
  mob.Advance(50);
  double total_displacement = 0.0;
  for (LinkId i = 0; i < initial.Size(); ++i) {
    total_displacement +=
        geom::Distance(mob.Current().Sender(i), initial.Sender(i));
  }
  EXPECT_GT(total_displacement / static_cast<double>(initial.Size()), 10.0);
}

TEST(MobilityTest, StepDisplacementBoundedBySpeed) {
  const LinkSet initial = SmallTopology(3);
  MobilityParams params;
  params.min_speed = 0.5;
  params.max_speed = 2.0;
  RandomWaypointMobility mob(initial, params, rng::Xoshiro256(9));
  LinkSet before = mob.Current();
  mob.Step();
  for (LinkId i = 0; i < before.Size(); ++i) {
    EXPECT_LE(geom::Distance(mob.Current().Sender(i), before.Sender(i)),
              params.max_speed + 1e-9);
  }
}

TEST(MobilityTest, SendersStayNearRegion) {
  // Waypoints live inside the region; after a long walk every sender must
  // be inside it (receivers can lag by one link length).
  const LinkSet initial = SmallTopology(4);
  MobilityParams params;
  RandomWaypointMobility mob(initial, params, rng::Xoshiro256(10));
  mob.Advance(2000);
  for (LinkId i = 0; i < mob.Current().Size(); ++i) {
    const geom::Vec2 s = mob.Current().Sender(i);
    EXPECT_GE(s.x, -50.0);
    EXPECT_LE(s.x, params.region_size + 50.0);
    EXPECT_GE(s.y, -50.0);
    EXPECT_LE(s.y, params.region_size + 50.0);
  }
}

TEST(MobilityTest, DeterministicForSeed) {
  const LinkSet initial = SmallTopology(5);
  RandomWaypointMobility a(initial, {}, rng::Xoshiro256(11));
  RandomWaypointMobility b(initial, {}, rng::Xoshiro256(11));
  a.Advance(100);
  b.Advance(100);
  for (LinkId i = 0; i < initial.Size(); ++i) {
    EXPECT_EQ(a.Current().Sender(i), b.Current().Sender(i));
  }
}

TEST(MobilityTest, StepsTakenCounts) {
  RandomWaypointMobility mob(SmallTopology(6), {}, rng::Xoshiro256(12));
  EXPECT_EQ(mob.StepsTaken(), 0u);
  mob.Advance(17);
  EXPECT_EQ(mob.StepsTaken(), 17u);
}

TEST(MobilityTest, InvalidParamsRejected) {
  MobilityParams bad;
  bad.min_speed = 0.0;
  EXPECT_THROW(
      RandomWaypointMobility(SmallTopology(7), bad, rng::Xoshiro256(1)),
      util::CheckFailure);
  bad = MobilityParams{};
  bad.max_speed = 0.1;  // < min
  EXPECT_THROW(
      RandomWaypointMobility(SmallTopology(7), bad, rng::Xoshiro256(1)),
      util::CheckFailure);
}

TEST(MobilityTest, RatesAndPowersPreserved) {
  rng::Xoshiro256 gen(8);
  LinkSet initial = MakeWeightedScenario(20, {}, gen);
  RandomWaypointMobility mob(initial, {}, rng::Xoshiro256(13));
  mob.Advance(30);
  for (LinkId i = 0; i < initial.Size(); ++i) {
    EXPECT_DOUBLE_EQ(mob.Current().Rate(i), initial.Rate(i));
    EXPECT_DOUBLE_EQ(mob.Current().TxPower(i), initial.TxPower(i));
  }
}

}  // namespace
}  // namespace fadesched::net
