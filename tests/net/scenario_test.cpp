#include "net/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace fadesched::net {
namespace {

TEST(UniformScenarioTest, ProducesRequestedCount) {
  rng::Xoshiro256 gen(1);
  const LinkSet links = MakeUniformScenario(250, {}, gen);
  EXPECT_EQ(links.Size(), 250u);
}

TEST(UniformScenarioTest, SendersInsideRegion) {
  rng::Xoshiro256 gen(2);
  UniformScenarioParams params;
  params.region_size = 100.0;
  const LinkSet links = MakeUniformScenario(500, params, gen);
  for (const auto& s : links.Senders()) {
    EXPECT_GE(s.x, 0.0);
    EXPECT_LT(s.x, 100.0);
    EXPECT_GE(s.y, 0.0);
    EXPECT_LT(s.y, 100.0);
  }
}

TEST(UniformScenarioTest, LinkLengthsWithinPaperBounds) {
  // Paper §V: lengths uniform in [5, 20].
  rng::Xoshiro256 gen(3);
  const LinkSet links = MakeUniformScenario(500, {}, gen);
  for (double len : links.Lengths()) {
    EXPECT_GE(len, 5.0 - 1e-9);
    EXPECT_LT(len, 20.0 + 1e-9);
  }
}

TEST(UniformScenarioTest, RatesAreUniformlyOne) {
  rng::Xoshiro256 gen(4);
  const LinkSet links = MakeUniformScenario(100, {}, gen);
  EXPECT_TRUE(links.HasUniformRates());
  EXPECT_DOUBLE_EQ(links.Rate(0), 1.0);
}

TEST(UniformScenarioTest, DeterministicPerSeed) {
  rng::Xoshiro256 gen_a(5);
  rng::Xoshiro256 gen_b(5);
  const LinkSet a = MakeUniformScenario(50, {}, gen_a);
  const LinkSet b = MakeUniformScenario(50, {}, gen_b);
  for (LinkId i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(a.Sender(i), b.Sender(i));
    EXPECT_EQ(a.Receiver(i), b.Receiver(i));
  }
}

TEST(UniformScenarioTest, DifferentSeedsDiffer) {
  rng::Xoshiro256 gen_a(6);
  rng::Xoshiro256 gen_b(7);
  const LinkSet a = MakeUniformScenario(10, {}, gen_a);
  const LinkSet b = MakeUniformScenario(10, {}, gen_b);
  EXPECT_NE(a.Sender(0), b.Sender(0));
}

TEST(UniformScenarioTest, ZeroLinksIsEmpty) {
  rng::Xoshiro256 gen(8);
  EXPECT_TRUE(MakeUniformScenario(0, {}, gen).Empty());
}

TEST(UniformScenarioTest, InvalidParamsRejected) {
  rng::Xoshiro256 gen(9);
  UniformScenarioParams params;
  params.min_link_length = 20.0;
  params.max_link_length = 5.0;
  EXPECT_THROW(MakeUniformScenario(10, params, gen), util::CheckFailure);
}

TEST(WeightedScenarioTest, RatesSpanRequestedRange) {
  rng::Xoshiro256 gen(10);
  WeightedScenarioParams params;
  params.min_rate = 2.0;
  params.max_rate = 8.0;
  const LinkSet links = MakeWeightedScenario(300, params, gen);
  EXPECT_FALSE(links.HasUniformRates());
  for (double r : links.Rates()) {
    EXPECT_GE(r, 2.0);
    EXPECT_LT(r, 8.0);
  }
}

TEST(WeightedScenarioTest, GeometryStillPaperShaped) {
  rng::Xoshiro256 gen(11);
  const LinkSet links = MakeWeightedScenario(100, {}, gen);
  for (double len : links.Lengths()) {
    EXPECT_GE(len, 5.0 - 1e-9);
    EXPECT_LT(len, 20.0 + 1e-9);
  }
}

TEST(ClusteredScenarioTest, ProducesRequestedCount) {
  rng::Xoshiro256 gen(12);
  const LinkSet links = MakeClusteredScenario(123, {}, gen);
  EXPECT_EQ(links.Size(), 123u);
}

TEST(ClusteredScenarioTest, IsDenserThanUniform) {
  // Mean nearest-neighbour distance between senders should be clearly
  // smaller in the clustered layout than in the uniform one.
  auto mean_nn = [](const LinkSet& links) {
    double total = 0.0;
    for (LinkId i = 0; i < links.Size(); ++i) {
      double best = 1e30;
      for (LinkId j = 0; j < links.Size(); ++j) {
        if (i == j) continue;
        best = std::min(best,
                        geom::Distance(links.Sender(i), links.Sender(j)));
      }
      total += best;
    }
    return total / static_cast<double>(links.Size());
  };
  rng::Xoshiro256 gen(13);
  const LinkSet uniform = MakeUniformScenario(200, {}, gen);
  ClusteredScenarioParams cp;
  cp.cluster_stddev = 10.0;
  const LinkSet clustered = MakeClusteredScenario(200, cp, gen);
  EXPECT_LT(mean_nn(clustered), mean_nn(uniform));
}

TEST(ClusteredScenarioTest, InvalidClusterCountRejected) {
  rng::Xoshiro256 gen(14);
  ClusteredScenarioParams params;
  params.num_clusters = 0;
  EXPECT_THROW(MakeClusteredScenario(10, params, gen), util::CheckFailure);
}

TEST(DiverseLengthScenarioTest, CoversManyOctaves) {
  rng::Xoshiro256 gen(15);
  DiverseLengthScenarioParams params;
  params.length_octaves = 6;
  const LinkSet links = MakeDiverseLengthScenario(600, params, gen);
  // With 100 links per octave on average, min and max length must span
  // at least a factor 2^4.
  EXPECT_GT(links.MaxLength() / links.MinLength(), 16.0);
}

TEST(DiverseLengthScenarioTest, LengthsRespectOctaveBounds) {
  rng::Xoshiro256 gen(16);
  DiverseLengthScenarioParams params;
  params.min_link_length = 2.0;
  params.length_octaves = 3;
  const LinkSet links = MakeDiverseLengthScenario(200, params, gen);
  for (double len : links.Lengths()) {
    EXPECT_GE(len, 2.0 - 1e-9);
    EXPECT_LT(len, 2.0 * std::pow(2.0, 3.0) + 1e-9);
  }
}

}  // namespace
}  // namespace fadesched::net
