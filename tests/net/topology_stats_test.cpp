#include "net/topology_stats.hpp"

#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::net {
namespace {

LinkSet LinksWithLengths(std::initializer_list<double> lengths) {
  LinkSet links;
  double y = 0.0;
  for (double len : lengths) {
    links.Add(Link{{0.0, y}, {len, y}, 1.0});
    y += 1000.0;  // spread rows out; only lengths matter here
  }
  return links;
}

TEST(LengthMagnitudeTest, ShortestLinkIsMagnitudeZero) {
  EXPECT_EQ(LengthMagnitude(5.0, 5.0), 0);
}

TEST(LengthMagnitudeTest, PowersOfTwo) {
  EXPECT_EQ(LengthMagnitude(10.0, 5.0), 1);
  EXPECT_EQ(LengthMagnitude(20.0, 5.0), 2);
  EXPECT_EQ(LengthMagnitude(19.99, 5.0), 1);
}

TEST(LengthMagnitudeTest, InvalidInputsRejected) {
  EXPECT_THROW(LengthMagnitude(0.0, 5.0), util::CheckFailure);
  EXPECT_THROW(LengthMagnitude(5.0, 0.0), util::CheckFailure);
}

TEST(LengthDiversityTest, SingleLengthHasDiversityOne) {
  const LinkSet links = LinksWithLengths({7.0, 7.0, 7.0});
  EXPECT_EQ(LengthDiversity(links), 1u);
  EXPECT_EQ(LengthDiversitySet(links), (std::vector<int>{0}));
}

TEST(LengthDiversityTest, PaperRangeHasSmallDiversity) {
  // Lengths in [5, 20] span two binary octaves, so g(L) <= 2.
  rng::Xoshiro256 gen(1);
  const LinkSet links = MakeUniformScenario(400, {}, gen);
  EXPECT_LE(LengthDiversity(links), 2u);
  EXPECT_GE(LengthDiversity(links), 1u);
}

TEST(LengthDiversityTest, SparseMagnitudesListedExactly) {
  const LinkSet links = LinksWithLengths({1.0, 2.5, 40.0});
  // magnitudes: 0 (1.0), 1 (2.5), 5 (40 -> floor(log2 40) = 5).
  EXPECT_EQ(LengthDiversitySet(links), (std::vector<int>{0, 1, 5}));
  EXPECT_EQ(LengthDiversity(links), 3u);
}

TEST(LengthDiversityTest, EmptySetThrows) {
  const LinkSet empty;
  EXPECT_THROW(LengthDiversity(empty), util::CheckFailure);
}

TEST(OneSidedLengthClassTest, ContainsAllShorterLinks) {
  const LinkSet links = LinksWithLengths({1.0, 1.5, 3.0, 9.0});
  // δ = 1. Class h=0: length < 2 -> {0, 1}. Class h=1: < 4 -> {0, 1, 2}.
  // Class h=3: < 16 -> all.
  EXPECT_EQ(OneSidedLengthClass(links, 0), (std::vector<LinkId>{0, 1}));
  EXPECT_EQ(OneSidedLengthClass(links, 1), (std::vector<LinkId>{0, 1, 2}));
  EXPECT_EQ(OneSidedLengthClass(links, 3), (std::vector<LinkId>{0, 1, 2, 3}));
}

TEST(TwoSidedLengthClassTest, DisjointPartition) {
  const LinkSet links = LinksWithLengths({1.0, 1.5, 3.0, 9.0});
  EXPECT_EQ(TwoSidedLengthClass(links, 0), (std::vector<LinkId>{0, 1}));
  EXPECT_EQ(TwoSidedLengthClass(links, 1), (std::vector<LinkId>{2}));
  EXPECT_EQ(TwoSidedLengthClass(links, 2), (std::vector<LinkId>{}));
  EXPECT_EQ(TwoSidedLengthClass(links, 3), (std::vector<LinkId>{3}));
}

TEST(TwoSidedLengthClassTest, UnionOverMagnitudesCoversEverything) {
  rng::Xoshiro256 gen(2);
  DiverseLengthScenarioParams params;
  const LinkSet links = MakeDiverseLengthScenario(200, params, gen);
  std::size_t total = 0;
  for (int h : LengthDiversitySet(links)) {
    total += TwoSidedLengthClass(links, h).size();
  }
  EXPECT_EQ(total, links.Size());
}

TEST(OneSidedClassTest, SupersetOfTwoSided) {
  rng::Xoshiro256 gen(3);
  DiverseLengthScenarioParams params;
  const LinkSet links = MakeDiverseLengthScenario(150, params, gen);
  for (int h : LengthDiversitySet(links)) {
    const auto one = OneSidedLengthClass(links, h);
    const auto two = TwoSidedLengthClass(links, h);
    for (LinkId id : two) {
      EXPECT_NE(std::find(one.begin(), one.end(), id), one.end());
    }
  }
}

TEST(DistanceRatioTest, TwoLinksKnownRatio) {
  LinkSet links;
  links.Add(Link{{0, 0}, {1, 0}, 1.0});
  links.Add(Link{{10, 0}, {11, 0}, 1.0});
  // Nodes at x = 0, 1, 10, 11: min pairwise distance 1, max 11.
  EXPECT_DOUBLE_EQ(DistanceRatio(links), 11.0);
}

TEST(DistanceRatioTest, AtLeastOne) {
  rng::Xoshiro256 gen(4);
  const LinkSet links = MakeUniformScenario(30, {}, gen);
  EXPECT_GE(DistanceRatio(links), 1.0);
}

TEST(DistanceRatioTest, IgnoresCoincidentNodes) {
  LinkSet links;
  links.Add(Link{{0, 0}, {1, 0}, 1.0});
  links.Add(Link{{0, 0}, {0, 2}, 1.0});  // shares a sender position
  EXPECT_DOUBLE_EQ(DistanceRatio(links), std::sqrt(5.0));
}

}  // namespace
}  // namespace fadesched::net
