// The router↔worker pipe envelope: length-prefixed framing over a
// trusted SOCK_STREAM socketpair. Contracts: lossless round-trip of
// every message kind, correct reassembly under arbitrary byte-chunking,
// and loud kFatal failure on a torn stream (bad magic / kind / absurd
// length) — a framing bug is a worker bug, never retryable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/shard/pipe.hpp"
#include "util/error.hpp"

namespace fadesched::service::shard {
namespace {

PipeMsg Msg(PipeMsgKind kind, std::uint64_t ticket, std::string payload) {
  PipeMsg msg;
  msg.kind = kind;
  msg.ticket = ticket;
  msg.payload = std::move(payload);
  return msg;
}

TEST(PipeTest, RoundTripsEveryKind) {
  const std::vector<PipeMsg> in = {
      Msg(PipeMsgKind::kRequest, 1, "REQUEST id=a\nbody\nEND\n"),
      Msg(PipeMsgKind::kResponse, 2, "OK sum=0 id=a"),
      Msg(PipeMsgKind::kStatsQuery, 3, ""),
      Msg(PipeMsgKind::kStatsReply, 0xffffffffffffffffULL, "STATS x=1"),
  };
  std::string wire;
  for (const PipeMsg& msg : in) AppendPipeMsg(wire, msg);

  PipeDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  for (const PipeMsg& want : in) {
    const auto got = decoder.Pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->kind, want.kind);
    EXPECT_EQ(got->ticket, want.ticket);
    EXPECT_EQ(got->payload, want.payload);
  }
  EXPECT_FALSE(decoder.Pop().has_value());
  EXPECT_FALSE(decoder.MidMessage());
}

TEST(PipeTest, ReassemblesAcrossArbitraryChunking) {
  std::string wire;
  for (int i = 0; i < 20; ++i) {
    AppendPipeMsg(wire, Msg(PipeMsgKind::kResponse,
                            static_cast<std::uint64_t>(i),
                            std::string(static_cast<std::size_t>(i) * 7,
                                        static_cast<char>('a' + i % 26))));
  }
  // Byte-at-a-time is the worst case every other chunking reduces to.
  PipeDecoder decoder;
  std::size_t seen = 0;
  for (const char byte : wire) {
    decoder.Feed(&byte, 1);
    while (const auto msg = decoder.Pop()) {
      EXPECT_EQ(msg->ticket, seen);
      EXPECT_EQ(msg->payload.size(), seen * 7);
      ++seen;
    }
  }
  EXPECT_EQ(seen, 20u);
}

TEST(PipeTest, MidMessageReportsPartialEnvelope) {
  std::string wire;
  AppendPipeMsg(wire, Msg(PipeMsgKind::kRequest, 9, "payload-bytes"));
  PipeDecoder decoder;
  decoder.Feed(wire.data(), wire.size() - 3);
  EXPECT_FALSE(decoder.Pop().has_value());
  EXPECT_TRUE(decoder.MidMessage());
  decoder.Feed(wire.data() + wire.size() - 3, 3);
  const auto msg = decoder.Pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "payload-bytes");
  EXPECT_FALSE(decoder.MidMessage());
}

TEST(PipeTest, BadMagicIsFatal) {
  std::string wire;
  AppendPipeMsg(wire, Msg(PipeMsgKind::kRequest, 1, "x"));
  wire[0] ^= 0x40;  // corrupt the magic
  PipeDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  try {
    decoder.Pop();
    FAIL() << "torn stream decoded";
  } catch (const util::HarnessError& error) {
    EXPECT_EQ(error.kind(), util::ErrorKind::kFatal) << error.what();
  }
}

TEST(PipeTest, UnknownKindIsFatal) {
  std::string wire;
  AppendPipeMsg(wire, Msg(PipeMsgKind::kRequest, 1, "x"));
  wire[4] = 0x7f;  // kind field, little-endian low byte
  PipeDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  EXPECT_THROW(decoder.Pop(), util::HarnessError);
}

TEST(PipeTest, AbsurdLengthIsFatalNotAnAllocation) {
  std::string wire;
  AppendPipeMsg(wire, Msg(PipeMsgKind::kRequest, 1, "x"));
  // Length field sits after magic(4) + kind(4) + ticket(8).
  wire[16] = '\xff';
  wire[17] = '\xff';
  wire[18] = '\xff';
  wire[19] = '\x7f';
  PipeDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  EXPECT_THROW(decoder.Pop(), util::HarnessError);
}

TEST(PipeTest, OversizedPayloadRefusesToSerialize) {
  PipeMsg msg;
  msg.kind = PipeMsgKind::kRequest;
  msg.payload.resize(kMaxPipePayloadBytes + 1);
  std::string wire;
  EXPECT_THROW(AppendPipeMsg(wire, msg), util::HarnessError);
}

}  // namespace
}  // namespace fadesched::service::shard
