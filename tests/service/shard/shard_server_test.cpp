// End-to-end drills of the sharded serving tier over a real Unix-domain
// socket: response byte-identity across shard counts (the router must be
// invisible in the bytes), tier-wide STATS aggregation, warm-affinity vs
// round-robin placement, worker-kill recovery with minimal remap, and a
// SIGHUP rolling restart under live traffic. These tests fork real shard
// processes, so they live in their own binary.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/shard/shard_server.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service::shard {
namespace {

std::string UniqueSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_shard_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock"))
      .string();
}

std::string Frame(std::uint64_t case_index, const std::string& id) {
  fadesched::testing::ScenarioFuzzer fuzzer(21);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(case_index);
  request.scheduler = "rle";
  request.id = id;
  return FormatRequestFrame(request);
}

class ShardServerTest : public ::testing::Test {
 protected:
  void StartServer(const char* tag, std::size_t shards,
                   RoutingMode routing = RoutingMode::kAffinity,
                   const std::function<void(ShardServerOptions&)>& tweak = {}) {
    options_ = ShardServerOptions{};
    options_.server.unix_socket_path = UniqueSocketPath(tag);
    options_.server.service.batcher.num_workers = 2;
    options_.server.service.cache.capacity_bytes = 32u << 20;
    options_.num_shards = shards;
    options_.routing = routing;
    options_.supervisor.drain_grace_seconds = 5.0;
    if (tweak) tweak(options_);
    server_ = std::make_unique<ShardServer>(options_);
    server_->Start();
    serving_ = std::thread([this] { server_->Serve(); });
  }

  void StopServer() {
    if (server_ == nullptr) return;
    server_->Stop();
    if (serving_.joinable()) serving_.join();
  }

  void TearDown() override { StopServer(); }

  std::unique_ptr<Client> Connect() {
    auto client = std::make_unique<Client>();
    client->ConnectUnix(options_.server.unix_socket_path);
    return client;
  }

  ShardServerOptions options_;
  std::unique_ptr<ShardServer> server_;
  std::thread serving_;
};

/// Raw OK lines for the given scenarios, in order, over one connection.
std::vector<std::string> CollectLines(Client& client, std::size_t scenarios,
                                      const char* id_prefix) {
  std::vector<std::string> lines;
  for (std::size_t s = 0; s < scenarios; ++s) {
    client.SendRaw(Frame(s, id_prefix + std::to_string(s)));
    lines.push_back(client.ReadLine());
  }
  return lines;
}

TEST_F(ShardServerTest, ResponsesAreByteIdenticalAcrossShardCounts) {
  // THE routing-transparency contract from the issue: for a given
  // fingerprint the response bytes must not depend on how many shards
  // served it.
  StartServer("one", 1);
  const std::unique_ptr<Client> one = Connect();
  const std::vector<std::string> lines_one = CollectLines(*one, 6, "x");
  one->Close();
  StopServer();

  StartServer("four", 4);
  const std::unique_ptr<Client> four = Connect();
  const std::vector<std::string> lines_four = CollectLines(*four, 6, "x");
  for (std::size_t s = 0; s < lines_one.size(); ++s) {
    EXPECT_EQ(lines_one[s], lines_four[s]) << "scenario " << s;
    const SchedulingResponse response = ParseResponseLine(lines_four[s]);
    EXPECT_TRUE(response.Ok()) << response.message;
  }
}

TEST_F(ShardServerTest, RepeatsAreServedFromTheWarmShard) {
  StartServer("warm", 4);
  const std::unique_ptr<Client> client = Connect();
  // Three passes over the same scenarios: pass 1 builds, passes 2-3 must
  // be response-cache hits on whichever shard owns each fingerprint.
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t s = 0; s < 8; ++s) {
      client->SendRaw(Frame(s, "p" + std::to_string(pass) + "_" +
                                  std::to_string(s)));
      const SchedulingResponse response =
          ParseResponseLine(client->ReadLine());
      ASSERT_TRUE(response.Ok()) << response.message;
    }
  }
  const StatsSnapshot stats = client->Stats();
  EXPECT_EQ(stats.submitted, 24u) << "aggregate must cover all shards";
  EXPECT_GT(stats.WarmHitRate(), 0.5)
      << "affinity routing must land repeats on the warm shard";
}

TEST_F(ShardServerTest, AffinityBeatsRoundRobinOnWarmHits) {
  // Identical seeded traffic through both placement policies; only the
  // placement differs, so any warm-hit gap is pure routing. Pool size 9
  // is coprime with 4 shards, so round-robin sprays each scenario across
  // different shards pass over pass.
  const auto run = [&](const char* tag, RoutingMode mode) {
    StartServer(tag, 4, mode);
    const std::unique_ptr<Client> client = Connect();
    for (int pass = 0; pass < 4; ++pass) {
      for (std::size_t s = 0; s < 9; ++s) {
        client->SendRaw(Frame(s, "q" + std::to_string(pass) + "_" +
                                    std::to_string(s)));
        const SchedulingResponse response =
            ParseResponseLine(client->ReadLine());
        EXPECT_TRUE(response.Ok()) << response.message;
      }
    }
    const StatsSnapshot stats = client->Stats();
    client->Close();
    StopServer();
    return stats.WarmHitRate();
  };
  const double affinity = run("aff", RoutingMode::kAffinity);
  const double round_robin = run("rr", RoutingMode::kRoundRobin);
  EXPECT_GT(affinity, round_robin)
      << "affinity=" << affinity << " round_robin=" << round_robin;
}

TEST_F(ShardServerTest, StatsAggregatesEveryShard) {
  StartServer("stats", 3);
  const std::unique_ptr<Client> client = Connect();
  for (std::size_t s = 0; s < 12; ++s) {
    client->SendRaw(Frame(s, "s" + std::to_string(s)));
    ASSERT_TRUE(ParseResponseLine(client->ReadLine()).Ok());
  }
  const StatsSnapshot stats = client->Stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(ShardServerTest, KilledWorkerRespawnsAndKeepsServing) {
  StartServer("kill", 2);
  const std::unique_ptr<Client> client = Connect();
  for (std::size_t s = 0; s < 6; ++s) {
    client->SendRaw(Frame(s, "k" + std::to_string(s)));
    ASSERT_TRUE(ParseResponseLine(client->ReadLine()).Ok());
  }

  const pid_t victim = server_->WorkerPid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  // Wait for the respawn (crash-path respawn is immediate once reaped).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->WorkerPid(0) == victim ||
         server_->WorkerPid(0) <= 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "worker never respawned";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Same fingerprints, same bytes — the respawned shard re-owns the same
  // arc (cold, but correct), and the other shard's keys never moved.
  for (std::size_t s = 0; s < 6; ++s) {
    client->SendRaw(Frame(s, "k" + std::to_string(s)));
    const SchedulingResponse response = ParseResponseLine(client->ReadLine());
    EXPECT_TRUE(response.Ok()) << response.message;
  }
  StopServer();

  const SupervisorReport& report = server_->Report();
  EXPECT_GE(report.crashes, 1u);
  ASSERT_EQ(report.slots.size(), 2u);
  EXPECT_EQ(report.slots[0].last_respawn_reason, "crash");
  EXPECT_EQ(report.slots[0].spawns, 2u);
  EXPECT_EQ(report.slots[1].spawns, 1u) << "the healthy shard must not churn";
}

TEST_F(ShardServerTest, SighupRollsEveryShardUnderLiveTraffic) {
  StartServer("roll", 2);
  const std::unique_ptr<Client> client = Connect();
  for (std::size_t s = 0; s < 4; ++s) {
    client->SendRaw(Frame(s, "r" + std::to_string(s)));
    ASSERT_TRUE(ParseResponseLine(client->ReadLine()).Ok());
  }
  const pid_t before0 = server_->WorkerPid(0);
  const pid_t before1 = server_->WorkerPid(1);

  std::raise(SIGHUP);
  // Traffic through the roll: every request must still be answered OK —
  // the ring-aware drain keeps N-1 shards warm at every instant.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  std::size_t id = 0;
  for (;;) {
    client->SendRaw(Frame(id % 4, "roll" + std::to_string(id)));
    const SchedulingResponse response = ParseResponseLine(client->ReadLine());
    ASSERT_TRUE(response.Ok()) << response.message;
    ++id;
    const pid_t now0 = server_->WorkerPid(0);
    const pid_t now1 = server_->WorkerPid(1);
    if (now0 > 0 && now1 > 0 && now0 != before0 && now1 != before1) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "roll never completed after " << id << " requests";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  StopServer();

  const SupervisorReport& report = server_->Report();
  EXPECT_EQ(report.rolled, 2u);
  EXPECT_EQ(report.crashes, 0u) << "a roll is not a crash";
  ASSERT_EQ(report.slots.size(), 2u);
  EXPECT_EQ(report.slots[0].last_respawn_reason, "rolled");
  EXPECT_EQ(report.slots[1].last_respawn_reason, "rolled");
}

TEST_F(ShardServerTest, DeadClientMidDrainBatchDoesNotKillTheRouter) {
  // Regression drill for a use-after-free: with the ring dead,
  // RouteFrame/RouteStats complete their tickets synchronously from
  // inside HandleConnReadable's drain loop, and the completion used to
  // flush immediately — a failed write to a vanished client then closed
  // (destroyed) the Conn that the drain loop still held a reference to.
  StartServer("uaf", 1, RoutingMode::kAffinity, [](ShardServerOptions& o) {
    // Hold the killed shard down long enough to drive traffic through
    // the no-live-shard / zero-stats-targets synchronous paths.
    o.supervisor.backoff_initial_seconds = 3.0;
  });
  {
    const std::unique_ptr<Client> warm = Connect();
    warm->SendRaw(Frame(0, "w0"));
    ASSERT_TRUE(ParseResponseLine(warm->ReadLine()).Ok());
  }
  const pid_t victim = server_->WorkerPid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->WorkerPid(0) > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "killed shard never reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // One write burst mixing frames and a STATS verb, then vanish without
  // reading: every event fails/completes synchronously against the dead
  // ring, and the flush hits a peer-closed socket (EPIPE).
  for (int round = 0; round < 8; ++round) {
    const std::unique_ptr<Client> ghost = Connect();
    ghost->SendRaw(Frame(1, "g0") + "STATS\n" + Frame(2, "g1") +
                   Frame(3, "g2"));
    ghost->Close();
  }

  // The router must have survived: a live client still gets typed
  // answers on the same paths the ghosts just abused.
  const std::unique_ptr<Client> after = Connect();
  after->SendRaw(Frame(4, "a0"));
  const SchedulingResponse response = ParseResponseLine(after->ReadLine());
  EXPECT_FALSE(response.Ok());
  EXPECT_EQ(response.error_kind, util::ErrorKind::kTransient)
      << response.message;
  const StatsSnapshot zero = after->Stats();  // zero-target fan-out
  EXPECT_EQ(zero.submitted, 0u);
}

TEST_F(ShardServerTest, StatsSkipsShardsOverThePipeCap) {
  // Regression: the STATS fan-out used to enqueue onto a worker pipe
  // regardless of shard_pipe_cap_bytes — growing router memory past the
  // documented cap and parking the stats ticket behind a stalled worker.
  // With the only shard over cap, STATS must answer (zero snapshot, the
  // stalled shard's contribution is lost) instead of hanging.
  StartServer("cap", 1, RoutingMode::kAffinity, [](ShardServerOptions& o) {
    o.shard_pipe_cap_bytes = 1024;
  });
  {
    const std::unique_ptr<Client> warm = Connect();
    warm->SendRaw(Frame(0, "w0"));
    ASSERT_TRUE(ParseResponseLine(warm->ReadLine()).Ok());
  }
  const pid_t pid = server_->WorkerPid(0);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGSTOP), 0);

  // Flood without reading until the kernel pipe is full and slot.out
  // grows past the cap. Junk envelopes keep the post-SIGCONT backlog
  // cheap (the worker rejects them without scheduling anything).
  const std::string junk = std::string(512, 'x') + "\nEND\n";
  const std::unique_ptr<Client> flood = Connect();
  std::string burst;
  for (int i = 0; i < 64; ++i) burst += junk;
  for (int i = 0; i < 32; ++i) flood->SendRaw(burst);  // ~1 MiB total
  // The router consumes the flood fast (every over-cap frame fails
  // without touching the worker); give it a beat to finish.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  // Fresh connection, fresh FIFO: a frame must shed with the typed
  // backpressure error, and STATS must answer instead of queueing onto
  // the stalled pipe.
  const std::unique_ptr<Client> probe = Connect();
  probe->SendRaw(junk);
  const SchedulingResponse shed = ParseResponseLine(probe->ReadLine());
  EXPECT_FALSE(shed.Ok());
  EXPECT_EQ(shed.error_kind, util::ErrorKind::kTransient) << shed.message;
  EXPECT_NE(shed.message.find("backpressure"), std::string::npos)
      << shed.message;
  const StatsSnapshot snap = probe->Stats();
  EXPECT_EQ(snap.submitted, 0u)
      << "the over-cap shard's contribution must drop out";

  ASSERT_EQ(::kill(pid, SIGCONT), 0);
  flood->Close();
}

TEST_F(ShardServerTest, DrainsCleanlyAndUnlinksTheSocket) {
  StartServer("drain", 2);
  {
    const std::unique_ptr<Client> client = Connect();
    client->SendRaw(Frame(0, "d0"));
    ASSERT_TRUE(ParseResponseLine(client->ReadLine()).Ok());
  }
  StopServer();
  EXPECT_FALSE(
      std::filesystem::exists(options_.server.unix_socket_path));
  const SupervisorReport& report = server_->Report();
  EXPECT_FALSE(report.breaker_open);
  EXPECT_EQ(report.crashes, 0u);
}

}  // namespace
}  // namespace fadesched::service::shard
