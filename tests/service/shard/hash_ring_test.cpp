// The consistent-hash ring's three contracts:
//
//   * balance — with enough vnodes, every live shard owns a ring arc
//     (and receives a key share) close to 1/N;
//   * minimal remap — marking one shard dead moves ONLY the keys that
//     shard owned; every key owned by a surviving shard stays put, and
//     reviving the shard restores the original assignment exactly;
//   * determinism — the assignment is a pure function of
//     (seed, num_shards, vnodes): same inputs, byte-identical digest,
//     across ring instances.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "service/shard/hash_ring.hpp"
#include "util/error.hpp"

namespace fadesched::service::shard {
namespace {

/// Deterministic key stream (splitmix-style) — NOT the ring's own hash,
/// so balance results are not an artifact of hashing keys twice.
std::vector<std::uint64_t> KeyStream(std::size_t count, std::uint64_t seed) {
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < count; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    keys.push_back(z ^ (z >> 31));
  }
  return keys;
}

HashRing MakeRing(std::size_t shards, std::size_t vnodes = 128,
                  std::uint64_t seed = 0x5eedU) {
  HashRingOptions options;
  options.num_shards = shards;
  options.vnodes_per_shard = vnodes;
  options.seed = seed;
  return HashRing(options);
}

TEST(HashRingTest, ValidateRejectsDegenerateConfigs) {
  HashRingOptions zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_THROW(zero_shards.Validate(), util::HarnessError);
  HashRingOptions zero_vnodes;
  zero_vnodes.vnodes_per_shard = 0;
  EXPECT_THROW(zero_vnodes.Validate(), util::HarnessError);
}

TEST(HashRingTest, SingleShardOwnsEverything) {
  HashRing ring = MakeRing(1);
  EXPECT_DOUBLE_EQ(ring.ArcShare(0), 1.0);
  for (const std::uint64_t key : KeyStream(1000, 7)) {
    EXPECT_EQ(ring.ShardFor(key), 0u);
  }
}

TEST(HashRingTest, BalanceBoundAcrossShardCounts) {
  // Issue acceptance: balance across 1..16 shards. With 128 vnodes per
  // shard the classic bound is max/mean = 1 + O(1/sqrt(vnodes)); 1.35
  // holds with margin for every shard count and two key seeds.
  const std::vector<std::uint64_t> keys = KeyStream(200000, 42);
  for (std::size_t shards = 1; shards <= 16; ++shards) {
    HashRing ring = MakeRing(shards);
    std::vector<std::size_t> counts(shards, 0);
    double arc_sum = 0.0;
    for (std::size_t s = 0; s < shards; ++s) arc_sum += ring.ArcShare(s);
    EXPECT_NEAR(arc_sum, 1.0, 1e-9) << "arcs must partition the ring";
    for (const std::uint64_t key : keys) {
      const std::size_t shard = ring.ShardFor(key);
      ASSERT_LT(shard, shards);
      ++counts[shard];
    }
    const double mean =
        static_cast<double>(keys.size()) / static_cast<double>(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_LT(static_cast<double>(counts[s]), 1.35 * mean)
          << "shard " << s << " of " << shards << " is overloaded";
      EXPECT_GT(static_cast<double>(counts[s]), 0.65 * mean)
          << "shard " << s << " of " << shards << " is starved";
    }
  }
}

TEST(HashRingTest, DeathRemapsOnlyTheLostArc) {
  const std::vector<std::uint64_t> keys = KeyStream(50000, 99);
  for (std::size_t shards : {2, 4, 8}) {
    HashRing ring = MakeRing(shards);
    std::map<std::uint64_t, std::size_t> before;
    for (const std::uint64_t key : keys) before[key] = ring.ShardFor(key);

    const std::size_t victim = shards / 2;
    ring.SetLive(victim, false);
    std::size_t moved = 0;
    for (const std::uint64_t key : keys) {
      const std::size_t now = ring.ShardFor(key);
      EXPECT_NE(now, victim) << "dead shard still assigned";
      if (before[key] != victim) {
        // THE minimal-remap contract: a surviving shard's keys never
        // move when some other shard dies.
        EXPECT_EQ(now, before[key]) << "unaffected key remapped";
      } else {
        ++moved;
      }
    }
    EXPECT_GT(moved, 0u) << "victim owned nothing — balance is broken";

    // Revival restores the exact original assignment (positions are a
    // pure function of the seed, never of membership history).
    ring.SetLive(victim, true);
    for (const std::uint64_t key : keys) {
      EXPECT_EQ(ring.ShardFor(key), before[key]);
    }
  }
}

TEST(HashRingTest, AllDeadReturnsSentinel) {
  HashRing ring = MakeRing(3);
  for (std::size_t s = 0; s < 3; ++s) ring.SetLive(s, false);
  EXPECT_EQ(ring.LiveCount(), 0u);
  EXPECT_EQ(ring.ShardFor(123), ring.NumShards());
}

TEST(HashRingTest, AssignmentIsDeterministicAcrossInstances) {
  const std::vector<std::uint64_t> keys = KeyStream(20000, 5);
  for (std::size_t shards : {1, 3, 8, 16}) {
    HashRing a = MakeRing(shards);
    HashRing b = MakeRing(shards);
    EXPECT_EQ(a.AssignmentDigest(keys), b.AssignmentDigest(keys))
        << "same config must give byte-identical assignment";
    HashRing other_seed = MakeRing(shards, 128, 0xfeedU);
    if (shards > 1) {
      EXPECT_NE(a.AssignmentDigest(keys), other_seed.AssignmentDigest(keys))
          << "seed must actually move the ring";
    }
  }
}

TEST(HashRingTest, DigestTracksMembership) {
  const std::vector<std::uint64_t> keys = KeyStream(5000, 17);
  HashRing ring = MakeRing(4);
  const std::uint64_t full = ring.AssignmentDigest(keys);
  ring.SetLive(2, false);
  EXPECT_NE(ring.AssignmentDigest(keys), full);
  ring.SetLive(2, true);
  EXPECT_EQ(ring.AssignmentDigest(keys), full);
}

}  // namespace
}  // namespace fadesched::service::shard
