// The zero-loss chaos soak pointed at the sharded front-end: the same
// seeded storm of socket faults (truncate, corrupt, duplicate, stall,
// reset, kill) the single-process server survives must also be survived
// through the router — per-request ledger exactly-one outcome, every OK
// byte-identical per fingerprint, retries bounded. Run at 1 shard and at
// 4 shards: the ledger's byte-identity check doubles as the proof that
// shard count never leaks into response bytes, even under faults.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "service/chaos/soak.hpp"
#include "service/shard/shard_server.hpp"

namespace fadesched::service::shard {
namespace {

std::string UniqueSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_shchaos_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock"))
      .string();
}

chaos::ChaosSoakReport SoakThroughShards(const char* tag,
                                         std::size_t shards) {
  ShardServerOptions options;
  options.server.unix_socket_path = UniqueSocketPath(tag);
  options.server.service.batcher.num_workers = 2;
  options.server.service.cache.capacity_bytes = 32u << 20;
  options.num_shards = shards;
  options.supervisor.drain_grace_seconds = 5.0;

  ShardServer server(options);
  server.Start();
  std::thread serving([&server] { server.Serve(); });

  chaos::ChaosSoakOptions soak;
  soak.endpoint.unix_socket_path = options.server.unix_socket_path;
  soak.num_requests = 400;
  soak.num_clients = 4;
  soak.pool_size = 10;
  soak.links = 25;
  soak.seed = 1234;
  // Every fault family at once — send-side truncation/corruption/dup
  // exercises the router's frame scanner, recv-side the re-sequencer.
  soak.plan = chaos::ChaosPlan::AllFamilies(0.02, soak.seed);
  soak.plan.stall_seconds = 0.01;
  soak.retry.max_attempts = 12;
  soak.retry.initial_backoff_seconds = 0.002;
  soak.retry.max_backoff_seconds = 0.05;

  const chaos::ChaosSoakReport report = chaos::RunChaosSoak(soak);
  server.Stop();
  serving.join();
  return report;
}

TEST(ShardChaosTest, ZeroLossThroughOneShard) {
  const chaos::ChaosSoakReport report = SoakThroughShards("one", 1);
  EXPECT_TRUE(report.Ok()) << report.first_failure;
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.duplicated, 0u);
  EXPECT_EQ(report.corrupted, 0u);
  EXPECT_EQ(report.sent, 400u);
  EXPECT_GT(report.faults_injected, 0u) << "the storm must actually storm";
}

TEST(ShardChaosTest, ZeroLossThroughFourShards) {
  const chaos::ChaosSoakReport report = SoakThroughShards("four", 4);
  EXPECT_TRUE(report.Ok()) << report.first_failure;
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.duplicated, 0u);
  EXPECT_EQ(report.corrupted, 0u) << "response bytes must not depend on "
                                     "which shard served the fingerprint";
  EXPECT_EQ(report.sent, 400u);
  EXPECT_GT(report.faults_injected, 0u);
}

}  // namespace
}  // namespace fadesched::service::shard
