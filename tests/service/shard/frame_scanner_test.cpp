// The router's per-connection scanner: carves whole frames and bare
// STATS verbs out of arbitrary byte chunks without parsing anything, and
// derives the routing fingerprint. Contracts:
//
//   * frames survive any chunking byte-identically (the worker checksums
//     exactly what the client sent — the router must not reassemble
//     lossily);
//   * STATS is a verb only BETWEEN frames — inside a frame it's payload;
//   * the routing key depends on (scenario payload, scheduler) and
//     nothing else, so repeats of a scenario land on the same shard no
//     matter what id= or check= their headers carry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "service/request.hpp"
#include "service/shard/frame_scanner.hpp"
#include "testing/fuzzer.hpp"

namespace fadesched::service::shard {
namespace {

std::string Frame(std::uint64_t case_index, const std::string& id,
                  const std::string& scheduler = "rle") {
  fadesched::testing::ScenarioFuzzer fuzzer(3);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(case_index);
  request.scheduler = scheduler;
  request.id = id;
  return FormatRequestFrame(request);
}

TEST(FrameScannerTest, CarvesFramesByteIdenticallyUnderChunking) {
  const std::string f1 = Frame(0, "a");
  const std::string f2 = Frame(1, "b");
  const std::string wire = f1 + f2;

  for (const std::size_t chunk : {1UL, 3UL, 7UL, wire.size()}) {
    FrameScanner scanner;
    std::vector<ScanEvent> events;
    for (std::size_t at = 0; at < wire.size(); at += chunk) {
      const std::size_t n = std::min(chunk, wire.size() - at);
      scanner.Feed(wire.data() + at, n);
      for (auto& event : scanner.Drain()) events.push_back(std::move(event));
    }
    ASSERT_EQ(events.size(), 2u) << "chunk=" << chunk;
    EXPECT_EQ(events[0].kind, ScanEvent::Kind::kFrame);
    // The scanner's frame is the assembler body: every line up to (but
    // not including) the END terminator, LF-normalized. The serialized
    // frame is already LF-terminated, so the bytes must match the
    // formatted frame minus its "END\n" exactly — this is what lets the
    // worker verify the client's check= untouched.
    const auto body = [](const std::string& frame) {
      constexpr std::string_view kTerminator = "END\n";
      return frame.substr(0, frame.size() - kTerminator.size());
    };
    EXPECT_EQ(events[0].frame, body(f1)) << "chunk=" << chunk;
    EXPECT_EQ(events[1].frame, body(f2)) << "chunk=" << chunk;
    EXPECT_FALSE(scanner.MidFrame());
  }
}

TEST(FrameScannerTest, StatsIsAVerbOnlyBetweenFrames) {
  const std::string frame_with_stats_line =
      "not-a-header x=1\nSTATS\nEND\n";
  FrameScanner scanner;
  const std::string wire =
      std::string(kStatsVerb) + "\n" + frame_with_stats_line +
      std::string(kStatsVerb) + "\r\n";
  scanner.Feed(wire.data(), wire.size());
  const std::vector<ScanEvent> events = scanner.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, ScanEvent::Kind::kStats);
  EXPECT_EQ(events[1].kind, ScanEvent::Kind::kFrame);
  EXPECT_NE(events[1].frame.find("STATS\n"), std::string::npos)
      << "STATS inside a frame must stay payload";
  EXPECT_EQ(events[2].kind, ScanEvent::Kind::kStats);
}

TEST(FrameScannerTest, MidFrameTracksPartialInput) {
  FrameScanner scanner;
  EXPECT_FALSE(scanner.MidFrame());
  const std::string partial = "header line\nscenario";
  scanner.Feed(partial.data(), partial.size());
  EXPECT_TRUE(scanner.Drain().empty());
  EXPECT_TRUE(scanner.MidFrame()) << "buffered half-line counts";
  const std::string rest = " rest\nEND\n";
  scanner.Feed(rest.data(), rest.size());
  EXPECT_EQ(scanner.Drain().size(), 1u);
  EXPECT_FALSE(scanner.MidFrame());
}

TEST(RoutingKeyTest, IgnoresIdAndChecksum) {
  // Same scenario, same scheduler, different request ids (and therefore
  // different check= values): the fingerprint must coincide so repeat
  // traffic lands on the warm shard.
  EXPECT_EQ(RoutingKey(Frame(0, "first")), RoutingKey(Frame(0, "second")));
}

TEST(RoutingKeyTest, DependsOnScenarioAndScheduler) {
  EXPECT_NE(RoutingKey(Frame(0, "a")), RoutingKey(Frame(1, "a")))
      << "different scenarios must fingerprint differently";
  EXPECT_NE(RoutingKey(Frame(0, "a", "rle")), RoutingKey(Frame(0, "a", "ldp")))
      << "scheduler is part of the cache key, so also of the fingerprint";
}

TEST(RoutingKeyTest, MalformedFramesRouteDeterministically) {
  const std::string garbage = "no newline at all";
  EXPECT_EQ(RoutingKey(garbage), RoutingKey(garbage));
  const std::string no_scheduler = "header-without-token\nbody\nEND\n";
  EXPECT_EQ(RoutingKey(no_scheduler), RoutingKey(no_scheduler));
  EXPECT_NE(RoutingKey(garbage), RoutingKey(no_scheduler));
}

}  // namespace
}  // namespace fadesched::service::shard
