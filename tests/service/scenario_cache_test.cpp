#include "service/scenario_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "testing/fuzzer.hpp"

namespace fadesched::service {
namespace {

SchedulingRequest MakeRequest(std::uint64_t case_index,
                              const std::string& scheduler = "rle") {
  fadesched::testing::ScenarioFuzzer fuzzer(42);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(case_index);
  request.scheduler = scheduler;
  return request;
}

TEST(ScenarioCacheTest, MissBuildsThenHits) {
  ServiceMetrics metrics;
  ScenarioCache cache({}, &metrics);
  const SchedulingRequest request = MakeRequest(0);
  const Fingerprint fp = FingerprintRequest(request);

  bool hit = true;
  const ScenarioCache::ScenarioPtr first =
      cache.ObtainScenario(fp, request, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(first->engine.has_value());
  EXPECT_EQ(first->links.Size(), request.scenario.links.Size());

  const ScenarioCache::ScenarioPtr second =
      cache.ObtainScenario(fp, request, &hit);
  EXPECT_TRUE(hit);
  // A hit is the SAME memoized object, not an equivalent rebuild.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(metrics.scenario_misses.load(), 1u);
  EXPECT_EQ(metrics.scenario_hits.load(), 1u);
}

TEST(ScenarioCacheTest, DegradedMatrixBuildsUseThePrecisionLadder) {
  // Brownout misses on a kMatrix configuration keep the matrix backend
  // (query speed is the point of the config) but take the cheap SIMD
  // precision-ladder build.
  CacheOptions options;
  options.engine.backend = channel::FactorBackend::kMatrix;
  ScenarioCache cache(options);
  const SchedulingRequest request = MakeRequest(3);
  const Fingerprint fp = FingerprintRequest(request);
  const ScenarioCache::ScenarioPtr entry =
      cache.ObtainScenario(fp, request, nullptr, /*degrade_build=*/true);
  ASSERT_TRUE(entry->engine.has_value());
  EXPECT_EQ(entry->engine->Backend(), channel::FactorBackend::kMatrix);
  EXPECT_TRUE(entry->engine->Options().ladder.enabled);
}

TEST(ScenarioCacheTest, DegradedNonMatrixBuildsDropToTables) {
  ScenarioCache cache;  // default engine backend: kTables
  const SchedulingRequest request = MakeRequest(4);
  const Fingerprint fp = FingerprintRequest(request);
  const ScenarioCache::ScenarioPtr entry =
      cache.ObtainScenario(fp, request, nullptr, /*degrade_build=*/true);
  ASSERT_TRUE(entry->engine.has_value());
  EXPECT_EQ(entry->engine->Backend(), channel::FactorBackend::kTables);
  EXPECT_FALSE(entry->engine->Options().ladder.enabled);
}

TEST(ScenarioCacheTest, EngineIsBuiltOverTheEntrysOwnLinks) {
  ScenarioCache cache;
  const SchedulingRequest request = MakeRequest(0);
  const Fingerprint fp = FingerprintRequest(request);
  const ScenarioCache::ScenarioPtr entry = cache.ObtainScenario(fp, request);
  // The engine's LinkSet pointer must target the entry's own copy — that
  // is what makes the shared_ptr hand-off to schedulers safe.
  EXPECT_EQ(&entry->engine->Links(), &entry->links);
}

TEST(ScenarioCacheTest, ResponseRoundTripStripsPerRequestFields) {
  ScenarioCache cache;
  const SchedulingRequest request = MakeRequest(0);
  const Fingerprint fp = FingerprintRequest(request);

  SchedulingResponse miss;
  EXPECT_FALSE(cache.LookupResponse(fp, &miss));

  SchedulingResponse stored;
  stored.status = ResponseStatus::kOk;
  stored.schedule = {1, 3, 5};
  stored.claimed_rate = 3.0;
  stored.id = "r17";
  stored.cache_hit = true;  // must not leak into the stored copy
  cache.StoreResponse(fp, stored);

  SchedulingResponse out;
  ASSERT_TRUE(cache.LookupResponse(fp, &out));
  EXPECT_EQ(out.schedule, stored.schedule);
  EXPECT_DOUBLE_EQ(out.claimed_rate, 3.0);
  EXPECT_TRUE(out.id.empty());
  EXPECT_FALSE(out.cache_hit);
}

TEST(ScenarioCacheTest, FailedResponsesAreNeverCached) {
  ScenarioCache cache;
  const SchedulingRequest request = MakeRequest(0);
  const Fingerprint fp = FingerprintRequest(request);

  SchedulingResponse shed;
  shed.status = ResponseStatus::kShed;
  cache.StoreResponse(fp, shed);
  SchedulingResponse out;
  EXPECT_FALSE(cache.LookupResponse(fp, &out));
}

TEST(ScenarioCacheTest, SchedulerNameKeysTheResponseLevel) {
  ScenarioCache cache;
  const SchedulingRequest rle = MakeRequest(0, "rle");
  const SchedulingRequest ldp = MakeRequest(0, "ldp");
  const Fingerprint fp_rle = FingerprintRequest(rle);
  const Fingerprint fp_ldp = FingerprintRequest(ldp);

  SchedulingResponse response;
  response.status = ResponseStatus::kOk;
  response.schedule = {2};
  cache.StoreResponse(fp_rle, response);

  SchedulingResponse out;
  EXPECT_TRUE(cache.LookupResponse(fp_rle, &out));
  EXPECT_FALSE(cache.LookupResponse(fp_ldp, &out));
}

TEST(ScenarioCacheTest, LruEvictsOldestUnderByteBudget) {
  ServiceMetrics metrics;
  // Budget sized to hold only a couple of small scenarios.
  CacheOptions options;
  options.capacity_bytes = 8 * 1024;
  ScenarioCache cache(options, &metrics);

  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const SchedulingRequest request = MakeRequest(i);
    fps.push_back(FingerprintRequest(request));
    cache.ObtainScenario(fps.back(), request);
  }
  EXPECT_GT(metrics.cache_evictions.load(), 0u);
  EXPECT_LE(cache.CurrentBytes(), options.capacity_bytes);

  // The most recent entry must have survived...
  bool hit = false;
  cache.ObtainScenario(fps.back(), MakeRequest(5), &hit);
  EXPECT_TRUE(hit);
  // ...and the oldest must be gone.
  cache.ObtainScenario(fps.front(), MakeRequest(0), &hit);
  EXPECT_FALSE(hit);
}

TEST(ScenarioCacheTest, TouchingAnEntryProtectsItFromEviction) {
  CacheOptions options;
  options.capacity_bytes = 8 * 1024;
  ScenarioCache cache(options);

  const SchedulingRequest keep = MakeRequest(0);
  const Fingerprint keep_fp = FingerprintRequest(keep);
  cache.ObtainScenario(keep_fp, keep);
  for (std::uint64_t i = 1; i < 5; ++i) {
    const SchedulingRequest filler = MakeRequest(i);
    cache.ObtainScenario(FingerprintRequest(filler), filler);
    cache.ObtainScenario(keep_fp, keep);  // refresh recency each round
  }
  bool hit = false;
  cache.ObtainScenario(keep_fp, keep, &hit);
  EXPECT_TRUE(hit);
}

TEST(ScenarioCacheTest, OversizedEntryStillAdmitted) {
  CacheOptions options;
  options.capacity_bytes = 1;  // smaller than any entry
  ScenarioCache cache(options);
  const SchedulingRequest request = MakeRequest(0);
  const Fingerprint fp = FingerprintRequest(request);
  const ScenarioCache::ScenarioPtr entry = cache.ObtainScenario(fp, request);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(cache.NumEntries(), 1u);
}

TEST(ScenarioCacheTest, EvictedEntryStaysAliveThroughSharedPtr) {
  CacheOptions options;
  options.capacity_bytes = 8 * 1024;
  ScenarioCache cache(options);
  const SchedulingRequest request = MakeRequest(0);
  const ScenarioCache::ScenarioPtr held =
      cache.ObtainScenario(FingerprintRequest(request), request);
  for (std::uint64_t i = 1; i < 6; ++i) {
    const SchedulingRequest filler = MakeRequest(i);
    cache.ObtainScenario(FingerprintRequest(filler), filler);
  }
  // Entry 0 was evicted, but the handed-out pointer still works — a
  // worker mid-schedule must never see its engine die underneath it.
  EXPECT_GT(held->engine->Size(), 0u);
  EXPECT_EQ(&held->engine->Links(), &held->links);
}

TEST(ScenarioCacheTest, ConcurrentMissesConvergeToOneEntry) {
  ServiceMetrics metrics;
  ScenarioCache cache({}, &metrics);
  const SchedulingRequest request = MakeRequest(0);
  const Fingerprint fp = FingerprintRequest(request);

  std::vector<std::thread> threads;
  std::vector<ScenarioCache::ScenarioPtr> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          cache.ObtainScenario(fp, request);
    });
  }
  for (auto& thread : threads) thread.join();
  // Racing builds are allowed, but everyone must end up agreeing on one
  // memoized object (first insert wins).
  EXPECT_EQ(cache.NumEntries(), 1u);
  for (const auto& result : results) {
    EXPECT_EQ(result.get(), results[0].get());
  }
}

TEST(ScenarioCacheTest, ClearDropsEverything) {
  ScenarioCache cache;
  const SchedulingRequest request = MakeRequest(0);
  cache.ObtainScenario(FingerprintRequest(request), request);
  EXPECT_GT(cache.CurrentBytes(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.CurrentBytes(), 0u);
  EXPECT_EQ(cache.NumEntries(), 0u);
}

}  // namespace
}  // namespace fadesched::service
