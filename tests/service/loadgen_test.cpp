// The load generator itself: threaded vs multiplexed harnesses must
// agree on the accounting contract (every request reaches exactly one
// outcome, determinism cross-checked per frame), the drift option must
// keep the determinism ledger indexed correctly past the original pool,
// and the coordinated-omission-corrected latency must behave: equal to
// send-to-reply in closed loop (intended == send by construction), and
// never below it in open loop.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "service/loadgen.hpp"
#include "service/server.hpp"

namespace fadesched::service {
namespace {

std::string UniqueSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_loadgen_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock"))
      .string();
}

class LoadgenTest : public ::testing::Test {
 protected:
  void StartServer(const char* tag) {
    options_.unix_socket_path = UniqueSocketPath(tag);
    options_.service.batcher.num_workers = 2;
    server_ = std::make_unique<Server>(options_);
    server_->Start();
    serving_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      serving_.join();
    }
  }

  LoadgenOptions BaseOptions(std::size_t requests) const {
    LoadgenOptions load;
    load.unix_socket_path = options_.unix_socket_path;
    load.num_requests = requests;
    load.connections = 4;
    load.pool_size = 8;
    load.links = 20;
    load.hot_fraction = 0.75;
    return load;
  }

  ServerOptions options_;
  std::unique_ptr<Server> server_;
  std::thread serving_;
};

void ExpectClean(const LoadgenReport& report, std::size_t requests) {
  EXPECT_TRUE(report.Clean())
      << "mismatches=" << report.determinism_mismatches
      << " transport=" << report.transport_failures
      << " errors=" << report.errors;
  EXPECT_EQ(report.sent, requests);
  EXPECT_EQ(report.ok, requests) << "nothing sheds at this load";
  EXPECT_EQ(report.warm_ok + report.cold_ok, requests);
}

TEST_F(LoadgenTest, ThreadedAndMuxAgreeOnTheAccountingContract) {
  StartServer("agree");
  LoadgenOptions load = BaseOptions(200);
  const LoadgenReport threaded = RunLoadgen(load);
  ExpectClean(threaded, 200);
  load.multiplex = true;
  const LoadgenReport mux = RunLoadgen(load);
  ExpectClean(mux, 200);
  // Same plan, same seed → identical warm/cold split either way.
  EXPECT_EQ(mux.warm_ok, threaded.warm_ok);
  EXPECT_EQ(mux.cold_ok, threaded.cold_ok);
}

TEST_F(LoadgenTest, ClosedLoopCorrectedEqualsSendToReply) {
  StartServer("closed");
  LoadgenOptions load = BaseOptions(150);
  load.multiplex = true;
  const LoadgenReport report = RunLoadgen(load);
  ExpectClean(report, 150);
  // Closed loop: intended == actual send, so the corrected percentiles
  // are the same samples (identical histogram bins, so exactly equal).
  EXPECT_DOUBLE_EQ(report.warm_corrected_p50_ms, report.warm_p50_ms);
  EXPECT_DOUBLE_EQ(report.warm_corrected_p99_ms, report.warm_p99_ms);
  EXPECT_DOUBLE_EQ(report.cold_corrected_p99_ms, report.cold_p99_ms);
}

TEST_F(LoadgenTest, OpenLoopCorrectedNeverUndercutsRaw) {
  StartServer("open");
  LoadgenOptions load = BaseOptions(200);
  load.multiplex = true;
  load.connections = 2;
  load.rate_per_sec = 2000.0;  // brisk enough to queue client-side
  const LoadgenReport report = RunLoadgen(load);
  ExpectClean(report, 200);
  // Corrected latency includes the wait from intended release to actual
  // send — it can only add.
  EXPECT_GE(report.warm_corrected_p99_ms, report.warm_p99_ms - 1e-9);
  EXPECT_GE(report.cold_corrected_p99_ms, report.cold_p99_ms - 1e-9);
}

TEST_F(LoadgenTest, DriftingPoolStaysDeterministic) {
  StartServer("drift");
  for (const bool mux : {false, true}) {
    LoadgenOptions load = BaseOptions(300);
    load.multiplex = mux;
    load.drift_period = 20;  // 14 pool replacements over the run
    const LoadgenReport report = RunLoadgen(load);
    ExpectClean(report, 300);
    EXPECT_EQ(report.determinism_mismatches, 0u)
        << "drift frames must cross-check against their own ledger slot "
           "(mux=" << mux << ")";
  }
}

}  // namespace
}  // namespace fadesched::service
