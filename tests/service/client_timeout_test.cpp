// Client deadline hardening (a satellite of the chaos layer): a stalled
// or vanished peer must surface as a typed error within the configured
// budget — the client no longer owns a single code path that can block
// forever.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>

#include "service/client.hpp"
#include "util/error.hpp"

namespace fadesched::service {
namespace {

std::string UniqueSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_to_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

/// A listener that accepts nothing and answers nothing — the perfectly
/// silent peer. Connects succeed (the backlog takes them); every read
/// starves.
class SilentListener {
 public:
  explicit SilentListener(const std::string& path) : path_(path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(fd_, 8);
  }
  ~SilentListener() {
    if (fd_ >= 0) ::close(fd_);
    ::unlink(path_.c_str());
  }

 private:
  std::string path_;
  int fd_ = -1;
};

TEST(ClientTimeoutTest, ReadLineTimesOutAgainstASilentPeer) {
  const std::string path = UniqueSocketPath("silent");
  SilentListener listener(path);
  ClientOptions options;
  options.io_timeout_seconds = 0.3;
  Client client(options);
  client.ConnectUnix(path);
  const auto start = std::chrono::steady_clock::now();
  try {
    client.ReadLine();
    FAIL() << "expected a timeout";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTimeout);
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.25);  // the budget was honored...
  EXPECT_LT(elapsed, 3.0);   // ...and it did not hang
}

TEST(ClientTimeoutTest, ZeroIoTimeoutMeansNoDeadlineButEofStillSurfaces) {
  // 0 disables the deadline; EOF (listener destroyed → reset) must still
  // produce a typed transient error rather than a hang.
  const std::string path = UniqueSocketPath("eof");
  ClientOptions options;
  options.io_timeout_seconds = 0.0;
  Client client(options);
  {
    SilentListener listener(path);
    client.ConnectUnix(path);
  }  // listener gone: pending connection reset
  EXPECT_THROW(client.ReadLine(), util::HarnessError);
}

TEST(ClientTimeoutTest, ConnectRefusalIsTypedAndImmediate) {
  Client client;
  const auto start = std::chrono::steady_clock::now();
  try {
    client.ConnectUnix(UniqueSocketPath("nonexistent"));
    FAIL() << "expected a connect failure";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTransient);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 1.0);
  EXPECT_FALSE(client.Connected());
}

TEST(ClientTimeoutTest, OperationsOnADisconnectedClientAreUsageErrors) {
  Client client;
  try {
    client.ReadLine();
    FAIL() << "expected a usage error";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kFatal);
  }
  try {
    client.SendRaw("x");
    FAIL() << "expected a usage error";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kFatal);
  }
}

}  // namespace
}  // namespace fadesched::service
