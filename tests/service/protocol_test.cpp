#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service {
namespace {

SchedulingRequest MakeRequest() {
  fadesched::testing::ScenarioFuzzer fuzzer(3);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(0);
  request.scheduler = "rle";
  request.id = "r0";
  return request;
}

std::string ExpectThrowMessage(const std::function<void()>& action) {
  try {
    action();
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kFatal);
    return e.what();
  }
  ADD_FAILURE() << "expected a HarnessError";
  return "";
}

TEST(RequestFrameTest, RoundTripsThroughFormatAndParse) {
  SchedulingRequest request = MakeRequest();
  request.deadline_seconds = 0.25;
  const std::string frame = FormatRequestFrame(request);
  // A frame is header + scenario + END, newline-terminated throughout.
  EXPECT_EQ(frame.rfind("END\n"), frame.size() - 4);

  // The server strips the END line before ParseRequestFrame; mimic that.
  const SchedulingRequest parsed =
      ParseRequestFrame(frame.substr(0, frame.size() - 4));
  EXPECT_EQ(parsed.id, "r0");
  EXPECT_EQ(parsed.scheduler, "rle");
  EXPECT_DOUBLE_EQ(parsed.deadline_seconds, 0.25);
  EXPECT_EQ(parsed.scenario.links.Size(), request.scenario.links.Size());
  // Content equality at full precision: the fingerprints must agree.
  EXPECT_EQ(FingerprintRequest(parsed).request_hash,
            FingerprintRequest(request).request_hash);
}

TEST(RequestFrameTest, SecondSerializationIsByteIdentical) {
  const SchedulingRequest request = MakeRequest();
  const std::string once = FormatRequestFrame(request);
  const SchedulingRequest parsed =
      ParseRequestFrame(once.substr(0, once.size() - 4));
  // Description round-trips too, so the whole frame is reproducible.
  EXPECT_EQ(FormatRequestFrame(parsed), once);
}

TEST(RequestFrameTest, RejectsMalformedHeadersNamingLineOne) {
  const std::string msg1 = ExpectThrowMessage(
      [] { (void)ParseRequestFrame("HELLO id=a scheduler=rle\nx\n"); });
  EXPECT_NE(msg1.find("request frame line 1"), std::string::npos);

  const std::string msg2 = ExpectThrowMessage(
      [] { (void)ParseRequestFrame("REQUEST scheduler=rle\nx\n"); });
  EXPECT_NE(msg2.find("missing id="), std::string::npos);

  const std::string msg3 = ExpectThrowMessage(
      [] { (void)ParseRequestFrame("REQUEST id=a\nx\n"); });
  EXPECT_NE(msg3.find("missing scheduler="), std::string::npos);

  const std::string msg4 = ExpectThrowMessage([] {
    (void)ParseRequestFrame("REQUEST id=a scheduler=rle frobnicate=1\nx\n");
  });
  EXPECT_NE(msg4.find("unknown header key 'frobnicate'"), std::string::npos);
}

TEST(RequestFrameTest, MissingCheckTokenIsTransientCorruptionNotACallerBug) {
  // check= is mandatory: a flipped separator byte can merge the token
  // into its neighbour, and treating the result as a checkless frame
  // would disable verification exactly when it is needed.
  try {
    (void)ParseRequestFrame("REQUEST id=a scheduler=rle\nx\n");
    FAIL() << "expected a missing-check error";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTransient);
    EXPECT_NE(std::string(e.what()).find("missing check="), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("request frame"), std::string::npos);
  }
}

TEST(RequestFrameTest, ASeparatorCorruptedIntoATabIsStillCaught) {
  // A space flipped into a tab keeps every token parseable (istream
  // splitting treats both as whitespace), so only the checksum can flag
  // it — and the check-token splice must be whitespace-aware or the tab
  // variant would silently skip verification instead.
  const std::string frame = FormatRequestFrame(MakeRequest());
  std::string tampered = frame.substr(0, frame.size() - 4);  // strip END
  const std::size_t space = tampered.find(" scheduler=");
  ASSERT_NE(space, std::string::npos);
  tampered[space] = '\t';
  try {
    (void)ParseRequestFrame(tampered);
    FAIL() << "expected a checksum mismatch";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTransient);
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos);
  }

  // The degenerate cousin: the separator *before the check token itself*
  // flipped to a tab is spliced out with the token, reconstructing the
  // exact body the sender hashed — the frame verifies and parses, which
  // is correct: the corruption changed nothing the request means.
  std::string benign = frame.substr(0, frame.size() - 4);
  const std::size_t check_space = benign.find(" check=");
  ASSERT_NE(check_space, std::string::npos);
  benign[check_space] = '\t';
  EXPECT_EQ(ParseRequestFrame(benign).scheduler, "rle");
}

TEST(RequestFrameTest, ScenarioPayloadErrorsKeepTheirRowNumbers) {
  const SchedulingRequest request = MakeRequest();
  std::string frame = FormatRequestFrame(request);
  frame = frame.substr(0, frame.size() - 4);  // strip END
  // Corrupt the CSV block: drop the last data row's fields.
  const std::size_t last_newline = frame.find_last_of('\n', frame.size() - 2);
  frame = frame.substr(0, last_newline + 1) + "1.5,bogus\n";
  const std::string msg =
      ExpectThrowMessage([&] { (void)ParseRequestFrame(frame); });
  EXPECT_NE(msg.find("scenario payload"), std::string::npos);
}

TEST(RequestFrameTest, RejectsIdsWithWhitespace) {
  SchedulingRequest request = MakeRequest();
  request.id = "two words";
  EXPECT_THROW((void)FormatRequestFrame(request), util::HarnessError);
  request.id.clear();
  EXPECT_THROW((void)FormatRequestFrame(request), util::HarnessError);
}

TEST(ResponseLineTest, OkRoundTrip) {
  SchedulingResponse response;
  response.status = ResponseStatus::kOk;
  response.id = "r3";
  response.claimed_rate = 2.5000000000000004;  // %.17g must survive
  response.schedule = {0, 2, 17};
  const std::string line = FormatResponseLine(response);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const SchedulingResponse parsed = ParseResponseLine(line);
  EXPECT_TRUE(parsed.Ok());
  EXPECT_EQ(parsed.id, "r3");
  EXPECT_EQ(parsed.schedule, response.schedule);
  EXPECT_EQ(parsed.claimed_rate, response.claimed_rate);  // exact, not near
}

TEST(ResponseLineTest, EmptyScheduleUsesDashSentinel) {
  SchedulingResponse response;
  response.status = ResponseStatus::kOk;
  response.id = "r0";
  const std::string line = FormatResponseLine(response);
  EXPECT_NE(line.find("schedule=-"), std::string::npos);
  EXPECT_TRUE(ParseResponseLine(line).schedule.empty());
}

TEST(ResponseLineTest, ErrorRoundTripFlattensNewlines) {
  SchedulingResponse response;
  response.status = ResponseStatus::kShed;
  response.error_kind = util::ErrorKind::kTransient;
  response.id = "r9";
  response.message = "queue full\nretry later";
  const std::string line = FormatResponseLine(response);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const SchedulingResponse parsed = ParseResponseLine(line);
  EXPECT_EQ(parsed.status, ResponseStatus::kShed);
  EXPECT_EQ(parsed.error_kind, util::ErrorKind::kTransient);
  EXPECT_EQ(parsed.message, "queue full retry later");
  EXPECT_EQ(parsed.ExitCode(), util::kExitRuntime);
}

TEST(ResponseLineTest, CacheHitDoesNotChangeTheBytes) {
  SchedulingResponse miss;
  miss.status = ResponseStatus::kOk;
  miss.id = "r1";
  miss.schedule = {4};
  miss.claimed_rate = 1.0;
  SchedulingResponse hit = miss;
  hit.cache_hit = true;
  EXPECT_EQ(FormatResponseLine(miss), FormatResponseLine(hit));
}

TEST(ResponseLineTest, RejectsGarbage) {
  EXPECT_THROW((void)ParseResponseLine(""), util::HarnessError);
  EXPECT_THROW((void)ParseResponseLine("MAYBE id=x"), util::HarnessError);
  EXPECT_THROW((void)ParseResponseLine("ERR id=x msg=no status"),
               util::HarnessError);
}

TEST(FrameAssemblerTest, AssemblesAcrossFeedsAndResets) {
  const SchedulingRequest request = MakeRequest();
  const std::string frame = FormatRequestFrame(request);
  FrameAssembler assembler;
  std::istringstream lines(frame);
  std::string line;
  bool completed = false;
  while (std::getline(lines, line)) {
    completed = assembler.Feed(line);
  }
  ASSERT_TRUE(completed);
  ASSERT_TRUE(assembler.Done());
  EXPECT_EQ(assembler.Parse().id, "r0");

  assembler.Reset();
  EXPECT_TRUE(assembler.Empty());
}

TEST(FrameAssemblerTest, TruncatedFrameNamesHowFarItGot) {
  FrameAssembler assembler;
  assembler.Feed("REQUEST id=a scheduler=rle");
  assembler.Feed("# fadesched scenario v1");
  assembler.Feed("alpha = 3");
  EXPECT_FALSE(assembler.Done());
  EXPECT_NE(assembler.Truncated().find("after 3 line(s)"), std::string::npos);
  EXPECT_NE(assembler.Truncated().find("missing END"), std::string::npos);
  EXPECT_THROW((void)assembler.Parse(), util::HarnessError);
}

}  // namespace
}  // namespace fadesched::service
