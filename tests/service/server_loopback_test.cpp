// End-to-end loopback tests: a real Server on a Unix-domain socket (and
// once on TCP), real Clients, real bytes. These are the tests that pin
// the wire-level determinism contract and the graceful-drain semantics
// the CI smoke job relies on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service {
namespace {

std::string UniqueSocketPath(const char* tag) {
  // Keep it short: sun_path caps out around 100 bytes.
  return (std::filesystem::temp_directory_path() /
          ("fs_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

SchedulingRequest MakeRequest(std::uint64_t case_index,
                              const std::string& id) {
  fadesched::testing::ScenarioFuzzer fuzzer(5);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(case_index);
  request.scheduler = "rle";
  request.id = id;
  return request;
}

TEST(ServerLoopbackTest, ServesOverUnixSocket) {
  ServerOptions options;
  options.unix_socket_path = UniqueSocketPath("unix");
  Server server(options);
  server.Start();
  std::thread serving([&] { server.Serve(); });

  Client client;
  client.ConnectUnix(options.unix_socket_path);
  const SchedulingResponse response = client.Call(MakeRequest(0, "q1"));
  EXPECT_TRUE(response.Ok()) << response.message;
  EXPECT_EQ(response.id, "q1");

  server.Stop();
  serving.join();
}

TEST(ServerLoopbackTest, ServesOverTcpEphemeralPort) {
  ServerOptions options;  // TCP: no unix path, port 0 = ephemeral
  Server server(options);
  server.Start();
  ASSERT_GT(server.Port(), 0);
  std::thread serving([&] { server.Serve(); });

  Client client;
  client.ConnectTcp("127.0.0.1", server.Port());
  const SchedulingResponse response = client.Call(MakeRequest(0, "q1"));
  EXPECT_TRUE(response.Ok()) << response.message;

  server.Stop();
  serving.join();
}

TEST(ServerLoopbackTest, RepeatedRequestsAreByteIdenticalAcrossClients) {
  ServerOptions options;
  options.unix_socket_path = UniqueSocketPath("det");
  options.service.batcher.num_workers = 4;
  Server server(options);
  server.Start();
  std::thread serving([&] { server.Serve(); });

  const SchedulingRequest request = MakeRequest(1, "same");
  const std::string frame = FormatRequestFrame(request);
  std::vector<std::string> lines(6);
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      client.ConnectUnix(options.unix_socket_path);
      for (int r = 0; r < 2; ++r) {
        client.SendRaw(frame);
        lines[static_cast<std::size_t>(c * 2 + r)] = client.ReadLine();
      }
    });
  }
  for (auto& client : clients) client.join();
  for (const std::string& line : lines) {
    EXPECT_EQ(line, lines[0]);
    EXPECT_EQ(line.rfind("OK ", 0), 0u) << line;
  }

  server.Stop();
  serving.join();
}

TEST(ServerLoopbackTest, MalformedFrameGetsAnErrLineAndConnectionSurvives) {
  ServerOptions options;
  options.unix_socket_path = UniqueSocketPath("err");
  Server server(options);
  server.Start();
  std::thread serving([&] { server.Serve(); });

  Client client;
  client.ConnectUnix(options.unix_socket_path);
  client.SendRaw("REQUEST id=x\nEND\n");  // missing scheduler=
  const SchedulingResponse err = ParseResponseLine(client.ReadLine());
  EXPECT_EQ(err.status, ResponseStatus::kError);
  EXPECT_NE(err.message.find("missing scheduler="), std::string::npos);

  // The same connection still serves valid requests afterwards.
  const SchedulingResponse ok = client.Call(MakeRequest(0, "after"));
  EXPECT_TRUE(ok.Ok()) << ok.message;

  server.Stop();
  serving.join();
}

TEST(ServerLoopbackTest, UnknownSchedulerTravelsAsErrorKindFatal) {
  ServerOptions options;
  options.unix_socket_path = UniqueSocketPath("unk");
  Server server(options);
  server.Start();
  std::thread serving([&] { server.Serve(); });

  Client client;
  client.ConnectUnix(options.unix_socket_path);
  SchedulingRequest request = MakeRequest(0, "u1");
  request.scheduler = "nonexistent";
  const SchedulingResponse response = client.Call(request);
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(response.error_kind, util::ErrorKind::kFatal);
  EXPECT_EQ(response.id, "u1");

  server.Stop();
  serving.join();
}

TEST(ServerLoopbackTest, StopDrainsInFlightWorkBeforeReturning) {
  ServerOptions options;
  options.unix_socket_path = UniqueSocketPath("drain");
  Server server(options);
  server.Start();
  std::thread serving([&] { server.Serve(); });

  Client client;
  client.ConnectUnix(options.unix_socket_path);
  client.SendRaw(FormatRequestFrame(MakeRequest(2, "inflight")));
  // Wait until the request is admitted, then stop — the drain must still
  // deliver its response.
  while (server.Service().Metrics().admitted.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  const SchedulingResponse response = ParseResponseLine(client.ReadLine());
  EXPECT_TRUE(response.Ok()) << response.message;
  EXPECT_EQ(response.id, "inflight");
  serving.join();

  // After the drain, the server's metrics account for exactly that work.
  EXPECT_EQ(server.Service().Metrics().completed.load(), 1u);
}

}  // namespace
}  // namespace fadesched::service
