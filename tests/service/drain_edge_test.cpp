// Drain edge cases. The contract under test: a drain (SIGTERM / Stop /
// destructor) fulfills every accepted request exactly once — queued and
// in-flight work completes, late submissions get a typed interrupted-shed
// — and a client's in-flight frame is either answered with one complete,
// checksummed line or met with a clean EOF (never a partial line, never
// a duplicate).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "service/batcher.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service {
namespace {

using std::chrono::milliseconds;

TEST(DrainEdgeTest, DrainMidBatchFulfillsEveryFutureExactlyOnce) {
  ServiceMetrics metrics;
  BatcherOptions options;
  options.num_workers = 2;
  options.queue_capacity = 1000;
  options.overload.queue_delay_target_ms = 0.0;  // isolate drain semantics
  RequestBatcher batcher(
      [](const SchedulingRequest& request) {
        std::this_thread::sleep_for(milliseconds(2));
        SchedulingResponse response;
        response.status = ResponseStatus::kOk;
        response.id = request.id;
        return response;
      },
      options, &metrics);

  // Fill the queue well past the workers, so the drain arrives with most
  // of the batch still queued.
  std::vector<std::future<SchedulingResponse>> futures;
  for (int i = 0; i < 60; ++i) {
    SchedulingRequest request;
    request.id = "pre" + std::to_string(i);
    futures.push_back(batcher.Submit(std::move(request)));
  }

  // Race the drain against a second wave of submissions.
  std::thread drainer([&] {
    std::this_thread::sleep_for(milliseconds(10));
    batcher.Drain();
  });
  for (int i = 0; i < 60; ++i) {
    SchedulingRequest request;
    request.id = "mid" + std::to_string(i);
    futures.push_back(batcher.Submit(std::move(request)));
  }
  drainer.join();

  std::size_t ok = 0, interrupted = 0;
  for (auto& future : futures) {
    ASSERT_TRUE(future.valid());
    // The future is fulfilled exactly once and never with an exception —
    // get() must return a response, not block and not throw.
    const SchedulingResponse response = future.get();
    if (response.Ok()) {
      ++ok;
    } else {
      ASSERT_EQ(response.status, ResponseStatus::kShed) << response.message;
      EXPECT_EQ(response.error_kind, util::ErrorKind::kInterrupted);
      ++interrupted;
    }
  }
  EXPECT_EQ(ok + interrupted, 120u);
  // Everything submitted before the drain completes; only mid-drain
  // submissions may be refused.
  EXPECT_GE(ok, 60u);

  // Ledger identities at quiescence.
  EXPECT_EQ(metrics.submitted.load(), 120u);
  EXPECT_EQ(metrics.submitted.load(),
            metrics.admitted.load() + metrics.shed.load() +
                metrics.shed_overload.load() +
                metrics.rejected_draining.load());
  EXPECT_EQ(metrics.admitted.load(), metrics.completed.load() +
                                         metrics.failed.load() +
                                         metrics.timed_out.load());
  EXPECT_EQ(metrics.rejected_draining.load(), interrupted);
}

TEST(DrainEdgeTest, RepeatedDrainIsIdempotent) {
  RequestBatcher batcher([](const SchedulingRequest&) {
    return SchedulingResponse{};
  });
  batcher.Drain();
  batcher.Drain();  // second drain (and the destructor's third) must not
                    // double-complete anything
  SchedulingRequest request;
  request.id = "late";
  const SchedulingResponse response = batcher.Execute(std::move(request));
  EXPECT_EQ(response.status, ResponseStatus::kShed);
  EXPECT_EQ(response.error_kind, util::ErrorKind::kInterrupted);
}

std::string UniqueSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_drain_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

TEST(DrainEdgeTest, StopMidFlightAnswersOrCleanlyEofsEveryFrame) {
  ServerOptions options;
  options.unix_socket_path = UniqueSocketPath("midflight");
  options.service.batcher.num_workers = 2;
  Server server(options);
  server.Start();
  std::thread serving([&] { server.Serve(); });

  fadesched::testing::ScenarioFuzzer fuzzer(17);
  std::atomic<std::size_t> answered{0}, eofs{0};
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      client.ConnectUnix(options.unix_socket_path);
      for (int r = 0;; ++r) {
        SchedulingRequest request;
        request.scenario = fuzzer.Case(static_cast<std::uint64_t>(c));
        request.scheduler = "rle";
        request.id = "c" + std::to_string(c) + "_" + std::to_string(r);
        std::string line;
        try {
          client.SendRaw(FormatRequestFrame(request));
          line = client.ReadLine();
        } catch (const util::HarnessError&) {
          // EOF (or reset) without a response: the frame was never
          // acknowledged — a retry elsewhere would be safe. This is the
          // only acceptable non-answer.
          eofs.fetch_add(1);
          return;
        }
        // Any line that did arrive must be complete and uncorrupted.
        try {
          const SchedulingResponse response = ParseResponseLine(line);
          if (!response.Ok() &&
              response.error_kind != util::ErrorKind::kInterrupted) {
            corrupt.store(true);
          }
        } catch (const std::exception&) {
          corrupt.store(true);
        }
        answered.fetch_add(1);
        // Longer than the server's 200 ms poll tick: the handler gets an
        // idle tick between our frames, which is the only point where a
        // drain may hang up (never mid-frame).
        std::this_thread::sleep_for(milliseconds(250));
      }
    });
  }

  std::this_thread::sleep_for(milliseconds(100));
  server.Stop();
  serving.join();
  for (auto& client : clients) client.join();

  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(answered.load(), 0u);
  // Every client ended with a clean EOF, never a partial line.
  EXPECT_EQ(eofs.load(), 3u);
}

}  // namespace
}  // namespace fadesched::service
