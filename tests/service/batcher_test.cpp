#include "service/batcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace fadesched::service {
namespace {

SchedulingRequest MakeRequest(const std::string& id) {
  SchedulingRequest request;
  request.id = id;
  return request;
}

SchedulingResponse OkResponse() {
  SchedulingResponse response;
  response.status = ResponseStatus::kOk;
  return response;
}

TEST(RequestBatcherTest, ExecutesAndEchoesTheRequestId) {
  RequestBatcher batcher([](const SchedulingRequest&) { return OkResponse(); });
  const SchedulingResponse response = batcher.Execute(MakeRequest("r7"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(response.id, "r7");
}

TEST(RequestBatcherTest, FullQueueShedsWithTransientKind) {
  std::atomic<bool> release{false};
  BatcherOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  RequestBatcher batcher(
      [&](const SchedulingRequest&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return OkResponse();
      },
      options);

  // One request occupies the worker, two fill the queue; the rest shed.
  std::vector<std::future<SchedulingResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(batcher.Submit(MakeRequest("r" + std::to_string(i))));
  }
  std::size_t shed = 0;
  std::size_t ok = 0;
  release.store(true);
  for (auto& future : futures) {
    const SchedulingResponse response = future.get();
    if (response.status == ResponseStatus::kShed) {
      ++shed;
      EXPECT_EQ(response.error_kind, util::ErrorKind::kTransient);
      EXPECT_EQ(response.ExitCode(), util::kExitRuntime);
    } else {
      EXPECT_TRUE(response.Ok());
      ++ok;
    }
  }
  EXPECT_GE(shed, 5u);  // at least 8 - (1 in flight + 2 queued)
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(shed + ok, 8u);
}

TEST(RequestBatcherTest, ExpiredQueueDeadlineTimesOutWithoutExecuting) {
  std::atomic<bool> release{false};
  std::atomic<int> executed{0};
  BatcherOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  RequestBatcher batcher(
      [&](const SchedulingRequest&) {
        ++executed;
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return OkResponse();
      },
      options);

  auto blocker = batcher.Submit(MakeRequest("blocker"));
  SchedulingRequest hurried = MakeRequest("hurried");
  hurried.deadline_seconds = 0.02;  // expires while the blocker runs
  auto timed = batcher.Submit(hurried);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  release.store(true);

  const SchedulingResponse response = timed.get();
  EXPECT_EQ(response.status, ResponseStatus::kTimeout);
  EXPECT_EQ(response.error_kind, util::ErrorKind::kTimeout);
  EXPECT_EQ(response.ExitCode(), util::kExitInterrupted);
  EXPECT_TRUE(blocker.get().Ok());
  EXPECT_EQ(executed.load(), 1);  // the timed-out request never ran
}

TEST(RequestBatcherTest, HandlerExceptionsAreClassifiedNotPropagated) {
  RequestBatcher batcher([](const SchedulingRequest& request)
                             -> SchedulingResponse {
    if (request.id == "fatal") throw std::logic_error("bad invariant");
    throw util::TimeoutError("watchdog fired");
  });

  const SchedulingResponse fatal = batcher.Execute(MakeRequest("fatal"));
  EXPECT_EQ(fatal.status, ResponseStatus::kError);
  EXPECT_EQ(fatal.error_kind, util::ErrorKind::kFatal);
  EXPECT_EQ(fatal.message, "bad invariant");

  const SchedulingResponse timeout = batcher.Execute(MakeRequest("t"));
  EXPECT_EQ(timeout.status, ResponseStatus::kError);
  EXPECT_EQ(timeout.error_kind, util::ErrorKind::kTimeout);
}

TEST(RequestBatcherTest, DrainCompletesQueuedWorkThenRejectsNew) {
  BatcherOptions options;
  options.num_workers = 2;
  RequestBatcher batcher(
      [](const SchedulingRequest&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return OkResponse();
      },
      options);
  std::vector<std::future<SchedulingResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(batcher.Submit(MakeRequest("r" + std::to_string(i))));
  }
  batcher.Drain();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().Ok());  // queued work completed, none dropped
  }

  const SchedulingResponse rejected = batcher.Execute(MakeRequest("late"));
  EXPECT_EQ(rejected.status, ResponseStatus::kShed);
  EXPECT_EQ(rejected.error_kind, util::ErrorKind::kInterrupted);
  EXPECT_EQ(rejected.ExitCode(), util::kExitInterrupted);
}

TEST(RequestBatcherTest, DrainIsIdempotent) {
  RequestBatcher batcher([](const SchedulingRequest&) { return OkResponse(); });
  batcher.Drain();
  batcher.Drain();
  EXPECT_TRUE(batcher.Draining());
}

TEST(RequestBatcherTest, MetricsCountEveryOutcome) {
  ServiceMetrics metrics;
  BatcherOptions options;
  options.num_workers = 2;
  RequestBatcher batcher(
      [](const SchedulingRequest&) { return OkResponse(); }, options,
      &metrics);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(batcher.Execute(MakeRequest("r")).Ok());
  }
  batcher.Drain();
  EXPECT_EQ(metrics.admitted.load(), 5u);
  EXPECT_EQ(metrics.completed.load(), 5u);
  EXPECT_EQ(metrics.total_latency.Count(), 5u);
  EXPECT_EQ(metrics.queue_latency.Count(), 5u);
}

TEST(RequestBatcherTest, WarmPriorityDequeueServesWarmBeforeQueuedCold) {
  std::atomic<bool> release{false};
  std::mutex order_mutex;
  std::vector<std::string> order;
  BatcherOptions options;
  options.num_workers = 1;  // single worker: dequeue order IS service order
  options.queue_capacity = 100;
  RequestBatcher batcher(
      [&](const SchedulingRequest& request) {
        if (request.id == "gate") {
          while (!release.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(request.id);
        return OkResponse();
      },
      options);

  std::vector<std::future<SchedulingResponse>> futures;
  futures.push_back(batcher.Submit(MakeRequest("gate")));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // gate in-flight
  // Colds enqueued first; warms submitted later must still jump them.
  for (int i = 0; i < 3; ++i) {
    futures.push_back(
        batcher.Submit(MakeRequest("c" + std::to_string(i)),
                       RequestClass::kCold));
  }
  for (int i = 0; i < 3; ++i) {
    futures.push_back(batcher.Submit(MakeRequest("w" + std::to_string(i))));
  }
  release.store(true);
  for (auto& future : futures) EXPECT_TRUE(future.get().Ok());

  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order[0], "gate");
  const std::vector<std::string> expected = {"w0", "w1", "w2",
                                             "c0", "c1", "c2"};
  EXPECT_EQ(std::vector<std::string>(order.begin() + 1, order.end()),
            expected);
}

TEST(RequestBatcherTest, ColdLaneBulkheadShedsColdButAdmitsWarm) {
  std::atomic<bool> release{false};
  BatcherOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;  // cold lane capped at 4 / 2 = 2
  RequestBatcher batcher(
      [&](const SchedulingRequest&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return OkResponse();
      },
      options);

  std::vector<std::future<SchedulingResponse>> futures;
  futures.push_back(batcher.Submit(MakeRequest("gate")));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Four colds against a cold cap of two: the lane fills while half the
  // shared capacity is still free.
  std::vector<std::future<SchedulingResponse>> colds;
  for (int i = 0; i < 4; ++i) {
    colds.push_back(batcher.Submit(MakeRequest("c" + std::to_string(i)),
                                   RequestClass::kCold));
  }
  // Warm admissions still have the other half of the queue.
  std::vector<std::future<SchedulingResponse>> warms;
  for (int i = 0; i < 2; ++i) {
    warms.push_back(batcher.Submit(MakeRequest("w" + std::to_string(i))));
  }
  // Depth is now 4 (2 cold + 2 warm): the shared bound sheds everyone.
  const SchedulingResponse overflow =
      batcher.Submit(MakeRequest("w2")).get();
  EXPECT_EQ(overflow.status, ResponseStatus::kShed);
  EXPECT_NE(overflow.message.find("queue full"), std::string::npos);

  release.store(true);
  std::size_t cold_ok = 0, cold_shed = 0;
  for (auto& future : colds) {
    const SchedulingResponse response = future.get();
    if (response.Ok()) {
      ++cold_ok;
    } else {
      ASSERT_EQ(response.status, ResponseStatus::kShed);
      EXPECT_EQ(response.error_kind, util::ErrorKind::kTransient);
      EXPECT_NE(response.message.find("cold lane full"), std::string::npos);
      ++cold_shed;
    }
  }
  EXPECT_EQ(cold_ok, 2u);
  EXPECT_EQ(cold_shed, 2u);
  for (auto& future : warms) EXPECT_TRUE(future.get().Ok());
}

TEST(RequestBatcherTest, ReservedWarmWorkerServesWarmWhileColdBuildsBlock) {
  std::atomic<bool> release{false};
  BatcherOptions options;
  options.num_workers = 2;  // worker 0 reserved for the warm lane
  RequestBatcher batcher(
      [&](const SchedulingRequest& request) {
        if (request.id[0] == 'c') {
          while (!release.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        return OkResponse();
      },
      options);

  // One cold occupies the general worker; the second sits queued, and the
  // reserved worker must refuse to pick it up.
  std::vector<std::future<SchedulingResponse>> colds;
  colds.push_back(batcher.Submit(MakeRequest("c0"), RequestClass::kCold));
  colds.push_back(batcher.Submit(MakeRequest("c1"), RequestClass::kCold));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Warm requests complete while every cold is still blocked — only the
  // reserved worker can be serving them.
  for (int i = 0; i < 3; ++i) {
    std::future<SchedulingResponse> warm =
        batcher.Submit(MakeRequest("w" + std::to_string(i)));
    ASSERT_EQ(warm.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_TRUE(warm.get().Ok());
  }

  release.store(true);
  for (auto& future : colds) EXPECT_TRUE(future.get().Ok());
}

}  // namespace
}  // namespace fadesched::service
