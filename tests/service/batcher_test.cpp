#include "service/batcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace fadesched::service {
namespace {

SchedulingRequest MakeRequest(const std::string& id) {
  SchedulingRequest request;
  request.id = id;
  return request;
}

SchedulingResponse OkResponse() {
  SchedulingResponse response;
  response.status = ResponseStatus::kOk;
  return response;
}

TEST(RequestBatcherTest, ExecutesAndEchoesTheRequestId) {
  RequestBatcher batcher([](const SchedulingRequest&) { return OkResponse(); });
  const SchedulingResponse response = batcher.Execute(MakeRequest("r7"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(response.id, "r7");
}

TEST(RequestBatcherTest, FullQueueShedsWithTransientKind) {
  std::atomic<bool> release{false};
  BatcherOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  RequestBatcher batcher(
      [&](const SchedulingRequest&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return OkResponse();
      },
      options);

  // One request occupies the worker, two fill the queue; the rest shed.
  std::vector<std::future<SchedulingResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(batcher.Submit(MakeRequest("r" + std::to_string(i))));
  }
  std::size_t shed = 0;
  std::size_t ok = 0;
  release.store(true);
  for (auto& future : futures) {
    const SchedulingResponse response = future.get();
    if (response.status == ResponseStatus::kShed) {
      ++shed;
      EXPECT_EQ(response.error_kind, util::ErrorKind::kTransient);
      EXPECT_EQ(response.ExitCode(), util::kExitRuntime);
    } else {
      EXPECT_TRUE(response.Ok());
      ++ok;
    }
  }
  EXPECT_GE(shed, 5u);  // at least 8 - (1 in flight + 2 queued)
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(shed + ok, 8u);
}

TEST(RequestBatcherTest, ExpiredQueueDeadlineTimesOutWithoutExecuting) {
  std::atomic<bool> release{false};
  std::atomic<int> executed{0};
  BatcherOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  RequestBatcher batcher(
      [&](const SchedulingRequest&) {
        ++executed;
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return OkResponse();
      },
      options);

  auto blocker = batcher.Submit(MakeRequest("blocker"));
  SchedulingRequest hurried = MakeRequest("hurried");
  hurried.deadline_seconds = 0.02;  // expires while the blocker runs
  auto timed = batcher.Submit(hurried);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  release.store(true);

  const SchedulingResponse response = timed.get();
  EXPECT_EQ(response.status, ResponseStatus::kTimeout);
  EXPECT_EQ(response.error_kind, util::ErrorKind::kTimeout);
  EXPECT_EQ(response.ExitCode(), util::kExitInterrupted);
  EXPECT_TRUE(blocker.get().Ok());
  EXPECT_EQ(executed.load(), 1);  // the timed-out request never ran
}

TEST(RequestBatcherTest, HandlerExceptionsAreClassifiedNotPropagated) {
  RequestBatcher batcher([](const SchedulingRequest& request)
                             -> SchedulingResponse {
    if (request.id == "fatal") throw std::logic_error("bad invariant");
    throw util::TimeoutError("watchdog fired");
  });

  const SchedulingResponse fatal = batcher.Execute(MakeRequest("fatal"));
  EXPECT_EQ(fatal.status, ResponseStatus::kError);
  EXPECT_EQ(fatal.error_kind, util::ErrorKind::kFatal);
  EXPECT_EQ(fatal.message, "bad invariant");

  const SchedulingResponse timeout = batcher.Execute(MakeRequest("t"));
  EXPECT_EQ(timeout.status, ResponseStatus::kError);
  EXPECT_EQ(timeout.error_kind, util::ErrorKind::kTimeout);
}

TEST(RequestBatcherTest, DrainCompletesQueuedWorkThenRejectsNew) {
  BatcherOptions options;
  options.num_workers = 2;
  RequestBatcher batcher(
      [](const SchedulingRequest&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return OkResponse();
      },
      options);
  std::vector<std::future<SchedulingResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(batcher.Submit(MakeRequest("r" + std::to_string(i))));
  }
  batcher.Drain();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().Ok());  // queued work completed, none dropped
  }

  const SchedulingResponse rejected = batcher.Execute(MakeRequest("late"));
  EXPECT_EQ(rejected.status, ResponseStatus::kShed);
  EXPECT_EQ(rejected.error_kind, util::ErrorKind::kInterrupted);
  EXPECT_EQ(rejected.ExitCode(), util::kExitInterrupted);
}

TEST(RequestBatcherTest, DrainIsIdempotent) {
  RequestBatcher batcher([](const SchedulingRequest&) { return OkResponse(); });
  batcher.Drain();
  batcher.Drain();
  EXPECT_TRUE(batcher.Draining());
}

TEST(RequestBatcherTest, MetricsCountEveryOutcome) {
  ServiceMetrics metrics;
  BatcherOptions options;
  options.num_workers = 2;
  RequestBatcher batcher(
      [](const SchedulingRequest&) { return OkResponse(); }, options,
      &metrics);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(batcher.Execute(MakeRequest("r")).Ok());
  }
  batcher.Drain();
  EXPECT_EQ(metrics.admitted.load(), 5u);
  EXPECT_EQ(metrics.completed.load(), 5u);
  EXPECT_EQ(metrics.total_latency.Count(), 5u);
  EXPECT_EQ(metrics.queue_latency.Count(), 5u);
}

}  // namespace
}  // namespace fadesched::service
