// End-to-end chaos soak contract: zero loss under an all-families fault
// storm, byte-identical fault traces for a fixed seed, a silent plan
// injecting nothing, a clean mid-storm drain, and the failure shrinker
// producing a reproducer line. These are the in-tree versions of what
// CI's chaos-smoke job runs at 10k requests.
#include "service/chaos/soak.hpp"

#include <gtest/gtest.h>

#include <string>

#include "service/chaos/chaos_plan.hpp"
#include "util/error.hpp"

namespace fadesched::service::chaos {
namespace {

/// Small-but-real soak configuration: every fault family enabled, short
/// stalls, fast retries. ~120 requests keeps the whole suite under a few
/// seconds while still injecting dozens of faults.
ChaosSoakOptions StormOptions(std::uint64_t seed) {
  ChaosSoakOptions options;
  options.num_requests = 120;
  options.num_clients = 4;
  options.pool_size = 8;
  options.links = 12;
  options.seed = seed;
  options.plan = ChaosPlan::AllFamilies(0.05, seed);
  options.plan.stall_seconds = 0.002;
  options.retry.initial_backoff_seconds = 0.001;
  options.retry.max_backoff_seconds = 0.01;
  return options;
}

TEST(ChaosSoakTest, AllFaultFamiliesAtFivePercentLoseNothing) {
  const ChaosSoakReport report = RunChaosSoak(StormOptions(3));
  EXPECT_TRUE(report.Ok()) << report.first_failure << "\n" << report.ToJson();
  EXPECT_EQ(report.sent, 120u);
  EXPECT_EQ(report.ok, 120u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.duplicated, 0u);
  EXPECT_EQ(report.corrupted, 0u);
  // The storm was real: faults were injected and absorbed by retries.
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_GT(report.retries, 0u);
  // Bounded recovery: no request may burn more than max_attempts.
  EXPECT_LE(report.retries,
            report.sent * (ChaosSoakOptions{}.retry.max_attempts - 1));
}

TEST(ChaosSoakTest, TheFaultTraceIsByteIdenticalAcrossRuns) {
  const ChaosSoakReport first = RunChaosSoak(StormOptions(11));
  const ChaosSoakReport second = RunChaosSoak(StormOptions(11));
  ASSERT_GT(first.faults_injected, 0u);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
  EXPECT_EQ(first.trace, second.trace);  // byte-for-byte, thread-order-free
}

TEST(ChaosSoakTest, DifferentSeedsProduceDifferentStorms) {
  const ChaosSoakReport a = RunChaosSoak(StormOptions(21));
  const ChaosSoakReport b = RunChaosSoak(StormOptions(22));
  EXPECT_NE(a.trace, b.trace);
  EXPECT_TRUE(a.Ok()) << a.first_failure;
  EXPECT_TRUE(b.Ok()) << b.first_failure;
}

TEST(ChaosSoakTest, AnInertPlanInjectsNothingAndRetriesNothing) {
  ChaosSoakOptions options = StormOptions(5);
  options.plan = ChaosPlan{};  // all probabilities zero
  options.num_requests = 40;
  const ChaosSoakReport report = RunChaosSoak(options);
  EXPECT_TRUE(report.Ok()) << report.first_failure;
  EXPECT_EQ(report.ok, 40u);
  EXPECT_EQ(report.faults_injected, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_TRUE(report.trace.empty());
}

TEST(ChaosSoakTest, MidRunDrainIsCleanRefusalNotLoss) {
  ChaosSoakOptions options = StormOptions(7);
  options.num_requests = 80;
  options.drain_mid_run = true;
  const ChaosSoakReport report = RunChaosSoak(options);
  EXPECT_TRUE(report.Ok()) << report.first_failure << "\n" << report.ToJson();
  EXPECT_TRUE(report.drained);
  // The drain landed mid-storm: some requests were served, the rest were
  // refused loudly — none lost silently.
  EXPECT_GT(report.ok, 0u);
  EXPECT_GT(report.unserved_after_drain, 0u);
  EXPECT_EQ(report.ok + report.unserved_after_drain, report.sent);
}

TEST(ChaosSoakTest, TheShrinkerNamesAMinimalFailingPlan) {
  // Force failure: one attempt only (no retry budget) under a heavy
  // all-families storm — some request WILL hit an injected fault and
  // give up. The shrinker must then hand back a reproducer line.
  ChaosSoakOptions options = StormOptions(9);
  options.num_requests = 40;
  options.plan = ChaosPlan::AllFamilies(0.4, 9);
  options.plan.stall_seconds = 0.001;
  options.retry.max_attempts = 1;
  const ChaosSoakReport report = RunChaosSoak(options);
  ASSERT_FALSE(report.Ok());
  EXPECT_FALSE(report.first_failure.empty());
  const std::string repro = ShrinkChaosFailure(options);
  EXPECT_NE(repro.find("chaos repro:"), std::string::npos) << repro;
  EXPECT_NE(repro.find("seed=9"), std::string::npos) << repro;
  EXPECT_NE(repro.find("requests=40"), std::string::npos) << repro;
}

TEST(ChaosSoakTest, OptionsValidateRejectsNonsense) {
  ChaosSoakOptions options;
  options.num_requests = 0;
  EXPECT_THROW(options.Validate(), util::HarnessError);
  options = ChaosSoakOptions{};
  options.num_clients = 0;
  EXPECT_THROW(options.Validate(), util::HarnessError);
  options = ChaosSoakOptions{};
  options.plan.SetProbability(FaultFamily::kRecvKill, 1.5);
  EXPECT_THROW(options.Validate(), util::HarnessError);
  EXPECT_NO_THROW(ChaosSoakOptions{}.Validate());
}

}  // namespace
}  // namespace fadesched::service::chaos
