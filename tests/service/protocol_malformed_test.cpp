// Malformed-frame hardening (a satellite of the chaos layer): truncated,
// oversized, garbage, and checksum-tampered frames must each produce a
// typed, line/byte-named error response — never a crash, never an
// unbounded buffer — and the server must keep serving afterwards. Run
// under ASan/UBSan in CI's chaos-smoke job.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service {
namespace {

std::string UniqueSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_mal_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

SchedulingRequest MakeRequest(const std::string& id) {
  fadesched::testing::ScenarioFuzzer fuzzer(5);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(0);
  request.scheduler = "rle";
  request.id = id;
  return request;
}

/// Server + serve-thread fixture shared by every case.
class MalformedFrameTest : public ::testing::Test {
 protected:
  void StartServer(const char* tag,
                   const std::function<void(ServerOptions&)>& tweak = {}) {
    options_.unix_socket_path = UniqueSocketPath(tag);
    if (tweak) tweak(options_);
    server_ = std::make_unique<Server>(options_);
    server_->Start();
    serving_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    if (server_) {
      server_->Stop();
      if (serving_.joinable()) serving_.join();
    }
  }

  ServiceMetrics& Metrics() { return server_->Service().Metrics(); }

  ServerOptions options_;
  std::unique_ptr<Server> server_;
  std::thread serving_;
};

TEST_F(MalformedFrameTest, TruncatedFrameNamesHowManyLinesArrived) {
  StartServer("trunc");
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  client.SendRaw("REQUEST id=t scheduler=rle\nrow one\nrow two\n");
  client.ShutdownWrite();  // EOF mid-frame, read side stays open
  const SchedulingResponse err = ParseResponseLine(client.ReadLine());
  EXPECT_EQ(err.status, ResponseStatus::kError);
  EXPECT_EQ(err.error_kind, util::ErrorKind::kFatal);
  EXPECT_NE(err.message.find("truncated request frame after 3 line(s)"),
            std::string::npos)
      << err.message;
  EXPECT_GE(Metrics().protocol_errors.load(), 1u);
}

TEST_F(MalformedFrameTest, OversizedFrameIsRejectedNamingTheCap) {
  StartServer("big", [](ServerOptions& options) {
    options.max_frame_bytes = 4096;
  });
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  // One endless line, no newline at all — the degenerate slowest case
  // for a line-oriented parser; must be capped, not buffered forever.
  client.SendRaw("REQUEST id=big scheduler=rle\n" +
                 std::string(8192, 'a'));
  const SchedulingResponse err = ParseResponseLine(client.ReadLine());
  EXPECT_EQ(err.status, ResponseStatus::kError);
  EXPECT_EQ(err.error_kind, util::ErrorKind::kFatal);
  EXPECT_NE(err.message.find("max_frame_bytes=4096"), std::string::npos)
      << err.message;
  EXPECT_EQ(Metrics().oversized_frames.load(), 1u);
  // The guard closes the connection: the next read sees EOF.
  EXPECT_THROW(client.ReadLine(), util::HarnessError);
}

TEST_F(MalformedFrameTest, GarbageBytesGetATypedErrorAndServiceContinues) {
  StartServer("garbage");
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  client.SendRaw("\x01\x02\x7f not a header\nEND\n");
  const SchedulingResponse err = ParseResponseLine(client.ReadLine());
  EXPECT_EQ(err.status, ResponseStatus::kError);
  EXPECT_EQ(err.error_kind, util::ErrorKind::kFatal);
  EXPECT_NE(err.message.find("request frame line 1"), std::string::npos)
      << err.message;
  // Same connection, valid request: still served.
  const SchedulingResponse ok = client.Call(MakeRequest("after-garbage"));
  EXPECT_TRUE(ok.Ok()) << ok.message;
}

TEST_F(MalformedFrameTest, TamperedChecksumIsATransientNotACallerBug) {
  StartServer("sum");
  std::string frame = FormatRequestFrame(MakeRequest("tamper"));
  const std::size_t pos = frame.find("check=");
  ASSERT_NE(pos, std::string::npos);
  // Flip one hex digit of the claimed checksum: the frame still parses,
  // so only the integrity check can catch it — and it must classify as
  // kTransient (wire corruption is retryable).
  frame[pos + 6] = frame[pos + 6] == '0' ? '1' : '0';
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  client.SendRaw(frame);
  const SchedulingResponse err = ParseResponseLine(client.ReadLine());
  EXPECT_EQ(err.status, ResponseStatus::kError);
  EXPECT_EQ(err.error_kind, util::ErrorKind::kTransient);
  EXPECT_NE(err.message.find("checksum mismatch"), std::string::npos)
      << err.message;
  EXPECT_EQ(Metrics().checksum_failures.load(), 1u);
}

TEST_F(MalformedFrameTest, HeaderTamperingIsCaughtByTheFrameChecksum) {
  StartServer("hdr");
  std::string frame = FormatRequestFrame(MakeRequest("hdr"));
  // Corrupt the scheduler NAME (still a parseable token): without the
  // frame-wide checksum this would surface as "unknown scheduler" — a
  // fake caller bug.
  const std::size_t pos = frame.find("scheduler=rle");
  ASSERT_NE(pos, std::string::npos);
  frame[pos + 10] = 'x';  // rle -> xle
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  client.SendRaw(frame);
  const SchedulingResponse err = ParseResponseLine(client.ReadLine());
  EXPECT_EQ(err.error_kind, util::ErrorKind::kTransient);
  EXPECT_NE(err.message.find("checksum mismatch"), std::string::npos)
      << err.message;
}

TEST_F(MalformedFrameTest, MidFrameDisconnectDoesNotPoisonTheServer) {
  StartServer("vanish");
  {
    Client client;
    client.ConnectUnix(options_.unix_socket_path);
    client.SendRaw("REQUEST id=v scheduler=rle\nhalf a frame\n");
    client.Close();  // vanish entirely, both directions
  }
  // A fresh client is served normally afterwards.
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  const SchedulingResponse ok = client.Call(MakeRequest("survivor"));
  EXPECT_TRUE(ok.Ok()) << ok.message;
}

TEST_F(MalformedFrameTest, SlowLorisMidFrameIsEvictedWithATimeout) {
  StartServer("loris", [](ServerOptions& options) {
    options.read_deadline_seconds = 0.3;
  });
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  client.SendRaw("REQUEST id=slow scheduler=rle\n");  // then... nothing
  const SchedulingResponse err = ParseResponseLine(client.ReadLine());
  EXPECT_EQ(err.status, ResponseStatus::kError);
  EXPECT_EQ(err.error_kind, util::ErrorKind::kTimeout);
  EXPECT_NE(err.message.find("read deadline"), std::string::npos)
      << err.message;
  EXPECT_EQ(Metrics().evicted_slow.load(), 1u);
}

TEST_F(MalformedFrameTest, IdleBetweenFramesIsNeverEvicted) {
  StartServer("idle", [](ServerOptions& options) {
    options.read_deadline_seconds = 0.2;
  });
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  // Sit idle well past the read deadline WITHOUT starting a frame:
  // keepalive is legitimate, only mid-frame stalls are evicted.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  const SchedulingResponse ok = client.Call(MakeRequest("keepalive"));
  EXPECT_TRUE(ok.Ok()) << ok.message;
  EXPECT_EQ(Metrics().evicted_slow.load(), 0u);
}

}  // namespace
}  // namespace fadesched::service
