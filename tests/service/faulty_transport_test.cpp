// FaultyTransport unit tests against the scripted FakeTransport: each
// fault family fires deterministically at probability 1, an inert plan
// is invisible, and a fixed seed yields an identical fault trace.
#include "service/chaos/faulty_transport.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "fake_transport.hpp"
#include "service/chaos/chaos_plan.hpp"
#include "service/metrics.hpp"
#include "util/error.hpp"

namespace fadesched::service::chaos {
namespace {

/// Builds a FaultyTransport around a FakeTransport, returning both (the
/// fake stays owned by the caller-visible raw pointer).
std::pair<std::unique_ptr<FaultyTransport>, FakeTransport*> Wrap(
    const ChaosPlan& plan, FaultTrace* trace = nullptr,
    ServiceMetrics* metrics = nullptr) {
  auto fake = std::make_unique<FakeTransport>();
  FakeTransport* raw = fake.get();
  auto faulty = std::make_unique<FaultyTransport>(std::move(fake), plan, 0,
                                                  trace, metrics);
  return {std::move(faulty), raw};
}

TEST(FaultyTransportTest, InertPlanIsInvisible) {
  FaultTrace trace;
  auto [transport, fake] = Wrap(ChaosPlan{}, &trace);
  transport->Connect();
  transport->Send("hello\n");
  fake->lines.push_back("world");
  EXPECT_EQ(transport->ReadLine(), "world");
  ASSERT_EQ(fake->sent.size(), 1u);
  EXPECT_EQ(fake->sent[0], "hello\n");
  EXPECT_EQ(trace.Count(), 0u);
}

TEST(FaultyTransportTest, ConnectResetFiresBeforeTheInnerConnect) {
  ChaosPlan plan;
  plan.connect_reset = 1.0;
  FaultTrace trace;
  ServiceMetrics metrics;
  auto [transport, fake] = Wrap(plan, &trace, &metrics);
  try {
    transport->Connect();
    FAIL() << "expected an injected connect reset";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTransient);
  }
  EXPECT_EQ(fake->connects, 0);  // the fault preempts the real connect
  EXPECT_FALSE(transport->Connected());
  EXPECT_EQ(trace.CountFamily(FaultFamily::kConnectReset), 1u);
  EXPECT_EQ(metrics.chaos_injected.load(), 1u);
}

TEST(FaultyTransportTest, SendCorruptFlipsExactlyOneByte) {
  ChaosPlan plan;
  plan.send_corrupt = 1.0;
  FaultTrace trace;
  auto [transport, fake] = Wrap(plan, &trace);
  transport->Connect();
  const std::string original = "REQUEST id=a scheduler=rle\npayload\nEND\n";
  transport->Send(original);
  ASSERT_EQ(fake->sent.size(), 1u);
  const std::string& delivered = fake->sent[0];
  ASSERT_EQ(delivered.size(), original.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (delivered[i] != original[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_EQ(trace.CountFamily(FaultFamily::kSendCorrupt), 1u);
}

TEST(FaultyTransportTest, SendTruncateDeliversAPrefixAndKillsTheConnection) {
  ChaosPlan plan;
  plan.send_truncate = 1.0;
  FaultTrace trace;
  auto [transport, fake] = Wrap(plan, &trace);
  transport->Connect();
  const std::string frame = "0123456789";
  EXPECT_THROW(transport->Send(frame), util::HarnessError);
  EXPECT_FALSE(transport->Connected());
  // Whatever was delivered is a strict prefix of the frame.
  if (!fake->sent.empty()) {
    ASSERT_EQ(fake->sent.size(), 1u);
    EXPECT_LT(fake->sent[0].size(), frame.size());
    EXPECT_EQ(frame.rfind(fake->sent[0], 0), 0u);
  }
  EXPECT_EQ(trace.CountFamily(FaultFamily::kSendTruncate), 1u);
}

TEST(FaultyTransportTest, SendDuplicateDeliversTheFrameTwice) {
  ChaosPlan plan;
  plan.send_duplicate = 1.0;
  auto [transport, fake] = Wrap(plan);
  transport->Connect();
  transport->Send("frame\n");
  ASSERT_EQ(fake->sent.size(), 2u);
  EXPECT_EQ(fake->sent[0], "frame\n");
  EXPECT_EQ(fake->sent[1], "frame\n");
}

TEST(FaultyTransportTest, RecvStallSurfacesAsTimeoutWithoutConsumingTheLine) {
  ChaosPlan plan;
  plan.recv_stall = 1.0;
  plan.stall_seconds = 0.0;  // don't actually sleep in a unit test
  auto [transport, fake] = Wrap(plan);
  transport->Connect();
  fake->lines.push_back("the response");
  try {
    transport->ReadLine();
    FAIL() << "expected an injected stall";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTimeout);
  }
  // The response was abandoned with the connection, not consumed.
  EXPECT_FALSE(transport->Connected());
  EXPECT_EQ(fake->lines.size(), 1u);
}

TEST(FaultyTransportTest, RecvKillResetsBeforeTheLine) {
  ChaosPlan plan;
  plan.recv_kill = 1.0;
  auto [transport, fake] = Wrap(plan);
  transport->Connect();
  fake->lines.push_back("never seen");
  try {
    transport->ReadLine();
    FAIL() << "expected an injected kill";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTransient);
  }
  EXPECT_FALSE(transport->Connected());
}

TEST(FaultyTransportTest, RecvCorruptFlipsExactlyOneByteOfTheLine) {
  ChaosPlan plan;
  plan.recv_corrupt = 1.0;
  auto [transport, fake] = Wrap(plan);
  transport->Connect();
  const std::string original = "OK id=a rate=1 schedule=-";
  fake->lines.push_back(original);
  const std::string delivered = transport->ReadLine();
  ASSERT_EQ(delivered.size(), original.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (delivered[i] != original[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(FaultyTransportTest, RecvDuplicateRedeliversTheLineOnTheNextRead) {
  ChaosPlan plan;
  plan.recv_duplicate = 1.0;
  auto [transport, fake] = Wrap(plan);
  transport->Connect();
  fake->lines.push_back("line one");
  const std::string first = transport->ReadLine();
  EXPECT_EQ(first, "line one");
  // The duplicate is served from the transport's own queue — the inner
  // transport has nothing more to deliver.
  const std::string second = transport->ReadLine();
  EXPECT_EQ(second, "line one");
}

TEST(FaultyTransportTest, DuplicatesDoNotSurviveReconnect) {
  ChaosPlan plan;
  plan.recv_duplicate = 1.0;
  auto [transport, fake] = Wrap(plan);
  transport->Connect();
  fake->lines.push_back("stale");
  EXPECT_EQ(transport->ReadLine(), "stale");
  transport->Connect();  // new connection: the pending duplicate is gone
  fake->lines.push_back("fresh");
  EXPECT_EQ(transport->ReadLine(), "fresh");
}

TEST(FaultyTransportTest, SameSeedSameFaultDecisions) {
  const ChaosPlan plan = ChaosPlan::AllFamilies(0.5, 77);
  const auto run = [&plan] {
    FaultTrace trace;
    auto [transport, fake] = Wrap(plan, &trace);
    for (int attempt = 0; attempt < 20; ++attempt) {
      try {
        if (!transport->Connected()) transport->Connect();
        transport->Send("frame line\nEND\n");
        fake->lines.push_back("OK id=a rate=1 schedule=-");
        (void)transport->ReadLine();
      } catch (const util::HarnessError&) {
        // Faults are the point; keep going.
      }
    }
    return trace.Format();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace fadesched::service::chaos
