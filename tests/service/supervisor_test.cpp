// Crash-only supervisor tests: seeded fault-plan determinism, crash
// restarts with backoff, the flap breaker, startup-crash injection,
// SIGHUP rolling restarts, and the end-to-end "worker killed mid-frame
// never acks — the idempotent re-send lands on a sibling with a
// byte-identical response" drill over a real shared listener.
//
// These tests fork real processes. Children run entirely inside
// Supervisor::SpawnWorker's child branch, which _exit()s after
// worker_main — they never return into gtest.
#include "service/supervisor.hpp"

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"
#include "util/signal_guard.hpp"

namespace fadesched::service {
namespace {

using std::chrono::milliseconds;

/// Worker that serves nothing: waits for the drain signal, exits 0.
int SleepyWorker(std::size_t /*slot*/, std::size_t /*ordinal*/) {
  util::ScopedSignalGuard guard;
  while (!util::ShutdownRequested()) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  return 0;
}

SupervisorOptions FastOptions(std::size_t workers) {
  SupervisorOptions options;
  options.num_workers = workers;
  options.backoff_initial_seconds = 0.01;
  options.backoff_max_seconds = 0.05;
  options.stable_seconds = 60.0;  // streaks never reset mid-test
  options.max_restarts_in_window = 100;
  options.restart_window_seconds = 60.0;
  options.drain_grace_seconds = 5.0;
  return options;
}

// ---------------------------------------------------------------------------
// Fault plan: pure functions, no processes.

TEST(ProcessFaultPlanTest, SameSeedSamePlan) {
  ProcessChaosOptions chaos;
  chaos.seed = 42;
  chaos.kills = 5;
  chaos.stalls = 3;
  chaos.startup_crashes = 2;
  const auto a = BuildProcessFaultPlan(chaos, 3);
  const auto b = BuildProcessFaultPlan(chaos, 3);
  EXPECT_EQ(FormatProcessFaultPlan(a), FormatProcessFaultPlan(b));
  EXPECT_EQ(a.size(), 10u);
}

TEST(ProcessFaultPlanTest, DifferentSeedsDiffer) {
  ProcessChaosOptions chaos;
  chaos.kills = 5;
  chaos.seed = 1;
  const auto a = BuildProcessFaultPlan(chaos, 3);
  chaos.seed = 2;
  const auto b = BuildProcessFaultPlan(chaos, 3);
  EXPECT_NE(FormatProcessFaultPlan(a), FormatProcessFaultPlan(b));
}

TEST(ProcessFaultPlanTest, AddingStallsDoesNotMoveKills) {
  ProcessChaosOptions chaos;
  chaos.seed = 7;
  chaos.kills = 4;
  const auto kills_only = BuildProcessFaultPlan(chaos, 2);
  chaos.stalls = 6;
  const auto mixed = BuildProcessFaultPlan(chaos, 2);
  // Per-kind derived streams: the kill events must be identical whether
  // or not stalls ride along (the shrink property — dropping one fault
  // family leaves the others untouched).
  std::vector<std::pair<double, std::size_t>> a, b;
  for (const auto& e : kills_only) {
    if (e.kind == ProcessFaultEvent::Kind::kKill) a.push_back({e.at_seconds, e.slot});
  }
  for (const auto& e : mixed) {
    if (e.kind == ProcessFaultEvent::Kind::kKill) b.push_back({e.at_seconds, e.slot});
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4u);
}

TEST(ProcessFaultPlanTest, PlanIsTimeSortedAndInsideWindow) {
  ProcessChaosOptions chaos;
  chaos.seed = 9;
  chaos.kills = 8;
  chaos.stalls = 8;
  chaos.window_seconds = 2.5;
  const auto plan = BuildProcessFaultPlan(chaos, 4);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].at_seconds, plan[i].at_seconds);
  }
  for (const auto& e : plan) {
    EXPECT_GE(e.at_seconds, 0.0);
    EXPECT_LT(e.at_seconds, chaos.window_seconds);
    EXPECT_LT(e.slot, 4u);
  }
}

TEST(ProcessFaultPlanTest, ValidateRejectsBadWindow) {
  ProcessChaosOptions chaos;
  chaos.window_seconds = 0.0;
  EXPECT_THROW(chaos.Validate(), util::HarnessError);
}

TEST(SupervisorOptionsTest, ValidateRejectsBadConfigs) {
  {
    SupervisorOptions bad = FastOptions(0);
    EXPECT_THROW(bad.Validate(), util::HarnessError);
  }
  {
    SupervisorOptions bad = FastOptions(1);
    bad.backoff_multiplier = 0.5;
    EXPECT_THROW(bad.Validate(), util::HarnessError);
  }
  {
    SupervisorOptions bad = FastOptions(1);
    bad.max_restarts_in_window = 0;
    EXPECT_THROW(bad.Validate(), util::HarnessError);
  }
}

// ---------------------------------------------------------------------------
// Process-level behaviour.

TEST(SupervisorTest, StopDrainsAllWorkersCleanly) {
  Supervisor supervisor(SleepyWorker, FastOptions(3));
  SupervisorReport report;
  std::thread runner([&] { report = supervisor.Run(); });
  std::this_thread::sleep_for(milliseconds(200));
  supervisor.Stop();
  runner.join();
  EXPECT_EQ(report.spawned, 3u);
  EXPECT_EQ(report.restarts, 0u);
  EXPECT_EQ(report.crashes, 0u);
  EXPECT_FALSE(report.breaker_open);
}

TEST(SupervisorTest, CrashedWorkersAreRestartedUntilStable) {
  // Ordinals 0..2 crash on sight; ordinal 3 serves. One slot, so the
  // sequence is strictly: crash, backoff, crash, backoff, crash, stable.
  Supervisor supervisor(
      [](std::size_t slot, std::size_t ordinal) {
        return ordinal < 3 ? 1 : SleepyWorker(slot, ordinal);
      },
      FastOptions(1));
  SupervisorReport report;
  std::thread runner([&] { report = supervisor.Run(); });
  std::this_thread::sleep_for(milliseconds(700));
  supervisor.Stop();
  runner.join();
  EXPECT_EQ(report.spawned, 4u);
  EXPECT_EQ(report.restarts, 3u);
  EXPECT_EQ(report.crashes, 3u);
  EXPECT_FALSE(report.breaker_open);
}

TEST(SupervisorTest, FlapBreakerOpensOnCrashLoop) {
  SupervisorOptions options = FastOptions(2);
  options.backoff_initial_seconds = 0.001;
  options.backoff_max_seconds = 0.005;
  options.max_restarts_in_window = 4;
  options.restart_window_seconds = 30.0;
  // Every spawn crashes instantly: Run must terminate on its own with
  // the breaker open (the test would time out if it looped forever).
  Supervisor supervisor([](std::size_t, std::size_t) { return 1; }, options);
  const SupervisorReport report = supervisor.Run();
  EXPECT_TRUE(report.breaker_open);
  EXPECT_GT(report.restarts, options.max_restarts_in_window);
}

TEST(SupervisorTest, StartupCrashInjectionIsCountedAndRecovered) {
  SupervisorOptions options = FastOptions(2);
  options.chaos.startup_crashes = 2;
  Supervisor supervisor(SleepyWorker, options);
  SupervisorReport report;
  std::thread runner([&] { report = supervisor.Run(); });
  std::this_thread::sleep_for(milliseconds(400));
  supervisor.Stop();
  runner.join();
  // Both initial spawns _exit(77) before serving; the respawns are clean.
  EXPECT_EQ(report.startup_crashes, 2u);
  EXPECT_EQ(report.crashes, 2u);
  EXPECT_EQ(report.spawned, 4u);
  EXPECT_FALSE(report.breaker_open);
}

TEST(SupervisorTest, InjectedKillsAllLandAndRestart) {
  SupervisorOptions options = FastOptions(2);
  options.chaos.kills = 3;
  options.chaos.window_seconds = 0.4;
  options.chaos.seed = 5;
  Supervisor supervisor(SleepyWorker, options);
  SupervisorReport report;
  std::thread runner([&] { report = supervisor.Run(); });
  // Window + backoffs + a margin: every planned kill must actually land
  // (held, not dropped, when its victim is mid-respawn).
  std::this_thread::sleep_for(milliseconds(1200));
  supervisor.Stop();
  runner.join();
  EXPECT_EQ(report.injected_kills, 3u);
  EXPECT_EQ(report.crashes, 3u);
  EXPECT_EQ(report.restarts, 3u);
  EXPECT_EQ(report.spawned, 5u);
}

TEST(SupervisorTest, StallsPauseWithoutRestarting) {
  SupervisorOptions options = FastOptions(2);
  options.chaos.stalls = 2;
  options.chaos.window_seconds = 0.3;
  options.chaos.stall_seconds = 0.05;
  Supervisor supervisor(SleepyWorker, options);
  SupervisorReport report;
  std::thread runner([&] { report = supervisor.Run(); });
  std::this_thread::sleep_for(milliseconds(700));
  supervisor.Stop();
  runner.join();
  // A SIGSTOP/SIGCONT stall is not a crash: nothing restarts.
  EXPECT_EQ(report.injected_stalls, 2u);
  EXPECT_EQ(report.crashes, 0u);
  EXPECT_EQ(report.restarts, 0u);
}

TEST(SupervisorTest, SighupRollsEveryWorkerWithoutCrashCounts) {
  Supervisor supervisor(SleepyWorker, FastOptions(2));
  SupervisorReport report;
  std::thread runner([&] { report = supervisor.Run(); });
  std::this_thread::sleep_for(milliseconds(150));
  ::kill(::getpid(), SIGHUP);
  std::this_thread::sleep_for(milliseconds(500));
  supervisor.Stop();
  runner.join();
  EXPECT_EQ(report.rolled, 2u);
  EXPECT_EQ(report.spawned, 4u);
  EXPECT_EQ(report.crashes, 0u);
  EXPECT_EQ(report.restarts, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: shared listener, real requests, a worker that dies at the
// worst possible instant (request executed, response never written).

std::string UniqueSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_sup_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

SchedulingRequest MakeRequest(const std::string& id) {
  fadesched::testing::ScenarioFuzzer fuzzer(13);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(0);
  request.scheduler = "rle";
  request.id = id;
  return request;
}

TEST(SupervisorLoopbackTest, KilledMidFrameNeverAcksAndSiblingServesByteIdentical) {
  ServerOptions bind_options;
  bind_options.unix_socket_path = UniqueSocketPath("midframe");
  const int listen_fd = BindListenSocket(bind_options, nullptr);

  ServerOptions worker_options = bind_options;
  worker_options.unix_socket_path.clear();  // workers never unlink
  worker_options.inherited_listen_fd = listen_fd;

  SupervisorOptions options = FastOptions(2);
  Supervisor supervisor(
      [worker_options](std::size_t, std::size_t ordinal) {
        ServerOptions mine = worker_options;
        // Both initial workers abort right before their first reply: the
        // request executes, the response line is never written. Respawns
        // (ordinal >= 2) are healthy.
        if (ordinal < 2) mine.chaos_abort_before_reply = 1;
        Server server(mine);
        server.Start();
        util::ScopedSignalGuard guard;
        server.Serve();
        return 0;
      },
      options);
  SupervisorReport report;
  std::thread runner([&] { report = supervisor.Run(); });
  std::this_thread::sleep_for(milliseconds(150));

  const std::string frame = FormatRequestFrame(MakeRequest("once"));
  std::string first_line;
  std::size_t aborted_attempts = 0;
  for (int attempt = 0; attempt < 12 && first_line.empty(); ++attempt) {
    Client client;
    client.ConnectUnix(bind_options.unix_socket_path);
    try {
      client.SendRaw(frame);
      first_line = client.ReadLine();
    } catch (const util::HarnessError&) {
      // The worker died before acking: no response bytes, connection
      // closed. The re-send below must be safe precisely because nothing
      // was acknowledged.
      ++aborted_attempts;
      std::this_thread::sleep_for(milliseconds(100));
    }
  }
  ASSERT_FALSE(first_line.empty()) << "no worker ever answered";
  // Both initial workers were doomed, so the very first send cannot have
  // been acknowledged.
  EXPECT_GE(aborted_attempts, 1u);

  // Idempotent re-send of the identical frame on a fresh connection: a
  // sibling (or respawn) must produce the byte-identical response line.
  Client again;
  again.ConnectUnix(bind_options.unix_socket_path);
  again.SendRaw(frame);
  EXPECT_EQ(again.ReadLine(), first_line);
  const SchedulingResponse parsed = ParseResponseLine(first_line);
  EXPECT_TRUE(parsed.Ok()) << parsed.message;

  supervisor.Stop();
  runner.join();
  EXPECT_GE(report.crashes, 1u);  // the doomed workers _Exit(137)ed
  ::close(listen_fd);
  ::unlink(bind_options.unix_socket_path.c_str());
}

}  // namespace
}  // namespace fadesched::service
