#include "service/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "sched/registry.hpp"
#include "service/protocol.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service {
namespace {

SchedulingRequest MakeRequest(std::uint64_t case_index,
                              const std::string& scheduler = "rle") {
  fadesched::testing::ScenarioFuzzer fuzzer(7);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(case_index);
  request.scheduler = scheduler;
  request.id = "c" + std::to_string(case_index);
  return request;
}

TEST(SchedulingServiceTest, ServesAScheduleMatchingTheDirectScheduler) {
  SchedulingService service;
  const SchedulingRequest request = MakeRequest(0);
  const SchedulingResponse response = service.HandleNow(request);
  ASSERT_TRUE(response.Ok()) << response.message;

  const sched::SchedulerPtr direct = sched::MakeScheduler("rle");
  const sched::ScheduleResult expected =
      direct->Schedule(request.scenario.links, request.scenario.params);
  EXPECT_EQ(response.schedule, expected.schedule);
  EXPECT_DOUBLE_EQ(response.claimed_rate, expected.claimed_rate);
}

TEST(SchedulingServiceTest, CacheHitIsByteIdenticalToTheMiss) {
  SchedulingService service;
  const SchedulingRequest request = MakeRequest(0);
  const SchedulingResponse cold = service.HandleNow(request);
  const SchedulingResponse warm = service.HandleNow(request);
  ASSERT_TRUE(cold.Ok());
  ASSERT_TRUE(warm.Ok());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  // The wire bytes are what the determinism contract covers — cache_hit
  // is diagnostics and deliberately not serialized.
  EXPECT_EQ(FormatResponseLine(cold), FormatResponseLine(warm));
  EXPECT_EQ(service.Metrics().response_hits.load(), 1u);
}

TEST(SchedulingServiceTest, UnknownSchedulerIsAnErrorResponse) {
  SchedulingService service;
  SchedulingRequest request = MakeRequest(0);
  request.scheduler = "no_such_algorithm";
  const SchedulingResponse response = service.HandleNow(request);
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(response.error_kind, util::ErrorKind::kFatal);
  EXPECT_NE(response.message.find("no_such_algorithm"), std::string::npos);
}

TEST(SchedulingServiceTest, OversizedExactInstanceFailsGracefully) {
  SchedulingService service;
  // exact_brute_force caps its instance size; a larger request must come
  // back as a classified error response, not an exception.
  fadesched::testing::FuzzerOptions fuzz;
  fuzz.min_links = 40;
  fuzz.max_links = 40;
  fadesched::testing::ScenarioFuzzer fuzzer(11, fuzz);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(0);
  request.scheduler = "exact_brute_force";
  request.id = "big";
  const SchedulingResponse response = service.HandleNow(request);
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_FALSE(response.message.empty());
}

TEST(SchedulingServiceTest, DifferentSchedulersShareTheScenarioEntry) {
  SchedulingService service;
  const SchedulingRequest rle = MakeRequest(0, "rle");
  const SchedulingRequest greedy = MakeRequest(0, "fading_greedy");
  ASSERT_TRUE(service.HandleNow(rle).Ok());
  ASSERT_TRUE(service.HandleNow(greedy).Ok());
  // One scenario build, two response entries.
  EXPECT_EQ(service.Metrics().scenario_misses.load(), 1u);
  EXPECT_EQ(service.Metrics().scenario_hits.load(), 1u);
  EXPECT_EQ(service.Metrics().response_misses.load(), 2u);
}

TEST(SchedulingServiceTest, BatchedPathMatchesDirectPath) {
  SchedulingService service;
  const SchedulingRequest request = MakeRequest(2);
  const SchedulingResponse direct = service.HandleNow(request);
  const SchedulingResponse batched = service.Execute(request);
  ASSERT_TRUE(direct.Ok());
  ASSERT_TRUE(batched.Ok());
  EXPECT_EQ(FormatResponseLine(direct), FormatResponseLine(batched));
  service.Drain();
}

TEST(SchedulingServiceTest, ConcurrentIdenticalRequestsAgreeByteForByte) {
  ServiceOptions options;
  options.batcher.num_workers = 4;
  SchedulingService service(options);
  constexpr std::size_t kPool = 4;
  constexpr std::size_t kRequests = 64;
  std::vector<std::future<SchedulingResponse>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    SchedulingRequest request = MakeRequest(i % kPool);
    request.id = "p" + std::to_string(i % kPool);
    futures.push_back(service.Submit(std::move(request)));
  }
  std::vector<std::string> first(kPool);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const SchedulingResponse response = futures[i].get();
    ASSERT_TRUE(response.Ok()) << response.message;
    const std::string line = FormatResponseLine(response);
    std::string& expected = first[i % kPool];
    if (expected.empty()) {
      expected = line;
    } else {
      EXPECT_EQ(expected, line);
    }
  }
  service.Drain();
}

TEST(SchedulingServiceTest, ResponseCacheHitIsServedInlineAlreadyFulfilled) {
  SchedulingService service;
  const SchedulingRequest request = MakeRequest(0);
  ASSERT_TRUE(service.Execute(request).Ok());  // populate the response cache

  const auto submitted_before = service.Metrics().submitted.load();
  std::future<SchedulingResponse> warm = service.Submit(request);
  // The fast path fulfills the future on the calling thread — it must be
  // ready the instant Submit returns, without a worker ever touching it.
  ASSERT_EQ(warm.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const SchedulingResponse response = warm.get();
  ASSERT_TRUE(response.Ok()) << response.message;
  EXPECT_TRUE(response.cache_hit);
  EXPECT_EQ(response.id, request.id);
  // The inline path still keeps the admission ledger consistent.
  EXPECT_EQ(service.Metrics().submitted.load(), submitted_before + 1);
  EXPECT_EQ(service.Metrics().completed.load(),
            service.Metrics().admitted.load());
  service.Drain();
}

TEST(SchedulingServiceTest, DrainClosesTheInlineFastPathToo) {
  SchedulingService service;
  const SchedulingRequest request = MakeRequest(0);
  ASSERT_TRUE(service.Execute(request).Ok());
  service.Drain();
  // A cached response must not be a backdoor around drain: the rejection
  // comes from the batcher with the canonical typed kind.
  const SchedulingResponse rejected = service.Submit(request).get();
  EXPECT_EQ(rejected.status, ResponseStatus::kShed);
  EXPECT_EQ(rejected.error_kind, util::ErrorKind::kInterrupted);
}

TEST(SchedulingServiceTest, EmptyLinkSetIsServed) {
  SchedulingService service;
  SchedulingRequest request;
  request.scheduler = "rle";
  request.scenario.params.Validate();
  const SchedulingResponse response = service.HandleNow(request);
  ASSERT_TRUE(response.Ok()) << response.message;
  EXPECT_TRUE(response.schedule.empty());
}

}  // namespace
}  // namespace fadesched::service
