// Batcher-under-chaos (a satellite of the chaos layer): a client that
// dies mid-request — before its response can be written — must not leak
// a queue slot or leave a future unfulfilled. The accounting invariant
// is: every admitted request resolves (completed/failed/timed_out), the
// queue returns to depth 0, and a drain fulfills every pending promise.
// Run under ASan in CI's chaos-smoke job, which would flag a leaked
// std::promise shared state.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/batcher.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "testing/fuzzer.hpp"

namespace fadesched::service {
namespace {

std::string UniqueSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_bc_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

SchedulingRequest MakeRequest(const std::string& id) {
  fadesched::testing::ScenarioFuzzer fuzzer(7);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(0);
  request.scheduler = "rle";
  request.id = id;
  return request;
}

SchedulingResponse OkResponse(const SchedulingRequest& request) {
  SchedulingResponse response;
  response.id = request.id;
  response.claimed_rate = 1.0;
  return response;
}

/// A handler whose execution can be held at a gate, so tests can pin
/// requests in the queue deterministically.
class GatedHandler {
 public:
  RequestBatcher::Handler AsHandler() {
    return [this](const SchedulingRequest& request) {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      cv_wait_.notify_all();
      cv_.wait(lock, [this] { return open_; });
      return OkResponse(request);
    };
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

  void WaitForEntered(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_wait_.wait_for(lock, std::chrono::seconds(5),
                      [&] { return entered_ >= n; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable cv_wait_;
  bool open_ = false;
  int entered_ = 0;
};

TEST(BatcherChaosTest, AbandonedFuturesStillResolveAndFreeTheirSlots) {
  ServiceMetrics metrics;
  BatcherOptions options;
  options.num_workers = 2;
  options.queue_capacity = 8;
  RequestBatcher batcher(
      [](const SchedulingRequest& request) { return OkResponse(request); },
      options, &metrics);
  // Submit and immediately DROP every future — the dead-client pattern.
  // The promise's shared state must be fulfilled and released regardless
  // (ASan flags it otherwise).
  for (int i = 0; i < 16; ++i) {
    batcher.Submit(MakeRequest("drop-" + std::to_string(i)));
  }
  batcher.Drain();
  EXPECT_EQ(batcher.QueueDepth(), 0u);
  // Depending on worker scheduling some submits may shed (capacity 8),
  // but every one of the 16 reached a terminal outcome, and everything
  // admitted was resolved — no slot leaked behind a dropped future.
  EXPECT_EQ(metrics.admitted.load() + metrics.shed.load(), 16u);
  EXPECT_EQ(metrics.completed.load() + metrics.failed.load() +
                metrics.timed_out.load(),
            metrics.admitted.load());
}

TEST(BatcherChaosTest, DrainFulfillsEveryPendingFuture) {
  GatedHandler gate;
  BatcherOptions options;
  options.num_workers = 1;
  options.queue_capacity = 16;
  RequestBatcher batcher(gate.AsHandler(), options);
  std::vector<std::future<SchedulingResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(batcher.Submit(MakeRequest(std::to_string(i))));
  }
  std::thread draining([&] { batcher.Drain(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.Open();
  draining.join();
  // Drain completes queued + in-flight work: every future is ready and
  // carries a real response (the contract says futures never dangle).
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(future.get().Ok());
  }
  EXPECT_EQ(batcher.QueueDepth(), 0u);
}

TEST(BatcherChaosTest, SubmitDuringDrainIsAnsweredNotDropped) {
  ServiceMetrics metrics;
  RequestBatcher batcher(
      [](const SchedulingRequest& request) { return OkResponse(request); },
      {}, &metrics);
  batcher.Drain();
  std::future<SchedulingResponse> future =
      batcher.Submit(MakeRequest("late"));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(1)),
            std::future_status::ready);
  const SchedulingResponse response = future.get();
  EXPECT_EQ(response.status, ResponseStatus::kShed);
  EXPECT_EQ(response.error_kind, util::ErrorKind::kInterrupted);
  EXPECT_EQ(metrics.rejected_draining.load(), 1u);
}

TEST(BatcherChaosTest, ShedResponsesAreImmediateWhenTheQueueIsFull) {
  GatedHandler gate;
  ServiceMetrics metrics;
  BatcherOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  RequestBatcher batcher(gate.AsHandler(), options, &metrics);
  // First request occupies the worker; second fills the single slot.
  std::future<SchedulingResponse> running =
      batcher.Submit(MakeRequest("running"));
  gate.WaitForEntered(1);
  std::future<SchedulingResponse> queued =
      batcher.Submit(MakeRequest("queued"));
  // Third must shed immediately — blocking here would be the exact
  // failure mode the chaos soak guards against (a wedged producer).
  std::future<SchedulingResponse> extra = batcher.Submit(MakeRequest("x"));
  ASSERT_EQ(extra.wait_for(std::chrono::seconds(1)),
            std::future_status::ready);
  EXPECT_EQ(extra.get().status, ResponseStatus::kShed);
  EXPECT_EQ(metrics.shed.load(), 1u);
  gate.Open();
  EXPECT_TRUE(running.get().Ok());
  EXPECT_TRUE(queued.get().Ok());
  batcher.Drain();
  EXPECT_EQ(metrics.admitted.load(), 2u);
  EXPECT_EQ(metrics.completed.load(), 2u);
}

TEST(BatcherChaosTest, DeadSocketClientDoesNotLeakItsRequest) {
  ServerOptions options;
  options.unix_socket_path = UniqueSocketPath("dead");
  Server server(options);
  server.Start();
  std::thread serving([&] { server.Serve(); });

  // A client that submits a valid request and vanishes before reading
  // the answer. The connection thread's response write fails (EPIPE),
  // which must be absorbed — not crash via SIGPIPE, not leak the slot.
  for (int i = 0; i < 4; ++i) {
    Client client;
    client.ConnectUnix(options.unix_socket_path);
    client.SendRaw(FormatRequestFrame(MakeRequest("dead-" + std::to_string(i))));
    client.Close();  // gone before the response exists
  }

  // The service keeps working for well-behaved clients afterwards.
  Client survivor;
  survivor.ConnectUnix(options.unix_socket_path);
  const SchedulingResponse ok = survivor.Call(MakeRequest("alive"));
  EXPECT_TRUE(ok.Ok()) << ok.message;
  survivor.Close();

  server.Stop();
  serving.join();
  // After the drain, the admission ledger balances: everything admitted
  // was resolved even though four responses had nowhere to go.
  ServiceMetrics& metrics = server.Service().Metrics();
  EXPECT_GE(metrics.admitted.load(), 1u);
  EXPECT_EQ(metrics.admitted.load(),
            metrics.completed.load() + metrics.failed.load() +
                metrics.timed_out.load());
}

}  // namespace
}  // namespace fadesched::service
