// OverloadController unit tests. Time is passed in explicitly, so every
// CoDel interval / hysteresis transition is pinned deterministically —
// no sleeps, no wall clock.
#include "service/overload.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "service/metrics.hpp"
#include "util/error.hpp"

namespace fadesched::service {
namespace {

using Clock = OverloadController::Clock;
using std::chrono::milliseconds;

OverloadOptions FastOptions() {
  OverloadOptions options;
  options.queue_delay_target_ms = 5.0;
  options.interval_ms = 100.0;
  options.ewma_alpha = 1.0;  // EWMA == last sample: exact assertions
  return options;
}

Clock::time_point T0() { return Clock::time_point{} + milliseconds(1000); }

/// Feeds `count` samples of `delay_ms` spaced `step_ms` apart starting at
/// `start`; returns the time just after the last sample.
Clock::time_point Feed(OverloadController& ctl, double delay_ms,
                       int count, Clock::time_point start,
                       int step_ms = 30) {
  Clock::time_point now = start;
  for (int i = 0; i < count; ++i) {
    ctl.ObserveQueueDelay(delay_ms * 1e-3, now);
    now += milliseconds(step_ms);
  }
  return now;
}

TEST(OverloadControllerTest, BelowTargetNeverSheds) {
  OverloadController ctl(FastOptions());
  const auto end = Feed(ctl, 2.0, 50, T0());
  EXPECT_FALSE(ctl.Overloaded());
  EXPECT_TRUE(ctl.Admit(RequestClass::kCold, 10, end).admit);
}

TEST(OverloadControllerTest, SingleSpikeDoesNotTripOverload) {
  OverloadController ctl(FastOptions());
  // One above-target sample arms the timer but the interval has not
  // elapsed; the next below-target sample disarms it.
  ctl.ObserveQueueDelay(0.050, T0());
  EXPECT_FALSE(ctl.Overloaded());
  ctl.ObserveQueueDelay(0.001, T0() + milliseconds(30));
  EXPECT_FALSE(ctl.Overloaded());
}

TEST(OverloadControllerTest, SustainedDelayTripsAfterInterval) {
  OverloadController ctl(FastOptions());
  const auto end = Feed(ctl, 20.0, 5, T0());  // 120 ms above target
  EXPECT_TRUE(ctl.Overloaded());
  const AdmitDecision cold = ctl.Admit(RequestClass::kCold, 4, end);
  EXPECT_FALSE(cold.admit);
  EXPECT_GT(cold.retry_after_ms, 0.0);
}

TEST(OverloadControllerTest, ColdPolicyStillAdmitsWarm) {
  OverloadController ctl(FastOptions());
  const auto end = Feed(ctl, 20.0, 5, T0());
  ASSERT_TRUE(ctl.Overloaded());
  EXPECT_TRUE(ctl.Admit(RequestClass::kWarm, 4, end).admit);
  EXPECT_FALSE(ctl.Admit(RequestClass::kCold, 4, end).admit);
}

TEST(OverloadControllerTest, AllPolicyShedsWarmToo) {
  OverloadOptions options = FastOptions();
  options.shed_policy = ShedPolicy::kAll;
  OverloadController ctl(options);
  const auto end = Feed(ctl, 20.0, 5, T0());
  EXPECT_FALSE(ctl.Admit(RequestClass::kWarm, 4, end).admit);
}

TEST(OverloadControllerTest, NonePolicyNeverSheds) {
  OverloadOptions options = FastOptions();
  options.shed_policy = ShedPolicy::kNone;
  OverloadController ctl(options);
  const auto end = Feed(ctl, 20.0, 10, T0());
  EXPECT_TRUE(ctl.Admit(RequestClass::kCold, 100, end).admit);
}

TEST(OverloadControllerTest, BelowTargetSampleClearsOverload) {
  OverloadController ctl(FastOptions());
  auto now = Feed(ctl, 20.0, 5, T0());
  ASSERT_TRUE(ctl.Overloaded());
  ctl.ObserveQueueDelay(0.001, now);
  EXPECT_FALSE(ctl.Overloaded());
  EXPECT_TRUE(ctl.Admit(RequestClass::kCold, 4, now).admit);
}

TEST(OverloadControllerTest, EmptyQueueResetsStaleVerdict) {
  OverloadController ctl(FastOptions());
  const auto end = Feed(ctl, 20.0, 5, T0());
  ASSERT_TRUE(ctl.Overloaded());
  // Idle: the first request after the queue empties must be admitted no
  // matter what the stale history says.
  EXPECT_TRUE(ctl.Admit(RequestClass::kCold, 0, end).admit);
  EXPECT_FALSE(ctl.Overloaded());
  EXPECT_EQ(ctl.QueueDelayEwmaSeconds(), 0.0);
}

TEST(OverloadControllerTest, RetryAfterTracksEwmaWithinClamp) {
  OverloadOptions options = FastOptions();
  options.retry_after_min_ms = 10.0;
  options.retry_after_max_ms = 250.0;
  OverloadController ctl(options);
  // alpha = 1 → EWMA == last sample. 2×40 ms = 80 ms, inside the clamp.
  Feed(ctl, 40.0, 5, T0());
  EXPECT_DOUBLE_EQ(ctl.RetryAfterMs(), 80.0);
  // 2×1000 ms clamps at max.
  Feed(ctl, 1000.0, 1, T0() + milliseconds(500));
  EXPECT_DOUBLE_EQ(ctl.RetryAfterMs(), 250.0);
  // 2×1 ms clamps at min.
  Feed(ctl, 1.0, 1, T0() + milliseconds(600));
  EXPECT_DOUBLE_EQ(ctl.RetryAfterMs(), 10.0);
}

TEST(OverloadControllerTest, BrownoutHysteresis) {
  ServiceMetrics metrics;
  OverloadOptions options = FastOptions();
  options.brownout_enter_factor = 4.0;  // enter above 20 ms EWMA
  options.brownout_exit_factor = 1.0;   // exit below 5 ms EWMA
  OverloadController ctl(options, &metrics);
  auto now = Feed(ctl, 30.0, 3, T0());
  EXPECT_TRUE(ctl.Brownout());
  EXPECT_EQ(metrics.brownout_active.load(), 1u);
  EXPECT_EQ(metrics.brownout_entries.load(), 1u);
  // Between exit and enter thresholds: stays in brownout (hysteresis).
  now = Feed(ctl, 10.0, 3, now);
  EXPECT_TRUE(ctl.Brownout());
  now = Feed(ctl, 2.0, 3, now);
  EXPECT_FALSE(ctl.Brownout());
  EXPECT_EQ(metrics.brownout_active.load(), 0u);
  // Re-entry bumps the entry counter again.
  Feed(ctl, 30.0, 3, now);
  EXPECT_TRUE(ctl.Brownout());
  EXPECT_EQ(metrics.brownout_entries.load(), 2u);
}

TEST(OverloadControllerTest, BrownoutDisabledStaysOff) {
  OverloadOptions options = FastOptions();
  options.brownout_enabled = false;
  OverloadController ctl(options);
  Feed(ctl, 500.0, 10, T0());
  EXPECT_FALSE(ctl.Brownout());
}

TEST(OverloadControllerTest, ZeroTargetDisablesController) {
  OverloadOptions options = FastOptions();
  options.queue_delay_target_ms = 0.0;
  OverloadController ctl(options);
  const auto end = Feed(ctl, 1000.0, 20, T0());
  EXPECT_FALSE(ctl.Overloaded());
  EXPECT_TRUE(ctl.Admit(RequestClass::kCold, 1000, end).admit);
}

TEST(OverloadControllerTest, EwmaSmoothsSamples) {
  OverloadOptions options = FastOptions();
  options.ewma_alpha = 0.5;
  OverloadController ctl(options);
  ctl.ObserveQueueDelay(0.010, T0());
  ctl.ObserveQueueDelay(0.020, T0() + milliseconds(10));
  // First sample seeds; then 10 + 0.5·(20−10) = 15 ms.
  EXPECT_DOUBLE_EQ(ctl.QueueDelayEwmaSeconds(), 0.015);
}

TEST(OverloadOptionsTest, ValidateRejectsBadConfigs) {
  {
    OverloadOptions bad = FastOptions();
    bad.queue_delay_target_ms = -1.0;
    EXPECT_THROW(bad.Validate(), util::HarnessError);
  }
  {
    OverloadOptions bad = FastOptions();
    bad.interval_ms = 0.0;
    EXPECT_THROW(bad.Validate(), util::HarnessError);
  }
  {
    OverloadOptions bad = FastOptions();
    bad.ewma_alpha = 0.0;
    EXPECT_THROW(bad.Validate(), util::HarnessError);
  }
  {
    OverloadOptions bad = FastOptions();
    bad.brownout_exit_factor = 5.0;  // > enter factor: inverted hysteresis
    EXPECT_THROW(bad.Validate(), util::HarnessError);
  }
  {
    OverloadOptions bad = FastOptions();
    bad.retry_after_max_ms = bad.retry_after_min_ms - 1.0;
    EXPECT_THROW(bad.Validate(), util::HarnessError);
  }
}

TEST(ShedPolicyTest, NamesRoundTrip) {
  EXPECT_EQ(ParseShedPolicy("none"), ShedPolicy::kNone);
  EXPECT_EQ(ParseShedPolicy("cold"), ShedPolicy::kCold);
  EXPECT_EQ(ParseShedPolicy("all"), ShedPolicy::kAll);
  EXPECT_STREQ(ShedPolicyName(ShedPolicy::kCold), "cold");
  EXPECT_THROW(ParseShedPolicy("warm"), util::HarnessError);
}

}  // namespace
}  // namespace fadesched::service
