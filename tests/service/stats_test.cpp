// The STATS verb: wire round-trip of the counter snapshot, and the
// snapshot-consistency contract over a real loopback server — counters
// are monotone across successive snapshots, and at quiescence the
// admission identities hold:
//
//   submitted == admitted + shed + shed_overload + rejected_draining
//   admitted  == completed + failed + timed_out
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service {
namespace {

std::string UniqueSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_stats_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock"))
      .string();
}

SchedulingRequest MakeRequest(std::uint64_t case_index,
                              const std::string& id) {
  fadesched::testing::ScenarioFuzzer fuzzer(11);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(case_index);
  request.scheduler = "rle";
  request.id = id;
  return request;
}

StatsSnapshot DistinctSnapshot() {
  StatsSnapshot s;
  s.submitted = 101;
  s.admitted = 90;
  s.completed = 80;
  s.failed = 6;
  s.timed_out = 4;
  s.shed = 7;
  s.shed_overload = 3;
  s.shed_cold = 9;
  s.rejected_draining = 1;
  s.brownout_entries = 2;
  s.brownout_builds = 5;
  s.worker_restarts = 12;
  s.response_hits = 30;
  s.response_misses = 10;
  s.scenario_hits = 21;
  s.scenario_misses = 8;
  s.queue_depth = 13;
  s.queue_delay_ewma_us = 12345;
  s.brownout_active = 1;
  return s;
}

TEST(StatsProtocolTest, FormatParseRoundTripsEveryField) {
  const StatsSnapshot in = DistinctSnapshot();
  const StatsSnapshot out = ParseStatsLine(FormatStatsLine(in));
  EXPECT_EQ(out.submitted, in.submitted);
  EXPECT_EQ(out.admitted, in.admitted);
  EXPECT_EQ(out.completed, in.completed);
  EXPECT_EQ(out.failed, in.failed);
  EXPECT_EQ(out.timed_out, in.timed_out);
  EXPECT_EQ(out.shed, in.shed);
  EXPECT_EQ(out.shed_overload, in.shed_overload);
  EXPECT_EQ(out.shed_cold, in.shed_cold);
  EXPECT_EQ(out.rejected_draining, in.rejected_draining);
  EXPECT_EQ(out.brownout_entries, in.brownout_entries);
  EXPECT_EQ(out.brownout_builds, in.brownout_builds);
  EXPECT_EQ(out.worker_restarts, in.worker_restarts);
  EXPECT_EQ(out.response_hits, in.response_hits);
  EXPECT_EQ(out.response_misses, in.response_misses);
  EXPECT_EQ(out.scenario_hits, in.scenario_hits);
  EXPECT_EQ(out.scenario_misses, in.scenario_misses);
  EXPECT_EQ(out.queue_depth, in.queue_depth);
  EXPECT_EQ(out.queue_delay_ewma_us, in.queue_delay_ewma_us);
  EXPECT_EQ(out.brownout_active, in.brownout_active);
  EXPECT_EQ(out.Sheds(), in.shed + in.shed_overload);
}

TEST(StatsProtocolTest, WarmHitRateDerivesFromResponseCacheCounters) {
  StatsSnapshot s;
  EXPECT_EQ(s.WarmHitRate(), 0.0);  // no lookups yet — not NaN
  s.response_hits = 3;
  s.response_misses = 1;
  EXPECT_DOUBLE_EQ(s.WarmHitRate(), 0.75);
}

TEST(StatsProtocolTest, AccumulateSumsEveryFieldIncludingGauges) {
  StatsSnapshot total;
  const StatsSnapshot one = DistinctSnapshot();
  AccumulateStats(total, one);
  AccumulateStats(total, one);
  // Accumulating the same snapshot twice doubles every field; checking
  // through the wire round-trip covers the full field table at once.
  const StatsSnapshot out = ParseStatsLine(FormatStatsLine(total));
  EXPECT_EQ(out.submitted, 2 * one.submitted);
  EXPECT_EQ(out.worker_restarts, 2 * one.worker_restarts);
  EXPECT_EQ(out.response_hits, 2 * one.response_hits);
  EXPECT_EQ(out.scenario_misses, 2 * one.scenario_misses);
  EXPECT_EQ(out.queue_depth, 2 * one.queue_depth);  // gauges sum too
  EXPECT_EQ(out.brownout_active, 2 * one.brownout_active);
}

TEST(StatsProtocolTest, ToJsonCarriesEveryWireFieldAndWarmHitRate) {
  StatsSnapshot s = DistinctSnapshot();
  const std::string json = s.ToJson();
  EXPECT_NE(json.find("\"submitted\": 101"), std::string::npos) << json;
  EXPECT_NE(json.find("\"response_hits\": 30"), std::string::npos) << json;
  EXPECT_NE(json.find("\"warm_hit_rate\": 0.750000"), std::string::npos)
      << json;
}

TEST(StatsProtocolTest, TamperedPayloadIsTransient) {
  std::string line = FormatStatsLine(DistinctSnapshot());
  const std::size_t pos = line.find("submitted=101");
  ASSERT_NE(pos, std::string::npos);
  line[pos + std::string("submitted=").size()] = '9';
  try {
    ParseStatsLine(line);
    FAIL() << "tampered line parsed";
  } catch (const util::HarnessError& error) {
    EXPECT_EQ(error.kind(), util::ErrorKind::kTransient) << error.what();
  }
}

TEST(StatsProtocolTest, WrongVerbIsFatal) {
  SchedulingResponse response;
  response.status = ResponseStatus::kOk;
  response.id = "x";
  try {
    ParseStatsLine(FormatResponseLine(response));
    FAIL() << "response line accepted as STATS";
  } catch (const util::HarnessError& error) {
    EXPECT_EQ(error.kind(), util::ErrorKind::kFatal) << error.what();
  }
}

TEST(StatsProtocolTest, CaptureReadsServiceMetrics) {
  ServiceMetrics metrics;
  metrics.submitted.store(42);
  metrics.shed_overload.store(7);
  metrics.worker_restarts.store(3);
  const StatsSnapshot s = CaptureStats(metrics);
  EXPECT_EQ(s.submitted, 42u);
  EXPECT_EQ(s.shed_overload, 7u);
  EXPECT_EQ(s.worker_restarts, 3u);
  EXPECT_EQ(s.completed, 0u);
}

class StatsLoopbackTest : public ::testing::Test {
 protected:
  void StartServer(const char* tag) {
    options_.unix_socket_path = UniqueSocketPath(tag);
    options_.service.batcher.num_workers = 2;
    server_ = std::make_unique<Server>(options_);
    server_->Start();
    serving_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      serving_.join();
    }
  }

  ServerOptions options_;
  std::unique_ptr<Server> server_;
  std::thread serving_;
};

/// Monotone counters of the snapshot — everything except the trailing
/// gauges (queue_depth, queue_delay_ewma_us, brownout_active).
std::vector<std::uint64_t> MonotoneCounters(const StatsSnapshot& s) {
  return {s.submitted,       s.admitted,         s.completed,
          s.failed,          s.timed_out,        s.shed,
          s.shed_overload,   s.shed_cold,        s.rejected_draining,
          s.brownout_entries, s.brownout_builds, s.worker_restarts};
}

void ExpectAdmissionIdentity(const StatsSnapshot& s) {
  EXPECT_EQ(s.submitted, s.admitted + s.Sheds() + s.rejected_draining);
  EXPECT_EQ(s.admitted, s.completed + s.failed + s.timed_out);
}

TEST_F(StatsLoopbackTest, SnapshotsAreMonotoneAndConsistent) {
  StartServer("mono");
  Client client;
  client.ConnectUnix(options_.unix_socket_path);

  // STATS on a fresh worker: all zeros, identities trivially hold.
  StatsSnapshot prev = client.Stats();
  ExpectAdmissionIdentity(prev);
  EXPECT_EQ(prev.submitted, 0u);

  for (int round = 0; round < 4; ++round) {
    for (int r = 0; r < 5; ++r) {
      const SchedulingResponse response = client.Call(
          MakeRequest(static_cast<std::uint64_t>(r),
                      "m" + std::to_string(round) + "_" + std::to_string(r)));
      EXPECT_TRUE(response.Ok()) << response.message;
    }
    // One in-flight request per connection and the response already
    // arrived, so the worker is quiescent: the identities must be exact,
    // not merely eventually consistent.
    const StatsSnapshot snap = client.Stats();
    ExpectAdmissionIdentity(snap);
    const auto before = MonotoneCounters(prev);
    const auto after = MonotoneCounters(snap);
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_GE(after[i], before[i]) << "counter " << i << " went backwards";
    }
    prev = snap;
  }
  EXPECT_EQ(prev.submitted, 20u);
  EXPECT_EQ(prev.completed, 20u);
}

TEST_F(StatsLoopbackTest, StatsInsideAFrameIsPayloadNotAVerb) {
  StartServer("frame");
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  // A request frame whose first line happens to be "STATS" must not be
  // answered with a stats line: inside a frame the bytes are payload.
  client.SendRaw("not-a-header x=1\nSTATS\nEND\n");
  const SchedulingResponse err = ParseResponseLine(client.ReadLine());
  EXPECT_EQ(err.status, ResponseStatus::kError);
  // The connection survives and STATS between frames still works.
  const StatsSnapshot snap = client.Stats();
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_GE(snap.failed, 0u);
}

TEST_F(StatsLoopbackTest, InterleavesWithRequestsOnOneConnection) {
  StartServer("mix");
  Client client;
  client.ConnectUnix(options_.unix_socket_path);
  EXPECT_TRUE(client.Call(MakeRequest(0, "a")).Ok());
  const StatsSnapshot mid = client.Stats();
  EXPECT_EQ(mid.completed, 1u);
  EXPECT_TRUE(client.Call(MakeRequest(0, "b")).Ok());
  const StatsSnapshot end = client.Stats();
  EXPECT_EQ(end.submitted, 2u);
  ExpectAdmissionIdentity(end);
}

}  // namespace
}  // namespace fadesched::service
