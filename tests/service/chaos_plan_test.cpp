// ChaosPlan + fault-stream + FaultTrace determinism contracts.
#include "service/chaos/chaos_plan.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/error.hpp"

namespace fadesched::service::chaos {
namespace {

TEST(ChaosPlanTest, DefaultPlanIsInert) {
  const ChaosPlan plan;
  EXPECT_FALSE(plan.Enabled());
  EXPECT_EQ(plan.Describe(), "inert");
}

TEST(ChaosPlanTest, AllFamiliesSetsEveryProbability) {
  const ChaosPlan plan = ChaosPlan::AllFamilies(0.25, 9);
  EXPECT_TRUE(plan.Enabled());
  EXPECT_EQ(plan.seed, 9u);
  for (std::size_t f = 0; f < kNumFaultFamilies; ++f) {
    EXPECT_DOUBLE_EQ(plan.Probability(static_cast<FaultFamily>(f)), 0.25);
  }
}

TEST(ChaosPlanTest, SetProbabilityRoundTripsEveryFamily) {
  ChaosPlan plan;
  for (std::size_t f = 0; f < kNumFaultFamilies; ++f) {
    const auto family = static_cast<FaultFamily>(f);
    plan.SetProbability(family, 0.125 * static_cast<double>(f + 1));
    EXPECT_DOUBLE_EQ(plan.Probability(family),
                     0.125 * static_cast<double>(f + 1));
  }
}

TEST(ChaosPlanTest, FamilyNamesAreDistinctAndStable) {
  std::set<std::string> names;
  for (std::size_t f = 0; f < kNumFaultFamilies; ++f) {
    names.insert(FaultFamilyName(static_cast<FaultFamily>(f)));
  }
  EXPECT_EQ(names.size(), kNumFaultFamilies);
  EXPECT_EQ(std::string(FaultFamilyName(FaultFamily::kConnectReset)),
            "connect-reset");
  EXPECT_EQ(std::string(FaultFamilyName(FaultFamily::kRecvDuplicate)),
            "recv-duplicate");
}

TEST(ChaosPlanTest, DescribeListsOnlyEnabledFamilies) {
  ChaosPlan plan;
  plan.recv_kill = 0.05;
  plan.send_corrupt = 0.01;
  const std::string description = plan.Describe();
  EXPECT_NE(description.find("recv-kill=0.05"), std::string::npos);
  EXPECT_NE(description.find("send-corrupt=0.01"), std::string::npos);
  EXPECT_EQ(description.find("connect-reset"), std::string::npos);
}

TEST(ChaosPlanTest, ValidateRejectsOutOfRangeProbabilities) {
  ChaosPlan plan;
  plan.recv_stall = 1.5;
  EXPECT_THROW(plan.Validate(), util::HarnessError);
  plan.recv_stall = -0.1;
  EXPECT_THROW(plan.Validate(), util::HarnessError);
  plan.recv_stall = 1.0;
  EXPECT_NO_THROW(plan.Validate());
  plan.stall_seconds = -1.0;
  EXPECT_THROW(plan.Validate(), util::HarnessError);
}

TEST(FaultStreamTest, SameCoordinatesSameStream) {
  ChaosPlan plan;
  plan.seed = 42;
  rng::Xoshiro256 a = MakeFaultStream(plan, 3, 7);
  rng::Xoshiro256 b = MakeFaultStream(plan, 3, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(FaultStreamTest, DifferentCoordinatesDiverge) {
  ChaosPlan plan;
  plan.seed = 42;
  rng::Xoshiro256 base = MakeFaultStream(plan, 3, 7);
  rng::Xoshiro256 other_worker = MakeFaultStream(plan, 4, 7);
  rng::Xoshiro256 other_connection = MakeFaultStream(plan, 3, 8);
  ChaosPlan reseeded = plan;
  reseeded.seed = 43;
  rng::Xoshiro256 other_seed = MakeFaultStream(reseeded, 3, 7);
  const std::uint64_t first = base.Next();
  EXPECT_NE(first, other_worker.Next());
  EXPECT_NE(first, other_connection.Next());
  EXPECT_NE(first, other_seed.Next());
}

TEST(FaultTraceTest, FormatSortsByCoordinatesNotArrivalOrder) {
  FaultTrace trace;
  trace.Record({1, 0, 2, FaultFamily::kRecvKill, 0});
  trace.Record({0, 1, 1, FaultFamily::kSendCorrupt, 5});
  trace.Record({0, 0, 3, FaultFamily::kRecvStall, 20});
  EXPECT_EQ(trace.Format(),
            "w0 c0 op3 recv-stall detail=20\n"
            "w0 c1 op1 send-corrupt detail=5\n"
            "w1 c0 op2 recv-kill detail=0\n");
}

TEST(FaultTraceTest, CountsByFamily) {
  FaultTrace trace;
  trace.Record({0, 0, 1, FaultFamily::kRecvKill, 0});
  trace.Record({0, 0, 2, FaultFamily::kRecvKill, 0});
  trace.Record({0, 0, 3, FaultFamily::kConnectReset, 0});
  EXPECT_EQ(trace.Count(), 3u);
  EXPECT_EQ(trace.CountFamily(FaultFamily::kRecvKill), 2u);
  EXPECT_EQ(trace.CountFamily(FaultFamily::kSendCorrupt), 0u);
  const auto counts = trace.CountsByFamily();
  EXPECT_EQ(counts[static_cast<std::size_t>(FaultFamily::kConnectReset)], 1u);
}

}  // namespace
}  // namespace fadesched::service::chaos
