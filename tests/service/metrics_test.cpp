#include "service/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace fadesched::service {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(histogram.Percentile(0.5), 0.0);
}

TEST(LatencyHistogramTest, PercentilesAreWithinOneBinOfTruth) {
  LatencyHistogram histogram;
  // 100 samples spread over three decades.
  for (int i = 0; i < 50; ++i) histogram.Record(100e-6);
  for (int i = 0; i < 40; ++i) histogram.Record(1e-3);
  for (int i = 0; i < 10; ++i) histogram.Record(50e-3);
  EXPECT_EQ(histogram.Count(), 100u);
  // Log-spaced bins at 3/octave have ~26% resolution; allow 30%.
  EXPECT_NEAR(histogram.Percentile(0.50), 100e-6, 0.30 * 100e-6);
  EXPECT_NEAR(histogram.Percentile(0.90), 1e-3, 0.30 * 1e-3);
  EXPECT_NEAR(histogram.Percentile(0.99), 50e-3, 0.30 * 50e-3);
}

TEST(LatencyHistogramTest, DeterministicForAFixedSampleSet) {
  LatencyHistogram a, b;
  const std::vector<double> samples = {1e-6, 3e-5, 2e-4, 9e-4, 0.1, 2.0};
  for (const double s : samples) a.Record(s);
  // Insertion order must not matter.
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) b.Record(*it);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(LatencyHistogramTest, PathologicalInputsLandInTheEdgeBins) {
  LatencyHistogram histogram;
  histogram.Record(0.0);
  histogram.Record(-1.0);
  histogram.Record(std::nan(""));
  histogram.Record(1e9);  // far beyond the covered range
  EXPECT_EQ(histogram.Count(), 4u);  // nothing lost, nothing crashed
}

TEST(LatencyHistogramTest, ConcurrentRecordsAreAllCounted) {
  LatencyHistogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) histogram.Record(1e-4);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(), 8000u);
}

TEST(ServiceMetricsTest, JsonCarriesEveryCounter) {
  ServiceMetrics metrics;
  metrics.admitted.store(3);
  metrics.shed.store(2);
  metrics.response_hits.store(1);
  metrics.queue_latency.Record(1e-3);
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"admitted\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"shed\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"response_hits\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"queue_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
}

TEST(ServiceMetricsTest, DumpJsonWritesTheFile) {
  ServiceMetrics metrics;
  metrics.completed.store(7);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fs_metrics_test.json")
          .string();
  metrics.DumpJson(path);
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"completed\": 7"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fadesched::service
