// Scripted in-memory Transport for chaos-layer unit tests: records every
// Send, serves ReadLine from a pre-loaded queue, and can be told to
// refuse the next N connects. No sockets, no threads — the fault logic
// under test (FaultyTransport, RetryingClient) is exercised against a
// fully deterministic peer.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "service/chaos/transport.hpp"
#include "util/error.hpp"

namespace fadesched::service::chaos {

class FakeTransport final : public Transport {
 public:
  void Connect() override {
    ++connects;
    if (fail_connects > 0) {
      --fail_connects;
      throw util::TransientError("fake: connection refused");
    }
    connected = true;
  }

  void Close() override {
    if (connected) ++closes;
    connected = false;
  }

  [[nodiscard]] bool Connected() const override { return connected; }

  void Send(const std::string& bytes) override {
    if (!connected) throw util::TransientError("fake: send while closed");
    sent.push_back(bytes);
  }

  std::string ReadLine() override {
    if (!connected) throw util::TransientError("fake: read while closed");
    if (lines.empty()) {
      throw util::TransientError("fake: connection closed before a line");
    }
    std::string line = lines.front();
    lines.pop_front();
    return line;
  }

  std::vector<std::string> sent;
  std::deque<std::string> lines;
  int fail_connects = 0;
  int connects = 0;
  int closes = 0;
  bool connected = false;
};

}  // namespace fadesched::service::chaos
