#include "service/request.hpp"

#include <gtest/gtest.h>

#include "testing/fuzzer.hpp"
#include "util/check.hpp"

namespace fadesched::service {
namespace {

SchedulingRequest MakeRequest(std::uint64_t seed = 1) {
  fadesched::testing::ScenarioFuzzer fuzzer(seed);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(0);
  request.scheduler = "rle";
  request.id = "r0";
  return request;
}

TEST(Fnv1a64Test, MatchesReferenceVectors) {
  // Canonical FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64Test, SeedChainsAcrossCalls) {
  const std::uint64_t whole = Fnv1a64("foobar");
  const std::uint64_t chained = Fnv1a64("bar", Fnv1a64("foo"));
  EXPECT_EQ(whole, chained);
}

TEST(FingerprintTest, DeterministicAcrossCalls) {
  const SchedulingRequest request = MakeRequest();
  const Fingerprint a = FingerprintRequest(request);
  const Fingerprint b = FingerprintRequest(request);
  EXPECT_EQ(a.scenario_hash, b.scenario_hash);
  EXPECT_EQ(a.request_hash, b.request_hash);
  EXPECT_EQ(a.canonical_scenario, b.canonical_scenario);
}

TEST(FingerprintTest, DescriptionAndIdAreNotContent) {
  SchedulingRequest request = MakeRequest();
  const Fingerprint base = FingerprintRequest(request);
  request.scenario.description = "some other provenance";
  request.id = "completely-different";
  const Fingerprint same = FingerprintRequest(request);
  EXPECT_EQ(base.request_hash, same.request_hash);
  EXPECT_EQ(base.canonical_scenario, same.canonical_scenario);
}

TEST(FingerprintTest, SchedulerNameSeparatesResponses) {
  SchedulingRequest request = MakeRequest();
  const Fingerprint rle = FingerprintRequest(request);
  request.scheduler = "ldp";
  const Fingerprint ldp = FingerprintRequest(request);
  // Same scenario, different scheduler: scenario-level key shared,
  // response-level key distinct.
  EXPECT_EQ(rle.scenario_hash, ldp.scenario_hash);
  EXPECT_NE(rle.request_hash, ldp.request_hash);
}

TEST(FingerprintTest, ScenarioContentChangesHash) {
  const Fingerprint a = FingerprintRequest(MakeRequest(1));
  const Fingerprint b = FingerprintRequest(MakeRequest(2));
  EXPECT_NE(a.scenario_hash, b.scenario_hash);
  EXPECT_NE(a.canonical_scenario, b.canonical_scenario);
}

TEST(FingerprintTest, ChannelParamsAreContent) {
  SchedulingRequest request = MakeRequest();
  const Fingerprint base = FingerprintRequest(request);
  request.scenario.params.epsilon *= 0.5;
  const Fingerprint changed = FingerprintRequest(request);
  EXPECT_NE(base.scenario_hash, changed.scenario_hash);
}

TEST(FingerprintTest, EmptySchedulerNameIsRejected) {
  SchedulingRequest request = MakeRequest();
  request.scheduler.clear();
  EXPECT_THROW(FingerprintRequest(request), util::CheckFailure);
}

TEST(ResponseTest, ExitCodesFollowTheTaxonomy) {
  SchedulingResponse ok;
  EXPECT_EQ(ok.ExitCode(), util::kExitOk);

  SchedulingResponse shed;
  shed.status = ResponseStatus::kShed;
  shed.error_kind = util::ErrorKind::kTransient;
  EXPECT_EQ(shed.ExitCode(), util::kExitRuntime);

  SchedulingResponse timeout;
  timeout.status = ResponseStatus::kTimeout;
  timeout.error_kind = util::ErrorKind::kTimeout;
  EXPECT_EQ(timeout.ExitCode(), util::kExitInterrupted);
}

TEST(ResponseTest, StatusNamesAreStable) {
  EXPECT_STREQ(ResponseStatusName(ResponseStatus::kOk), "ok");
  EXPECT_STREQ(ResponseStatusName(ResponseStatus::kShed), "shed");
  EXPECT_STREQ(ResponseStatusName(ResponseStatus::kTimeout), "timeout");
  EXPECT_STREQ(ResponseStatusName(ResponseStatus::kError), "error");
}

}  // namespace
}  // namespace fadesched::service
