// RetryingClient contract tests over a scripted FakeTransport: absorb
// transient faults within bounded attempts, discard stale lines, detect
// corruption, and never mask genuine fatal responses.
#include "service/chaos/retry_client.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "fake_transport.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/request.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service::chaos {
namespace {

SchedulingRequest MakeRequest(const std::string& id) {
  fadesched::testing::ScenarioFuzzer fuzzer(5);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(0);
  request.scheduler = "rle";
  request.id = id;
  return request;
}

std::string OkLine(const std::string& id) {
  SchedulingResponse response;
  response.status = ResponseStatus::kOk;
  response.id = id;
  response.claimed_rate = 2.5;
  response.schedule = {0, 3};
  return FormatResponseLine(response);
}

std::string ErrLine(const std::string& id, ResponseStatus status,
                    util::ErrorKind kind, const std::string& message) {
  SchedulingResponse response;
  response.status = status;
  response.error_kind = kind;
  response.message = message;
  response.id = id;
  return FormatResponseLine(response);
}

/// Fast retry options so failure-path tests don't sleep noticeably.
RetryOptions FastRetry(std::size_t max_attempts = 5) {
  RetryOptions options;
  options.max_attempts = max_attempts;
  options.initial_backoff_seconds = 0.0;
  options.max_backoff_seconds = 0.0;
  return options;
}

std::pair<RetryingClient, FakeTransport*> MakeClient(
    RetryOptions options = FastRetry(), ServiceMetrics* metrics = nullptr) {
  auto fake = std::make_unique<FakeTransport>();
  FakeTransport* raw = fake.get();
  return {RetryingClient(std::move(fake), options, metrics), raw};
}

TEST(RetryingClientTest, FirstAttemptSuccessIsOneAttemptNoReconnect) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(response.id, "a");
  EXPECT_EQ(client.LastCallStats().attempts, 1u);
  EXPECT_EQ(client.LastCallStats().reconnects, 0u);
  ASSERT_EQ(fake->sent.size(), 1u);
}

TEST(RetryingClientTest, ConnectRefusalsAreRetriedThenAbsorbed) {
  ServiceMetrics metrics;
  auto [client, fake] = MakeClient(FastRetry(), &metrics);
  fake->fail_connects = 2;
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().attempts, 3u);
  EXPECT_EQ(metrics.chaos_recovered.load(), 1u);
}

TEST(RetryingClientTest, RetriesAreBoundedAndTheExhaustionErrorIsTyped) {
  auto [client, fake] = MakeClient(FastRetry(3));
  fake->fail_connects = 100;  // never connects
  try {
    client.Call(MakeRequest("a"));
    FAIL() << "expected exhaustion";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTransient);
    EXPECT_NE(std::string(e.what()).find("retries exhausted after 3"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("connection refused"),
              std::string::npos);
  }
  EXPECT_EQ(fake->connects, 3);
  EXPECT_EQ(client.LastCallStats().attempts, 3u);
}

TEST(RetryingClientTest, EveryRetrySendsByteIdenticalWireContent) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(ErrLine("a", ResponseStatus::kShed,
                                util::ErrorKind::kTransient, "queue full"));
  // The shed answer arrives on attempt 1; attempt 2 must re-send the
  // exact same frame (that is what makes the retry idempotent).
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  ASSERT_EQ(fake->sent.size(), 2u);
  EXPECT_EQ(fake->sent[0], fake->sent[1]);
}

TEST(RetryingClientTest, StaleLinesFromEarlierAttemptsAreDiscarded) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(OkLine("stale-1"));
  fake->lines.push_back(OkLine("stale-2"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(response.id, "a");
  EXPECT_EQ(client.LastCallStats().stale_discarded, 2u);
  EXPECT_EQ(client.LastCallStats().attempts, 1u);
}

TEST(RetryingClientTest, AStaleStormIsBoundedByMaxStaleReads) {
  RetryOptions options = FastRetry(2);
  options.max_stale_reads = 3;
  auto [client, fake] = MakeClient(options);
  for (int i = 0; i < 64; ++i) fake->lines.push_back(OkLine("other"));
  try {
    client.Call(MakeRequest("a"));
    FAIL() << "expected exhaustion";
  } catch (const util::HarnessError& e) {
    EXPECT_NE(std::string(e.what()).find("stale"), std::string::npos);
  }
}

TEST(RetryingClientTest, ConnectionLevelErrorsWithDashIdApplyToTheCall) {
  auto [client, fake] = MakeClient();
  // e.g. a slow-loris eviction: ERR id=- kind=timeout. Must be treated
  // as this request's failure (retry), never as a stale line.
  fake->lines.push_back(ErrLine("-", ResponseStatus::kError,
                                util::ErrorKind::kTimeout,
                                "read deadline: frame stalled"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().attempts, 2u);
  EXPECT_EQ(client.LastCallStats().stale_discarded, 0u);
}

TEST(RetryingClientTest, CorruptedResponseLineIsDetectedAndRetried) {
  auto [client, fake] = MakeClient();
  std::string corrupted = OkLine("a");
  corrupted[corrupted.size() / 2] ^= 0x20;  // flip a bit mid-line
  fake->lines.push_back(corrupted);
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().attempts, 2u);
  EXPECT_GE(client.LastCallStats().corruption_detected, 1u);
}

TEST(RetryingClientTest, GarbageResponseLineIsCorruptionNotFatal) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back("%%%% total garbage %%%%");
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_GE(client.LastCallStats().corruption_detected, 1u);
}

TEST(RetryingClientTest, ServerSideChecksumRejectionIsRetriedAsCorruption) {
  auto [client, fake] = MakeClient();
  // The server's reply when OUR frame arrived damaged: kTransient.
  fake->lines.push_back(
      ErrLine("-", ResponseStatus::kError, util::ErrorKind::kTransient,
              "request frame checksum mismatch (wire corruption — retry)"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().attempts, 2u);
}

TEST(RetryingClientTest, FatalFrameErrorsOnOurOwnFramesAreCorruption) {
  auto [client, fake] = MakeClient();
  // A fatal parse error naming the frame can only mean damage — this
  // client formats every frame with FormatRequestFrame.
  fake->lines.push_back(
      ErrLine("-", ResponseStatus::kError, util::ErrorKind::kFatal,
              "request frame line 1: expected key=value, got 'schedXler'"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_GE(client.LastCallStats().corruption_detected, 1u);
}

TEST(RetryingClientTest, GenuineFatalResponsesAreReturnedNotRetried) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(ErrLine("a", ResponseStatus::kError,
                                util::ErrorKind::kFatal,
                                "unknown scheduler 'nonexistent'"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_FALSE(response.Ok());
  EXPECT_EQ(response.error_kind, util::ErrorKind::kFatal);
  EXPECT_EQ(client.LastCallStats().attempts, 1u);
  ASSERT_EQ(fake->sent.size(), 1u);  // no retry happened
}

TEST(RetryingClientTest, ReconnectOnRetryDropsTheOldConnection) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(ErrLine("a", ResponseStatus::kShed,
                                util::ErrorKind::kTransient, "queue full"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().reconnects, 1u);
  EXPECT_EQ(fake->connects, 2);
  EXPECT_GE(fake->closes, 1);
}

TEST(RetryingClientTest, BackoffScheduleIsDeterministicBoundedAndCapped) {
  RetryOptions options;
  options.max_attempts = 8;
  options.initial_backoff_seconds = 0.004;
  options.backoff_multiplier = 2.0;
  options.max_backoff_seconds = 0.016;
  options.jitter_fraction = 0.2;
  options.jitter_seed = 5;
  // Two clients with identical options draw identical jitter: exercised
  // indirectly — the exhaustion path must take the same wall-clock sleeps
  // without any assertion on timing (just that it terminates quickly).
  auto [client, fake] = MakeClient(options);
  fake->fail_connects = 100;
  EXPECT_THROW(client.Call(MakeRequest("a")), util::HarnessError);
  EXPECT_EQ(client.LastCallStats().attempts, 8u);
}

std::string ShedLine(const std::string& id, double retry_after_ms) {
  SchedulingResponse response;
  response.status = ResponseStatus::kShed;
  response.error_kind = util::ErrorKind::kTransient;
  response.message = "overloaded";
  response.retry_after_ms = retry_after_ms;
  response.id = id;
  return FormatResponseLine(response);
}

/// The exact jitter the client will draw: same seed, same formula.
double Jittered(double backoff, const RetryOptions& options,
                rng::Xoshiro256& jitter) {
  const double u = static_cast<double>(jitter.Next() >> 11) * 0x1.0p-53;
  return backoff * (1.0 + options.jitter_fraction * (2.0 * u - 1.0));
}

TEST(RetryingClientTest, RetryAfterHintRoundTripsTheWire) {
  const SchedulingResponse parsed = ParseResponseLine(ShedLine("w", 35.5));
  EXPECT_EQ(parsed.status, ResponseStatus::kShed);
  EXPECT_DOUBLE_EQ(parsed.retry_after_ms, 35.5);
  // No hint → the token is omitted entirely (byte-compat with pre-hint
  // readers), and parses back as 0.
  const std::string bare = ShedLine("w", 0.0);
  EXPECT_EQ(bare.find("retry_after_ms="), std::string::npos);
  EXPECT_DOUBLE_EQ(ParseResponseLine(bare).retry_after_ms, 0.0);
}

TEST(RetryingClientTest, ShedHintOverridesLadderOnceWithDeterministicJitter) {
  RetryOptions options;
  options.max_attempts = 5;
  options.initial_backoff_seconds = 0.002;
  options.backoff_multiplier = 2.0;
  options.max_backoff_seconds = 0.25;
  options.jitter_fraction = 0.2;
  options.jitter_seed = 11;
  auto [client, fake] = MakeClient(options);
  // Attempt 1: shed with a 20 ms hint. Attempt 2: shed with no hint.
  // Attempt 3: served.
  fake->lines.push_back(ShedLine("h", 20.0));
  fake->lines.push_back(ShedLine("h", 0.0));
  fake->lines.push_back(OkLine("h"));

  const SchedulingResponse response = client.Call(MakeRequest("h"));
  EXPECT_TRUE(response.Ok());
  const CallStats& stats = client.LastCallStats();
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retry_after_honored, 1u);
  ASSERT_EQ(stats.backoffs.size(), 2u);

  // Replay the client's jitter stream: backoff 1 is the 20 ms hint (not
  // the 2 ms ladder rung), backoff 2 falls back to the ladder
  // (initial × multiplier, attempt 2) because the hint is consumed once.
  rng::Xoshiro256 jitter(options.jitter_seed);
  EXPECT_DOUBLE_EQ(stats.backoffs[0], Jittered(0.020, options, jitter));
  EXPECT_DOUBLE_EQ(stats.backoffs[1], Jittered(0.004, options, jitter));
  // Jitter stays inside ±jitter_fraction of the hint.
  EXPECT_GE(stats.backoffs[0], 0.020 * 0.8);
  EXPECT_LE(stats.backoffs[0], 0.020 * 1.2);
}

TEST(RetryingClientTest, HintlessShedStaysOnTheLadder) {
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff_seconds = 0.001;
  options.jitter_seed = 3;
  auto [client, fake] = MakeClient(options);
  fake->lines.push_back(ShedLine("n", 0.0));
  fake->lines.push_back(OkLine("n"));
  EXPECT_TRUE(client.Call(MakeRequest("n")).Ok());
  const CallStats& stats = client.LastCallStats();
  EXPECT_EQ(stats.retry_after_honored, 0u);
  ASSERT_EQ(stats.backoffs.size(), 1u);
  rng::Xoshiro256 jitter(options.jitter_seed);
  EXPECT_DOUBLE_EQ(stats.backoffs[0], Jittered(0.001, options, jitter));
}

TEST(RetryingClientTest, StaleHintDoesNotLeakIntoTheNextCall) {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff_seconds = 0.001;
  options.jitter_seed = 7;
  auto [client, fake] = MakeClient(options);
  // Call 1 ends in exhaustion with a 50 ms hint pending from its last
  // shed response.
  fake->lines.push_back(ShedLine("a", 50.0));
  fake->lines.push_back(ShedLine("a", 50.0));
  fake->lines.push_back(ShedLine("a", 50.0));
  fake->lines.push_back(ShedLine("a", 50.0));
  EXPECT_THROW(client.Call(MakeRequest("a")), util::HarnessError);
  // Call 2's first backoff must be the ladder, not the 50 ms leftover —
  // the hint is per-call state.
  fake->lines.push_back(ShedLine("b", 0.0));
  fake->lines.push_back(OkLine("b"));
  EXPECT_TRUE(client.Call(MakeRequest("b")).Ok());
  ASSERT_EQ(client.LastCallStats().backoffs.size(), 1u);
  EXPECT_LT(client.LastCallStats().backoffs[0], 0.01);
}

TEST(RetryOptionsTest, ValidateRejectsNonsense) {
  RetryOptions options;
  options.max_attempts = 0;
  EXPECT_THROW(options.Validate(), util::HarnessError);
  options = RetryOptions{};
  options.backoff_multiplier = 0.5;
  EXPECT_THROW(options.Validate(), util::HarnessError);
  options = RetryOptions{};
  options.jitter_fraction = 1.0;
  EXPECT_THROW(options.Validate(), util::HarnessError);
  EXPECT_NO_THROW(RetryOptions{}.Validate());
}

}  // namespace
}  // namespace fadesched::service::chaos
