// RetryingClient contract tests over a scripted FakeTransport: absorb
// transient faults within bounded attempts, discard stale lines, detect
// corruption, and never mask genuine fatal responses.
#include "service/chaos/retry_client.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "fake_transport.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/request.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service::chaos {
namespace {

SchedulingRequest MakeRequest(const std::string& id) {
  fadesched::testing::ScenarioFuzzer fuzzer(5);
  SchedulingRequest request;
  request.scenario = fuzzer.Case(0);
  request.scheduler = "rle";
  request.id = id;
  return request;
}

std::string OkLine(const std::string& id) {
  SchedulingResponse response;
  response.status = ResponseStatus::kOk;
  response.id = id;
  response.claimed_rate = 2.5;
  response.schedule = {0, 3};
  return FormatResponseLine(response);
}

std::string ErrLine(const std::string& id, ResponseStatus status,
                    util::ErrorKind kind, const std::string& message) {
  SchedulingResponse response;
  response.status = status;
  response.error_kind = kind;
  response.message = message;
  response.id = id;
  return FormatResponseLine(response);
}

/// Fast retry options so failure-path tests don't sleep noticeably.
RetryOptions FastRetry(std::size_t max_attempts = 5) {
  RetryOptions options;
  options.max_attempts = max_attempts;
  options.initial_backoff_seconds = 0.0;
  options.max_backoff_seconds = 0.0;
  return options;
}

std::pair<RetryingClient, FakeTransport*> MakeClient(
    RetryOptions options = FastRetry(), ServiceMetrics* metrics = nullptr) {
  auto fake = std::make_unique<FakeTransport>();
  FakeTransport* raw = fake.get();
  return {RetryingClient(std::move(fake), options, metrics), raw};
}

TEST(RetryingClientTest, FirstAttemptSuccessIsOneAttemptNoReconnect) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(response.id, "a");
  EXPECT_EQ(client.LastCallStats().attempts, 1u);
  EXPECT_EQ(client.LastCallStats().reconnects, 0u);
  ASSERT_EQ(fake->sent.size(), 1u);
}

TEST(RetryingClientTest, ConnectRefusalsAreRetriedThenAbsorbed) {
  ServiceMetrics metrics;
  auto [client, fake] = MakeClient(FastRetry(), &metrics);
  fake->fail_connects = 2;
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().attempts, 3u);
  EXPECT_EQ(metrics.chaos_recovered.load(), 1u);
}

TEST(RetryingClientTest, RetriesAreBoundedAndTheExhaustionErrorIsTyped) {
  auto [client, fake] = MakeClient(FastRetry(3));
  fake->fail_connects = 100;  // never connects
  try {
    client.Call(MakeRequest("a"));
    FAIL() << "expected exhaustion";
  } catch (const util::HarnessError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTransient);
    EXPECT_NE(std::string(e.what()).find("retries exhausted after 3"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("connection refused"),
              std::string::npos);
  }
  EXPECT_EQ(fake->connects, 3);
  EXPECT_EQ(client.LastCallStats().attempts, 3u);
}

TEST(RetryingClientTest, EveryRetrySendsByteIdenticalWireContent) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(ErrLine("a", ResponseStatus::kShed,
                                util::ErrorKind::kTransient, "queue full"));
  // The shed answer arrives on attempt 1; attempt 2 must re-send the
  // exact same frame (that is what makes the retry idempotent).
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  ASSERT_EQ(fake->sent.size(), 2u);
  EXPECT_EQ(fake->sent[0], fake->sent[1]);
}

TEST(RetryingClientTest, StaleLinesFromEarlierAttemptsAreDiscarded) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(OkLine("stale-1"));
  fake->lines.push_back(OkLine("stale-2"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(response.id, "a");
  EXPECT_EQ(client.LastCallStats().stale_discarded, 2u);
  EXPECT_EQ(client.LastCallStats().attempts, 1u);
}

TEST(RetryingClientTest, AStaleStormIsBoundedByMaxStaleReads) {
  RetryOptions options = FastRetry(2);
  options.max_stale_reads = 3;
  auto [client, fake] = MakeClient(options);
  for (int i = 0; i < 64; ++i) fake->lines.push_back(OkLine("other"));
  try {
    client.Call(MakeRequest("a"));
    FAIL() << "expected exhaustion";
  } catch (const util::HarnessError& e) {
    EXPECT_NE(std::string(e.what()).find("stale"), std::string::npos);
  }
}

TEST(RetryingClientTest, ConnectionLevelErrorsWithDashIdApplyToTheCall) {
  auto [client, fake] = MakeClient();
  // e.g. a slow-loris eviction: ERR id=- kind=timeout. Must be treated
  // as this request's failure (retry), never as a stale line.
  fake->lines.push_back(ErrLine("-", ResponseStatus::kError,
                                util::ErrorKind::kTimeout,
                                "read deadline: frame stalled"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().attempts, 2u);
  EXPECT_EQ(client.LastCallStats().stale_discarded, 0u);
}

TEST(RetryingClientTest, CorruptedResponseLineIsDetectedAndRetried) {
  auto [client, fake] = MakeClient();
  std::string corrupted = OkLine("a");
  corrupted[corrupted.size() / 2] ^= 0x20;  // flip a bit mid-line
  fake->lines.push_back(corrupted);
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().attempts, 2u);
  EXPECT_GE(client.LastCallStats().corruption_detected, 1u);
}

TEST(RetryingClientTest, GarbageResponseLineIsCorruptionNotFatal) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back("%%%% total garbage %%%%");
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_GE(client.LastCallStats().corruption_detected, 1u);
}

TEST(RetryingClientTest, ServerSideChecksumRejectionIsRetriedAsCorruption) {
  auto [client, fake] = MakeClient();
  // The server's reply when OUR frame arrived damaged: kTransient.
  fake->lines.push_back(
      ErrLine("-", ResponseStatus::kError, util::ErrorKind::kTransient,
              "request frame checksum mismatch (wire corruption — retry)"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().attempts, 2u);
}

TEST(RetryingClientTest, FatalFrameErrorsOnOurOwnFramesAreCorruption) {
  auto [client, fake] = MakeClient();
  // A fatal parse error naming the frame can only mean damage — this
  // client formats every frame with FormatRequestFrame.
  fake->lines.push_back(
      ErrLine("-", ResponseStatus::kError, util::ErrorKind::kFatal,
              "request frame line 1: expected key=value, got 'schedXler'"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_GE(client.LastCallStats().corruption_detected, 1u);
}

TEST(RetryingClientTest, GenuineFatalResponsesAreReturnedNotRetried) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(ErrLine("a", ResponseStatus::kError,
                                util::ErrorKind::kFatal,
                                "unknown scheduler 'nonexistent'"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_FALSE(response.Ok());
  EXPECT_EQ(response.error_kind, util::ErrorKind::kFatal);
  EXPECT_EQ(client.LastCallStats().attempts, 1u);
  ASSERT_EQ(fake->sent.size(), 1u);  // no retry happened
}

TEST(RetryingClientTest, ReconnectOnRetryDropsTheOldConnection) {
  auto [client, fake] = MakeClient();
  fake->lines.push_back(ErrLine("a", ResponseStatus::kShed,
                                util::ErrorKind::kTransient, "queue full"));
  fake->lines.push_back(OkLine("a"));
  const SchedulingResponse response = client.Call(MakeRequest("a"));
  EXPECT_TRUE(response.Ok());
  EXPECT_EQ(client.LastCallStats().reconnects, 1u);
  EXPECT_EQ(fake->connects, 2);
  EXPECT_GE(fake->closes, 1);
}

TEST(RetryingClientTest, BackoffScheduleIsDeterministicBoundedAndCapped) {
  RetryOptions options;
  options.max_attempts = 8;
  options.initial_backoff_seconds = 0.004;
  options.backoff_multiplier = 2.0;
  options.max_backoff_seconds = 0.016;
  options.jitter_fraction = 0.2;
  options.jitter_seed = 5;
  // Two clients with identical options draw identical jitter: exercised
  // indirectly — the exhaustion path must take the same wall-clock sleeps
  // without any assertion on timing (just that it terminates quickly).
  auto [client, fake] = MakeClient(options);
  fake->fail_connects = 100;
  EXPECT_THROW(client.Call(MakeRequest("a")), util::HarnessError);
  EXPECT_EQ(client.LastCallStats().attempts, 8u);
}

TEST(RetryOptionsTest, ValidateRejectsNonsense) {
  RetryOptions options;
  options.max_attempts = 0;
  EXPECT_THROW(options.Validate(), util::HarnessError);
  options = RetryOptions{};
  options.backoff_multiplier = 0.5;
  EXPECT_THROW(options.Validate(), util::HarnessError);
  options = RetryOptions{};
  options.jitter_fraction = 1.0;
  EXPECT_THROW(options.Validate(), util::HarnessError);
  EXPECT_NO_THROW(RetryOptions{}.Validate());
}

}  // namespace
}  // namespace fadesched::service::chaos
