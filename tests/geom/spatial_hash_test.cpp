#include "geom/spatial_hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::geom {
namespace {

std::vector<std::size_t> BruteForceRadius(const std::vector<Vec2>& points,
                                          Vec2 center, double radius) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (Distance(points[i], center) <= radius) out.push_back(i);
  }
  return out;
}

TEST(SpatialHashTest, EmptyIndexReturnsNothing) {
  const std::vector<Vec2> points;
  const SpatialHash index(points, 1.0);
  EXPECT_TRUE(index.QueryRadius({0.0, 0.0}, 100.0).empty());
}

TEST(SpatialHashTest, SinglePointHitAndMiss) {
  const std::vector<Vec2> points{{1.0, 1.0}};
  const SpatialHash index(points, 1.0);
  EXPECT_EQ(index.QueryRadius({1.0, 1.0}, 0.0).size(), 1u);
  EXPECT_EQ(index.QueryRadius({5.0, 5.0}, 1.0).size(), 0u);
}

TEST(SpatialHashTest, RadiusBoundaryInclusive) {
  const std::vector<Vec2> points{{3.0, 0.0}};
  const SpatialHash index(points, 1.0);
  EXPECT_EQ(index.QueryRadius({0.0, 0.0}, 3.0).size(), 1u);
  EXPECT_EQ(index.QueryRadius({0.0, 0.0}, 2.999).size(), 0u);
}

TEST(SpatialHashTest, NegativeRadiusRejected) {
  const std::vector<Vec2> points{{0.0, 0.0}};
  const SpatialHash index(points, 1.0);
  EXPECT_THROW(index.QueryRadius({0.0, 0.0}, -1.0), util::CheckFailure);
}

class SpatialHashPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SpatialHashPropertyTest, MatchesBruteForceOnRandomSets) {
  const double bucket_size = GetParam();
  rng::Xoshiro256 gen(static_cast<std::uint64_t>(bucket_size * 1000) + 17);
  std::vector<Vec2> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back(Vec2{rng::UniformRange(gen, -50.0, 50.0),
                          rng::UniformRange(gen, -50.0, 50.0)});
  }
  const SpatialHash index(points, bucket_size);
  for (int q = 0; q < 50; ++q) {
    const Vec2 center{rng::UniformRange(gen, -60.0, 60.0),
                      rng::UniformRange(gen, -60.0, 60.0)};
    const double radius = rng::UniformRange(gen, 0.0, 30.0);
    auto got = index.QueryRadius(center, radius);
    auto want = BruteForceRadius(points, center, radius);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "bucket=" << bucket_size << " radius=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(BucketSizes, SpatialHashPropertyTest,
                         ::testing::Values(0.5, 2.0, 10.0, 100.0));

TEST(SpatialHashTest, ForEachVisitsSameSetAsQuery) {
  rng::Xoshiro256 gen(9);
  std::vector<Vec2> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(Vec2{rng::UniformRange(gen, 0.0, 20.0),
                          rng::UniformRange(gen, 0.0, 20.0)});
  }
  const SpatialHash index(points, 3.0);
  std::vector<std::size_t> visited;
  index.ForEachInRadius({10.0, 10.0}, 5.0,
                        [&](std::size_t i) { visited.push_back(i); });
  auto queried = index.QueryRadius({10.0, 10.0}, 5.0);
  std::sort(visited.begin(), visited.end());
  std::sort(queried.begin(), queried.end());
  EXPECT_EQ(visited, queried);
}

TEST(SpatialHashTest, DuplicatePointsAllReported) {
  const std::vector<Vec2> points{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const SpatialHash index(points, 1.0);
  EXPECT_EQ(index.QueryRadius({1.0, 1.0}, 0.1).size(), 3u);
}

TEST(SpatialHashTest, NumPointsReported) {
  const std::vector<Vec2> points{{0.0, 0.0}, {1.0, 1.0}};
  const SpatialHash index(points, 1.0);
  EXPECT_EQ(index.NumPoints(), 2u);
}

}  // namespace
}  // namespace fadesched::geom
