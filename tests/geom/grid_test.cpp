#include "geom/grid.hpp"

#include <gtest/gtest.h>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::geom {
namespace {

TEST(SquareGridTest, CellOfBasics) {
  const SquareGrid grid({0.0, 0.0}, 10.0);
  EXPECT_EQ(grid.CellOf({5.0, 5.0}), (CellIndex{0, 0}));
  EXPECT_EQ(grid.CellOf({15.0, 25.0}), (CellIndex{1, 2}));
  EXPECT_EQ(grid.CellOf({-5.0, -15.0}), (CellIndex{-1, -2}));
}

TEST(SquareGridTest, BoundaryGoesToHigherCell) {
  const SquareGrid grid({0.0, 0.0}, 10.0);
  EXPECT_EQ(grid.CellOf({10.0, 0.0}), (CellIndex{1, 0}));
}

TEST(SquareGridTest, OriginOffsetRespected) {
  const SquareGrid grid({5.0, 5.0}, 10.0);
  EXPECT_EQ(grid.CellOf({4.0, 4.0}), (CellIndex{-1, -1}));
  EXPECT_EQ(grid.CellOf({6.0, 6.0}), (CellIndex{0, 0}));
}

TEST(SquareGridTest, CellLowInvertsCellOf) {
  const SquareGrid grid({2.0, 3.0}, 4.0);
  const CellIndex cell{3, -2};
  const Vec2 low = grid.CellLow(cell);
  EXPECT_EQ(grid.CellOf(low), cell);
  EXPECT_EQ(grid.CellOf(low + Vec2{3.999, 3.999}), cell);
}

TEST(SquareGridTest, InvalidCellSizeRejected) {
  EXPECT_THROW(SquareGrid({0.0, 0.0}, 0.0), util::CheckFailure);
  EXPECT_THROW(SquareGrid({0.0, 0.0}, -2.0), util::CheckFailure);
}

TEST(SquareGridTest, FourColorsCoverZeroToThree) {
  EXPECT_EQ(SquareGrid::ColorOf({0, 0}), 0);
  EXPECT_EQ(SquareGrid::ColorOf({1, 0}), 1);
  EXPECT_EQ(SquareGrid::ColorOf({0, 1}), 2);
  EXPECT_EQ(SquareGrid::ColorOf({1, 1}), 3);
}

TEST(SquareGridTest, ColorIsPeriodicWithPeriodTwo) {
  for (std::int64_t a = -4; a <= 4; ++a) {
    for (std::int64_t b = -4; b <= 4; ++b) {
      EXPECT_EQ(SquareGrid::ColorOf({a, b}), SquareGrid::ColorOf({a + 2, b}));
      EXPECT_EQ(SquareGrid::ColorOf({a, b}), SquareGrid::ColorOf({a, b + 2}));
    }
  }
}

TEST(SquareGridTest, SameColorImpliesEvenIndexDifference) {
  // The LDP feasibility proof needs same-colour cells to be >= 2 grid
  // steps apart in each axis.
  for (std::int64_t a1 = -3; a1 <= 3; ++a1) {
    for (std::int64_t b1 = -3; b1 <= 3; ++b1) {
      for (std::int64_t a2 = -3; a2 <= 3; ++a2) {
        for (std::int64_t b2 = -3; b2 <= 3; ++b2) {
          if (SquareGrid::ColorOf({a1, b1}) == SquareGrid::ColorOf({a2, b2})) {
            EXPECT_EQ((a1 - a2) % 2, 0);
            EXPECT_EQ((b1 - b2) % 2, 0);
          }
        }
      }
    }
  }
}

TEST(SquareGridTest, AdjacentCellsNeverShareColor) {
  for (std::int64_t a = -3; a <= 3; ++a) {
    for (std::int64_t b = -3; b <= 3; ++b) {
      const int color = SquareGrid::ColorOf({a, b});
      EXPECT_NE(color, SquareGrid::ColorOf({a + 1, b}));
      EXPECT_NE(color, SquareGrid::ColorOf({a, b + 1}));
      EXPECT_NE(color, SquareGrid::ColorOf({a + 1, b + 1}));
    }
  }
}

TEST(SquareGridTest, ChebyshevDistance) {
  EXPECT_EQ(SquareGrid::ChebyshevDistance({0, 0}, {3, -4}), 4);
  EXPECT_EQ(SquareGrid::ChebyshevDistance({2, 2}, {2, 2}), 0);
  EXPECT_EQ(SquareGrid::ChebyshevDistance({-1, 0}, {1, 0}), 2);
}

TEST(SquareGridTest, NegativeCoordinatesColorStable) {
  // Euclidean mod must keep colours consistent across the origin.
  EXPECT_EQ(SquareGrid::ColorOf({-2, -2}), SquareGrid::ColorOf({0, 0}));
  EXPECT_EQ(SquareGrid::ColorOf({-1, 0}), SquareGrid::ColorOf({1, 0}));
  EXPECT_EQ(SquareGrid::ColorOf({0, -1}), SquareGrid::ColorOf({0, 1}));
}

TEST(SquareGridTest, RandomPointsRoundTripThroughCellLow) {
  rng::Xoshiro256 gen(21);
  const SquareGrid grid({-7.5, 3.25}, 2.5);
  for (int i = 0; i < 1000; ++i) {
    const Vec2 p{rng::UniformRange(gen, -100.0, 100.0),
                 rng::UniformRange(gen, -100.0, 100.0)};
    const CellIndex cell = grid.CellOf(p);
    const Vec2 low = grid.CellLow(cell);
    EXPECT_GE(p.x, low.x - 1e-9);
    EXPECT_LT(p.x, low.x + grid.CellSize() + 1e-9);
    EXPECT_GE(p.y, low.y - 1e-9);
    EXPECT_LT(p.y, low.y + grid.CellSize() + 1e-9);
  }
}

}  // namespace
}  // namespace fadesched::geom
