#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fadesched::geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
}

TEST(Vec2Test, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
}

TEST(Vec2Test, DistanceIsSymmetric) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{6.0, 8.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 10.0);
  EXPECT_DOUBLE_EQ(Distance(b, a), 10.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 100.0);
}

TEST(Vec2Test, DistanceToSelfIsZero) {
  const Vec2 a{1.5, -2.5};
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(Vec2Test, TriangleInequalityHolds) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 7.0};
  const Vec2 c{-4.0, 2.0};
  EXPECT_LE(Distance(a, c), Distance(a, b) + Distance(b, c) + 1e-12);
}

TEST(AabbTest, ContainsInteriorAndBoundary) {
  const Aabb box{{0.0, 0.0}, {2.0, 3.0}};
  EXPECT_TRUE(box.Contains({1.0, 1.0}));
  EXPECT_TRUE(box.Contains({0.0, 0.0}));
  EXPECT_TRUE(box.Contains({2.0, 3.0}));
  EXPECT_FALSE(box.Contains({2.1, 1.0}));
  EXPECT_FALSE(box.Contains({1.0, -0.1}));
}

TEST(AabbTest, WidthHeight) {
  const Aabb box{{-1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(box.Width(), 4.0);
  EXPECT_DOUBLE_EQ(box.Height(), 2.0);
}

TEST(AabbTest, ExtendGrowsToCoverPoint) {
  Aabb box{{0.0, 0.0}, {1.0, 1.0}};
  box.Extend({-2.0, 5.0});
  EXPECT_TRUE(box.Contains({-2.0, 5.0}));
  EXPECT_TRUE(box.Contains({0.5, 0.5}));
  EXPECT_DOUBLE_EQ(box.lo.x, -2.0);
  EXPECT_DOUBLE_EQ(box.hi.y, 5.0);
}

TEST(AabbTest, ExtendWithInteriorPointIsNoOp) {
  Aabb box{{0.0, 0.0}, {2.0, 2.0}};
  box.Extend({1.0, 1.0});
  EXPECT_DOUBLE_EQ(box.Width(), 2.0);
  EXPECT_DOUBLE_EQ(box.Height(), 2.0);
}

}  // namespace
}  // namespace fadesched::geom
