// The warm subset view is the tentpole contract of the dynamics
// subsystem: MakeSubsetEngineView(parent, subset, ids) must answer every
// query bit-identically to a cold engine built over the same subset (exact
// builds), so per-slot re-scheduling on the backlogged subset is a pure
// optimization — never a semantic change.
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "channel/batch_interference.hpp"
#include "channel/params.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"

namespace fadesched::channel {
namespace {

net::LinkSet MakeUniverse(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  return net::MakeUniformScenario(n, {}, gen);
}

std::vector<net::LinkId> EveryThirdLink(std::size_t n) {
  std::vector<net::LinkId> ids;
  for (net::LinkId i = 1; i < n; i += 3) ids.push_back(i);
  return ids;
}

std::uint64_t UlpDistance(double a, double b) {
  const auto key = [](double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    return (bits & 0x8000000000000000ull) ? ~bits
                                          : bits | 0x8000000000000000ull;
  };
  const std::uint64_t ka = key(a);
  const std::uint64_t kb = key(b);
  return ka > kb ? ka - kb : kb - ka;
}

class SubsetViewBackendTest
    : public testing::TestWithParam<FactorBackend> {};

// Every query surface — Factor, Affectance, NoiseFactor, SumFactor — is
// bit-identical between the O(m) warm view and an O(m²) cold rebuild.
TEST_P(SubsetViewBackendTest, QueriesAreBitIdenticalToColdSubsetBuild) {
  const net::LinkSet universe = MakeUniverse(60, 17);
  const ChannelParams params;
  EngineOptions options;
  options.backend = GetParam();

  const auto parent = std::make_shared<const InterferenceEngine>(
      universe, params, options);
  const std::vector<net::LinkId> ids = EveryThirdLink(universe.Size());
  const net::LinkSet subset = universe.Subset(ids);

  const auto view = MakeSubsetEngineView(parent, subset, ids);
  const InterferenceEngine cold(subset, params, options);

  ASSERT_EQ(view->Size(), cold.Size());
  EXPECT_TRUE(view->IsSubsetView());
  EXPECT_FALSE(cold.IsSubsetView());

  std::vector<net::LinkId> all(subset.Size());
  for (net::LinkId i = 0; i < subset.Size(); ++i) all[i] = i;
  for (net::LinkId j = 0; j < subset.Size(); ++j) {
    ASSERT_EQ(view->NoiseFactor(j), cold.NoiseFactor(j)) << "victim " << j;
    ASSERT_EQ(view->SumFactor(all, j), cold.SumFactor(all, j))
        << "victim " << j;
    for (net::LinkId i = 0; i < subset.Size(); ++i) {
      ASSERT_EQ(view->Factor(i, j), cold.Factor(i, j))
          << "factor (" << i << ", " << j << ")";
      ASSERT_EQ(view->Affectance(i, j), cold.Affectance(i, j))
          << "affectance (" << i << ", " << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SubsetViewBackendTest,
                         testing::Values(FactorBackend::kCalculator,
                                         FactorBackend::kTables,
                                         FactorBackend::kMatrix),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case FactorBackend::kCalculator:
                               return "Calculator";
                             case FactorBackend::kTables: return "Tables";
                             case FactorBackend::kMatrix: return "Matrix";
                           }
                           return "Unknown";
                         });

// A view over a laddered kMatrix parent inherits the ladder's accuracy
// contract: every remapped entry is within the 16-ULP band of the exact
// kTables expression.
TEST(SubsetViewTest, LadderedParentStaysWithinUlpBand) {
  const net::LinkSet universe = MakeUniverse(80, 23);
  const ChannelParams params;
  EngineOptions laddered;
  laddered.backend = FactorBackend::kMatrix;
  laddered.ladder.enabled = true;

  const auto parent = std::make_shared<const InterferenceEngine>(
      universe, params, laddered);
  const std::vector<net::LinkId> ids = EveryThirdLink(universe.Size());
  const net::LinkSet subset = universe.Subset(ids);
  const auto view = MakeSubsetEngineView(parent, subset, ids);

  EngineOptions exact;
  exact.backend = FactorBackend::kTables;
  const InterferenceEngine reference(subset, params, exact);

  for (net::LinkId j = 0; j < subset.Size(); ++j) {
    for (net::LinkId i = 0; i < subset.Size(); ++i) {
      ASSERT_LE(UlpDistance(view->Factor(i, j), reference.Factor(i, j)),
                16u)
          << "factor (" << i << ", " << j << ")";
    }
  }
}

// View-of-a-view collapses to the root parent (no remap chains), and the
// composed remap still answers bit-identically to a cold build over the
// doubly-restricted subset.
TEST(SubsetViewTest, NestedViewsCollapseToTheRootParent) {
  const net::LinkSet universe = MakeUniverse(48, 31);
  const ChannelParams params;
  EngineOptions options;
  options.backend = FactorBackend::kMatrix;

  const auto root = std::make_shared<const InterferenceEngine>(
      universe, params, options);
  const std::vector<net::LinkId> outer_ids = EveryThirdLink(universe.Size());
  const net::LinkSet outer = universe.Subset(outer_ids);
  const auto outer_view = MakeSubsetEngineView(root, outer, outer_ids);

  std::vector<net::LinkId> inner_ids;
  for (net::LinkId i = 0; i < outer.Size(); i += 2) inner_ids.push_back(i);
  const net::LinkSet inner = outer.Subset(inner_ids);
  const auto inner_view = MakeSubsetEngineView(outer_view, inner, inner_ids);

  ASSERT_TRUE(inner_view->IsSubsetView());
  EXPECT_EQ(inner_view->Parent(), root.get());
  for (net::LinkId i = 0; i < inner.Size(); ++i) {
    EXPECT_EQ(inner_view->ParentId(i), outer_ids[inner_ids[i]]);
  }

  const InterferenceEngine cold(inner, params, options);
  for (net::LinkId j = 0; j < inner.Size(); ++j) {
    for (net::LinkId i = 0; i < inner.Size(); ++i) {
      ASSERT_EQ(inner_view->Factor(i, j), cold.Factor(i, j))
          << "factor (" << i << ", " << j << ")";
    }
  }
}

// End-to-end schedule identity: every engine-aware scheduler, handed the
// warm view through EngineOptions::shared, emits the same schedule as a
// cold per-call rebuild. This is the property the dynamic fuzzer's
// warm-vs-cold oracle checks at scale.
TEST(SubsetViewTest, SchedulersThroughTheViewMatchColdBuilds) {
  const net::LinkSet universe = MakeUniverse(70, 41);
  const ChannelParams params;
  const std::vector<net::LinkId> ids = EveryThirdLink(universe.Size());
  const net::LinkSet subset = universe.Subset(ids);

  const char* const kSchedulers[] = {"ldp",    "rle",        "fading_greedy",
                                     "approx_diversity", "approx_logn",
                                     "graph_greedy"};
  for (const FactorBackend backend :
       {FactorBackend::kTables, FactorBackend::kMatrix}) {
    EngineOptions options;
    options.backend = backend;
    const auto parent = std::make_shared<const InterferenceEngine>(
        universe, params, options);
    const auto view = MakeSubsetEngineView(parent, subset, ids);
    for (const char* name : kSchedulers) {
      const net::Schedule cold =
          sched::MakeScheduler(name, options)->Schedule(subset, params)
              .schedule;
      EngineOptions warm_options = view->Options();
      warm_options.shared = view;
      const net::Schedule warm =
          sched::MakeScheduler(name, warm_options)->Schedule(subset, params)
              .schedule;
      ASSERT_EQ(warm, cold)
          << "scheduler " << name << " backend "
          << static_cast<int>(backend);
    }
  }
}

}  // namespace
}  // namespace fadesched::channel
