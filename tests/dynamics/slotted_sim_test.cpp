// Contracts of the slotted dynamics simulator: exact packet conservation
// (including bounded queues, churn-blocked arrivals, and mid-run
// interruption), warm/cold trace identity, byte-identical replay, and the
// bounded-staleness refresh policy.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/params.hpp"
#include "dynamics/slotted_sim.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::dynamics {
namespace {

net::LinkSet MakeUniverse(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  return net::MakeUniformScenario(n, {}, gen);
}

DynamicsOptions BaseOptions() {
  DynamicsOptions options;
  options.num_slots = 200;
  options.warmup_slots = 20;
  options.seed = 7;
  options.arrivals.rate = 0.1;
  return options;
}

DynamicsOptions ChurnyOptions() {
  DynamicsOptions options = BaseOptions();
  options.churn.enabled = true;
  options.churn.leave_probability = 0.03;
  options.churn.enter_probability = 0.2;
  options.churn.fade_recheck_probability = 0.05;
  options.churn.drift_steps_per_slot = 1;
  options.churn.mobility.region_size = 1500.0;
  options.refresh.period_slots = 25;
  return options;
}

std::vector<std::string> Trace(const net::LinkSet& universe,
                               const std::string& scheduler,
                               DynamicsOptions options) {
  std::vector<std::string> lines;
  options.slot_observer = [&lines](const SlotRecord& record) {
    lines.push_back(FormatSlotRecord(record));
  };
  RunSlottedSimulation(universe, channel::ChannelParams{}, scheduler,
                       options);
  return lines;
}

TEST(SlottedSimTest, ValidateRejectsDegenerateOptions) {
  DynamicsOptions options = BaseOptions();
  options.num_slots = 0;
  EXPECT_THROW(options.Validate(), util::CheckFailure);

  options = BaseOptions();
  options.warmup_slots = options.num_slots;
  EXPECT_THROW(options.Validate(), util::CheckFailure);
}

TEST(SlottedSimTest, LedgerBalancesOnAQuietRun) {
  const net::LinkSet universe = MakeUniverse(20, 1);
  const DynamicsResult result = RunSlottedSimulation(
      universe, channel::ChannelParams{}, "ldp", BaseOptions());
  EXPECT_TRUE(result.ledger.Balanced());
  EXPECT_GT(result.ledger.arrivals, 0u);
  EXPECT_GT(result.ledger.delivered, 0u);
  EXPECT_EQ(result.ledger.dropped_blocked, 0u);   // no churn
  EXPECT_EQ(result.ledger.dropped_overflow, 0u);  // unbounded queues
  EXPECT_EQ(result.slots_run, BaseOptions().num_slots);
  EXPECT_FALSE(result.interrupted);
}

// Bounded queues under overload drop the excess — and the drops are
// accounted, not lost.
TEST(SlottedSimTest, LedgerBalancesWithCapacityDrops) {
  const net::LinkSet universe = MakeUniverse(25, 2);
  DynamicsOptions options = BaseOptions();
  options.arrivals.rate = 0.9;  // far beyond any schedule's service rate
  options.queue_capacity = 2;
  const DynamicsResult result = RunSlottedSimulation(
      universe, channel::ChannelParams{}, "ldp", options);
  EXPECT_TRUE(result.ledger.Balanced());
  EXPECT_GT(result.ledger.dropped_overflow, 0u);
}

// Churn blocks arrivals at handed-off links; the ledger still balances
// and the churn counters surface in the result.
TEST(SlottedSimTest, LedgerBalancesUnderChurn) {
  const net::LinkSet universe = MakeUniverse(30, 3);
  const DynamicsResult result = RunSlottedSimulation(
      universe, channel::ChannelParams{}, "fading_greedy", ChurnyOptions());
  EXPECT_TRUE(result.ledger.Balanced());
  EXPECT_GT(result.ledger.dropped_blocked, 0u);
  EXPECT_GT(result.links_left, 0u);
  EXPECT_GT(result.links_entered, 0u);
  EXPECT_GT(result.fade_rechecks, 0u);
}

// The SIGTERM path of the conservation property: stopping mid-run leaves
// the ledger exactly balanced with the interrupted flag set.
TEST(SlottedSimTest, InterruptedRunKeepsTheLedgerBalanced) {
  const net::LinkSet universe = MakeUniverse(20, 4);
  DynamicsOptions options = BaseOptions();
  std::size_t polls = 0;
  options.stop_requested = [&polls]() { return ++polls > 60; };
  const DynamicsResult result = RunSlottedSimulation(
      universe, channel::ChannelParams{}, "rle", options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_LT(result.slots_run, options.num_slots);
  EXPECT_TRUE(result.ledger.Balanced());
  EXPECT_GT(result.ledger.residual, 0u);
}

// Same inputs → byte-identical per-slot trace (the determinism contract
// the BENCH rows and the fuzzer's replay oracle stand on).
TEST(SlottedSimTest, ReplayTraceIsByteIdentical) {
  const net::LinkSet universe = MakeUniverse(24, 5);
  const DynamicsOptions options = ChurnyOptions();
  const std::vector<std::string> first = Trace(universe, "ldp", options);
  const std::vector<std::string> second = Trace(universe, "ldp", options);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "slot " << i;
  }
}

// The tentpole acceptance property at simulator level: the warm subset
// view and the cold per-slot rebuild produce byte-identical traces — the
// engine mode is a pure optimization.
TEST(SlottedSimTest, WarmAndColdTracesAreByteIdentical) {
  const net::LinkSet universe = MakeUniverse(28, 6);
  for (const char* scheduler : {"ldp", "fading_greedy", "approx_diversity"}) {
    DynamicsOptions options = ChurnyOptions();
    options.engine_mode = EngineMode::kWarmSubset;
    const std::vector<std::string> warm = Trace(universe, scheduler, options);
    options.engine_mode = EngineMode::kColdRebuild;
    const std::vector<std::string> cold = Trace(universe, scheduler, options);
    ASSERT_EQ(warm.size(), cold.size()) << scheduler;
    for (std::size_t i = 0; i < warm.size(); ++i) {
      ASSERT_EQ(warm[i], cold[i]) << scheduler << " slot " << i;
    }
  }
}

// Periodic refresh fires on its configured cadence; with both triggers
// off the initial snapshot serves the whole run.
TEST(SlottedSimTest, RefreshPolicyFiresOnSchedule) {
  const net::LinkSet universe = MakeUniverse(20, 8);
  DynamicsOptions options = BaseOptions();
  options.num_slots = 100;
  options.refresh.period_slots = 10;
  const DynamicsResult periodic = RunSlottedSimulation(
      universe, channel::ChannelParams{}, "ldp", options);
  EXPECT_EQ(periodic.snapshot_refreshes, 9u);  // slots 10,20,...,90

  options.refresh.period_slots = 0;
  const DynamicsResult frozen = RunSlottedSimulation(
      universe, channel::ChannelParams{}, "ldp", options);
  EXPECT_EQ(frozen.snapshot_refreshes, 0u);
}

// The churn-budget trigger refreshes once enough staleness events
// (fading rechecks) accumulate.
TEST(SlottedSimTest, ChurnBudgetTriggersRefreshes) {
  const net::LinkSet universe = MakeUniverse(30, 9);
  DynamicsOptions options = ChurnyOptions();
  options.refresh.period_slots = 0;
  options.refresh.churn_budget = 5;
  const DynamicsResult result = RunSlottedSimulation(
      universe, channel::ChannelParams{}, "ldp", options);
  EXPECT_GT(result.snapshot_refreshes, 0u);
  EXPECT_GT(result.fade_rechecks, result.snapshot_refreshes);
}

// An empty universe is a no-op, not a crash.
TEST(SlottedSimTest, EmptyUniverseRunsToCompletion) {
  const net::LinkSet universe;
  const DynamicsResult result = RunSlottedSimulation(
      universe, channel::ChannelParams{}, "ldp", BaseOptions());
  EXPECT_EQ(result.slots_run, BaseOptions().num_slots);
  EXPECT_TRUE(result.ledger.Balanced());
  EXPECT_EQ(result.ledger.arrivals, 0u);
}

}  // namespace
}  // namespace fadesched::dynamics
