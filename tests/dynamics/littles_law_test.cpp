// Little's-law property test: in steady state, mean backlog L equals
// delivered throughput λ_eff times mean delay W. The slotted simulator
// makes this an exact accounting identity up to boundary effects — a
// packet delivered with delay d appears in exactly d post-transmission
// backlog samples — so L ≈ λ_eff · W across schedulers and every arrival
// family is a sharp end-to-end check on the queue bookkeeping.
#include <string>

#include <gtest/gtest.h>

#include "channel/params.hpp"
#include "dynamics/slotted_sim.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"

namespace fadesched::dynamics {
namespace {

TEST(LittlesLawTest, HoldsAcrossSchedulersAndArrivalFamilies) {
  rng::Xoshiro256 gen(12);
  const net::LinkSet universe = net::MakeUniformScenario(30, {}, gen);
  const channel::ChannelParams params;

  for (const char* scheduler : {"ldp", "fading_greedy"}) {
    for (const ArrivalFamily family : AllArrivalFamilies()) {
      DynamicsOptions options;
      options.num_slots = 4000;
      options.warmup_slots = 500;
      options.seed = 21;
      options.arrivals.family = family;
      options.arrivals.rate = 0.03;  // comfortably stable for both

      const DynamicsResult result =
          RunSlottedSimulation(universe, params, scheduler, options);
      ASSERT_TRUE(result.ledger.Balanced());

      const auto measured_slots =
          static_cast<double>(options.num_slots - options.warmup_slots);
      const double lambda_eff =
          static_cast<double>(result.delay_samples.size()) / measured_slots;
      const double l = result.backlog.Mean();
      const double w = result.delay_slots.Mean();

      ASSERT_GT(lambda_eff, 0.0);
      // Boundary effects (warmup straddlers, end-of-run residual packets)
      // scale as W / measured_slots; 15% relative plus a small absolute
      // floor covers them at these run lengths.
      EXPECT_NEAR(l, lambda_eff * w, 0.15 * l + 0.05)
          << "scheduler " << scheduler << " family "
          << ArrivalFamilyName(family);
    }
  }
}

}  // namespace
}  // namespace fadesched::dynamics
