#include "dynamics/arrivals.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace fadesched::dynamics {
namespace {

TEST(ArrivalFamilyTest, NamesRoundTrip) {
  for (const ArrivalFamily family : AllArrivalFamilies()) {
    ArrivalFamily parsed = ArrivalFamily::kBernoulli;
    ASSERT_TRUE(ParseArrivalFamily(ArrivalFamilyName(family), parsed));
    EXPECT_EQ(parsed, family);
  }
  ArrivalFamily out = ArrivalFamily::kBernoulli;
  EXPECT_FALSE(ParseArrivalFamily("gaussian", out));
}

TEST(ArrivalSpecTest, ValidateRejectsBadParameters) {
  ArrivalSpec spec;
  spec.rate = -0.1;
  EXPECT_THROW(spec.Validate(), util::CheckFailure);

  spec = {};
  spec.family = ArrivalFamily::kBernoulli;
  spec.rate = 1.5;  // Bernoulli needs rate <= 1
  EXPECT_THROW(spec.Validate(), util::CheckFailure);

  spec = {};
  spec.family = ArrivalFamily::kOnOff;
  spec.duty_cycle = 0.1;
  spec.rate = 0.5;  // peak rate rate/duty would exceed 1
  EXPECT_THROW(spec.Validate(), util::CheckFailure);

  spec = {};
  spec.family = ArrivalFamily::kLeakyBucket;
  spec.bucket_depth = 0.0;
  EXPECT_THROW(spec.Validate(), util::CheckFailure);
}

// Every family is calibrated to the same long-run mean: rate packets per
// slot per link. 40 links × 20k slots gives 800k link-slots, so the
// sample mean concentrates well within 5% of the target.
TEST(ArrivalProcessTest, LongRunRateMatchesSpecAcrossFamilies) {
  constexpr std::size_t kLinks = 40;
  constexpr std::size_t kSlots = 20000;
  for (const ArrivalFamily family : AllArrivalFamilies()) {
    ArrivalSpec spec;
    spec.family = family;
    spec.rate = 0.08;
    ArrivalProcess process(spec, kLinks, /*seed=*/99);
    std::uint64_t total = 0;
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      for (net::LinkId i = 0; i < kLinks; ++i) total += process.ArrivalsFor(i);
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(kLinks * kSlots);
    EXPECT_NEAR(mean, spec.rate, 0.05 * spec.rate)
        << "family " << ArrivalFamilyName(family);
  }
}

// Link i's substream depends only on (seed, i): the same link produces the
// same arrivals no matter how many other links share the process.
TEST(ArrivalProcessTest, PerLinkSubstreamsAreIndependentOfPopulation) {
  for (const ArrivalFamily family : AllArrivalFamilies()) {
    ArrivalSpec spec;
    spec.family = family;
    spec.rate = 0.1;
    ArrivalProcess small(spec, 3, /*seed=*/7);
    ArrivalProcess large(spec, 11, /*seed=*/7);
    for (std::size_t slot = 0; slot < 500; ++slot) {
      std::uint64_t small_arrivals[3];
      for (net::LinkId i = 0; i < 3; ++i) {
        small_arrivals[i] = small.ArrivalsFor(i);
      }
      for (net::LinkId i = 0; i < 11; ++i) {
        const std::uint64_t got = large.ArrivalsFor(i);
        if (i < 3) {
          ASSERT_EQ(got, small_arrivals[i])
              << "family " << ArrivalFamilyName(family) << " slot " << slot
              << " link " << i;
        }
      }
    }
  }
}

TEST(ArrivalProcessTest, SameSeedReplaysByteIdentically) {
  ArrivalSpec spec;
  spec.family = ArrivalFamily::kOnOff;
  spec.rate = 0.1;
  ArrivalProcess a(spec, 8, 42);
  ArrivalProcess b(spec, 8, 42);
  for (std::size_t slot = 0; slot < 2000; ++slot) {
    for (net::LinkId i = 0; i < 8; ++i) {
      ASSERT_EQ(a.ArrivalsFor(i), b.ArrivalsFor(i));
    }
  }
}

// The on/off modulation actually modulates: there are silent stretches
// (OFF) and the ON fraction approaches the configured duty cycle.
TEST(ArrivalProcessTest, OnOffDutyCycleIsRespected) {
  ArrivalSpec spec;
  spec.family = ArrivalFamily::kOnOff;
  spec.rate = 0.2;
  spec.duty_cycle = 0.4;
  spec.mean_burst_slots = 10.0;
  constexpr std::size_t kSlots = 50000;
  ArrivalProcess process(spec, 1, /*seed=*/3);
  std::uint64_t total = 0;
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    total += process.ArrivalsFor(0);
  }
  const double mean = static_cast<double>(total) / kSlots;
  EXPECT_NEAR(mean, spec.rate, 0.1 * spec.rate);
}

// A (σ, ρ) leaky-bucket source never exceeds its envelope: cumulative
// arrivals by slot t are at most σ + ρ·(t + 1).
TEST(ArrivalProcessTest, LeakyBucketConformsToSigmaRhoEnvelope) {
  ArrivalSpec spec;
  spec.family = ArrivalFamily::kLeakyBucket;
  spec.rate = 0.15;
  spec.bucket_depth = 5.0;
  spec.release_probability = 0.3;
  ArrivalProcess process(spec, 1, /*seed=*/11);
  double cumulative = 0.0;
  for (std::size_t slot = 0; slot < 20000; ++slot) {
    cumulative += static_cast<double>(process.ArrivalsFor(0));
    const double envelope =
        spec.bucket_depth + spec.rate * static_cast<double>(slot + 1);
    ASSERT_LE(cumulative, envelope + 1e-9) << "slot " << slot;
  }
}

}  // namespace
}  // namespace fadesched::dynamics
