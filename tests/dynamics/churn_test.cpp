#include "dynamics/churn.hpp"

#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::dynamics {
namespace {

net::LinkSet MakeUniverse(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  net::UniformScenarioParams params;
  params.region_size = 300.0;
  return net::MakeUniformScenario(n, params, gen);
}

ChurnOptions ActiveChurn() {
  ChurnOptions options;
  options.enabled = true;
  options.leave_probability = 0.05;
  options.enter_probability = 0.3;
  options.fade_recheck_probability = 0.1;
  options.drift_steps_per_slot = 1;
  options.mobility.region_size = 300.0;
  return options;
}

TEST(ChurnOptionsTest, ValidateRejectsBadProbabilities) {
  ChurnOptions options;
  options.leave_probability = 1.2;
  EXPECT_THROW(options.Validate(), util::CheckFailure);

  options = {};
  options.leave_probability = 0.6;
  options.fade_recheck_probability = 0.6;  // partition exceeds 1
  EXPECT_THROW(options.Validate(), util::CheckFailure);
}

TEST(ChurnProcessTest, DisabledChurnIsANoOp) {
  const net::LinkSet universe = MakeUniverse(10, 1);
  ChurnProcess churn(universe, ChurnOptions{}, 5);
  for (int slot = 0; slot < 50; ++slot) {
    const SlotChurn result = churn.Step();
    EXPECT_EQ(result.left, 0u);
    EXPECT_EQ(result.entered, 0u);
    EXPECT_EQ(result.fade_rechecks, 0u);
  }
  for (const char active : churn.Active()) EXPECT_TRUE(active);
  // Static geometry: positions never drifted.
  for (net::LinkId i = 0; i < universe.Size(); ++i) {
    EXPECT_EQ(churn.UniverseNow().At(i).sender.x, universe.At(i).sender.x);
  }
}

// The membership trajectory is a pure function of (universe, options,
// seed): two processes replay byte-identically.
TEST(ChurnProcessTest, ReplayIsByteIdentical) {
  const net::LinkSet universe = MakeUniverse(24, 2);
  const ChurnOptions options = ActiveChurn();
  ChurnProcess a(universe, options, 77);
  ChurnProcess b(universe, options, 77);
  for (int slot = 0; slot < 400; ++slot) {
    const SlotChurn ra = a.Step();
    const SlotChurn rb = b.Step();
    ASSERT_EQ(ra.left, rb.left);
    ASSERT_EQ(ra.entered, rb.entered);
    ASSERT_EQ(ra.fade_rechecks, rb.fade_rechecks);
    ASSERT_EQ(a.Active(), b.Active());
    for (net::LinkId i = 0; i < universe.Size(); ++i) {
      ASSERT_EQ(a.UniverseNow().At(i).sender.x, b.UniverseNow().At(i).sender.x);
      ASSERT_EQ(a.UniverseNow().At(i).sender.y, b.UniverseNow().At(i).sender.y);
    }
  }
}

TEST(ChurnProcessTest, MembershipActuallyChurns) {
  const net::LinkSet universe = MakeUniverse(30, 3);
  ChurnProcess churn(universe, ActiveChurn(), 9);
  std::uint64_t left = 0;
  std::uint64_t entered = 0;
  std::uint64_t rechecks = 0;
  for (int slot = 0; slot < 500; ++slot) {
    const SlotChurn result = churn.Step();
    left += result.left;
    entered += result.entered;
    rechecks += result.fade_rechecks;
    EXPECT_EQ(result.StalenessEvents(), result.fade_rechecks);
  }
  EXPECT_GT(left, 0u);
  EXPECT_GT(entered, 0u);
  EXPECT_GT(rechecks, 0u);
}

// Mobility moves links as rigid pairs: lengths (and thus every scheduler
// constant derived from them) are invariant while positions drift.
TEST(ChurnProcessTest, DriftPreservesLinkLengths) {
  const net::LinkSet universe = MakeUniverse(16, 4);
  ChurnProcess churn(universe, ActiveChurn(), 13);
  for (int slot = 0; slot < 200; ++slot) churn.Step();
  bool moved = false;
  for (net::LinkId i = 0; i < universe.Size(); ++i) {
    // Rigid-pair translation preserves lengths up to accumulated
    // floating-point drift over 200 slots of moves.
    EXPECT_NEAR(churn.UniverseNow().At(i).Length(), universe.At(i).Length(),
                1e-9 * universe.At(i).Length());
    if (churn.UniverseNow().At(i).sender.x != universe.At(i).sender.x) {
      moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace fadesched::dynamics
