// Stability estimation: the windowed drift test must classify synthetic
// series correctly, and the λ* frontier search must be a reproducible,
// bracketing bisection over real simulator runs.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "channel/params.hpp"
#include "dynamics/stability.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"

namespace fadesched::dynamics {
namespace {

// Deterministic pseudo-noise (no real randomness needed — the drift test
// only cares about the trend, not the distribution).
double Wiggle(std::size_t i) { return std::sin(static_cast<double>(i)); }

TEST(DriftTest, FlatNoisySeriesIsStable) {
  std::vector<double> series;
  for (std::size_t i = 0; i < 1024; ++i) series.push_back(10.0 + Wiggle(i));
  const DriftAssessment verdict = AssessBacklogDrift(series, 2.0);
  EXPECT_TRUE(verdict.stable);
  EXPECT_LT(std::abs(verdict.slope_per_slot), verdict.threshold);
}

TEST(DriftTest, LinearlyGrowingSeriesIsUnstable) {
  std::vector<double> series;
  for (std::size_t i = 0; i < 1024; ++i) {
    // Grows at 0.5 packets/slot against an offered load of 2/slot —
    // well past the 5% tolerance.
    series.push_back(0.5 * static_cast<double>(i) + Wiggle(i));
  }
  const DriftAssessment verdict = AssessBacklogDrift(series, 2.0);
  EXPECT_FALSE(verdict.stable);
  EXPECT_NEAR(verdict.slope_per_slot, 0.5, 0.05);
}

// The threshold scales with offered load: the same mild drift is
// unstable for a trickle of traffic but within tolerance for a heavy one.
TEST(DriftTest, ThresholdScalesWithOfferedLoad) {
  std::vector<double> series;
  for (std::size_t i = 0; i < 1024; ++i) {
    series.push_back(0.02 * static_cast<double>(i));
  }
  EXPECT_FALSE(AssessBacklogDrift(series, 0.1).stable);
  EXPECT_TRUE(AssessBacklogDrift(series, 10.0).stable);
}

TEST(DriftTest, ShortSeriesFallsBackToFinalWindowCheck) {
  // Too short to fit a slope: judged by the terminal backlog against
  // threshold × length (0.05 × 1.0 × 8 = 0.4 here).
  const std::vector<double> small(8, 0.3);
  EXPECT_TRUE(AssessBacklogDrift(small, 1.0).stable);
  const std::vector<double> large(8, 500.0);
  EXPECT_FALSE(AssessBacklogDrift(large, 1.0).stable);
}

class FrontierTest : public testing::Test {
 protected:
  FrontierTest() {
    rng::Xoshiro256 gen(33);
    universe_ = net::MakeUniformScenario(25, {}, gen);
    base_.num_slots = 600;
    base_.warmup_slots = 100;
    base_.seed = 5;
    options_.lambda_hi = 0.4;
    options_.iterations = 5;
  }

  net::LinkSet universe_;
  channel::ChannelParams params_;
  DynamicsOptions base_;
  FrontierOptions options_;
};

TEST_F(FrontierTest, BisectionBracketsTheFrontier) {
  const FrontierResult result = FindStabilityFrontier(
      universe_, params_, "fading_greedy", base_, options_);
  EXPECT_GT(result.probes, 0u);
  EXPECT_GT(result.lambda_star, 0.0);
  if (!result.saturated) {
    EXPECT_LE(result.lambda_lo, result.lambda_hi);
    EXPECT_DOUBLE_EQ(result.lambda_star, result.lambda_lo);
    EXPECT_LE(result.lambda_hi, options_.lambda_hi);
    // `iterations` halvings of the initial bracket.
    EXPECT_LE(result.lambda_hi - result.lambda_lo,
              options_.lambda_hi / std::pow(2.0, 4.0));
  }
}

// The whole search is a deterministic function of its inputs — the
// property the CI stability-smoke job asserts across two full runs.
TEST_F(FrontierTest, SearchIsByteReproducible) {
  const FrontierResult a = FindStabilityFrontier(
      universe_, params_, "ldp", base_, options_);
  const FrontierResult b = FindStabilityFrontier(
      universe_, params_, "ldp", base_, options_);
  EXPECT_EQ(a.lambda_star, b.lambda_star);
  EXPECT_EQ(a.lambda_lo, b.lambda_lo);
  EXPECT_EQ(a.lambda_hi, b.lambda_hi);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.probes, b.probes);
}

// Per-link capacity shrinks as the network densifies, so the per-link
// frontier must not grow with network size — the frontier responds to
// the physics, not just the knobs.
TEST_F(FrontierTest, FrontierShrinksWithNetworkSize) {
  rng::Xoshiro256 gen(34);
  const net::LinkSet denser = net::MakeUniformScenario(50, {}, gen);
  const FrontierResult sparse = FindStabilityFrontier(
      universe_, params_, "fading_greedy", base_, options_);
  const FrontierResult dense = FindStabilityFrontier(
      denser, params_, "fading_greedy", base_, options_);
  EXPECT_GE(sparse.lambda_star, dense.lambda_star);
}

}  // namespace
}  // namespace fadesched::dynamics
